//! Per-experiment benchmarks: the analysis cost behind every figure of
//! the paper, measured over a shared precomputed study.
//!
//! The expensive part of each figure — the study itself — is measured in
//! `pipeline.rs`; these benchmarks isolate what each table/figure adds
//! on top (coverage scans, curve construction, uniqueness accounting,
//! kiviat-axis statistics, SVG rendering).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::OnceLock;

use phaselab_core::{coverage, diversity, uniqueness, StudyConfig, StudyResult};
use phaselab_viz::{BarChart, KiviatAxisSpec, KiviatPlot, LineChart, PieChart};
use phaselab_workloads::Suite;

fn shared_study() -> &'static StudyResult {
    static STUDY: OnceLock<StudyResult> = OnceLock::new();
    STUDY.get_or_init(|| {
        let mut cfg = StudyConfig::smoke();
        cfg.samples_per_benchmark = 16;
        cfg.k = 32;
        cfg.n_prominent = 16;
        cfg.suites = Some(vec![Suite::BioPerf, Suite::Bmw, Suite::MediaBench2]);
        phaselab_core::run_study(&cfg).expect("smoke study")
    })
}

fn benches(c: &mut Criterion) {
    let r = shared_study();
    let mut group = c.benchmark_group("experiments");

    group.bench_function("fig4_coverage", |b| b.iter(|| black_box(coverage(r))));
    group.bench_function("fig5_diversity", |b| b.iter(|| black_box(diversity(r))));
    group.bench_function("fig6_uniqueness", |b| b.iter(|| black_box(uniqueness(r))));
    group.bench_function("fig23_kiviat_axes", |b| {
        b.iter(|| {
            for p in &r.prominent {
                black_box(r.kiviat_axes(p));
            }
        });
    });
    group.bench_function("fig23_kiviat_svg_render", |b| {
        let axes: Vec<KiviatAxisSpec> = r
            .kiviat_axes(&r.prominent[0])
            .into_iter()
            .map(|a| {
                KiviatAxisSpec::new(
                    a.name.to_string(),
                    a.normalized_value(),
                    a.normalized_rings(),
                )
            })
            .collect();
        b.iter(|| {
            let plot = KiviatPlot::new("phase").with_axes(axes.clone());
            black_box(plot.to_svg(320.0))
        });
    });
    group.bench_function("fig4_bar_svg_render", |b| {
        let bars: Vec<(String, f64)> = coverage(r)
            .iter()
            .map(|c| (c.suite.short_name().to_string(), c.clusters_touched as f64))
            .collect();
        b.iter(|| {
            let chart = BarChart::new("fig4", "clusters", bars.clone());
            black_box(chart.to_svg(560.0, 320.0))
        });
    });
    group.bench_function("fig5_line_svg_render", |b| {
        let series: Vec<(String, Vec<(f64, f64)>)> = diversity(r)
            .iter()
            .map(|c| {
                (
                    c.suite.short_name().to_string(),
                    c.cumulative
                        .iter()
                        .enumerate()
                        .map(|(i, &y)| ((i + 1) as f64, y))
                        .collect(),
                )
            })
            .collect();
        b.iter(|| {
            let chart = LineChart::new("fig5", "clusters", "coverage", series.clone());
            black_box(chart.to_svg(620.0, 360.0))
        });
    });
    group.bench_function("fig23_pie_svg_render", |b| {
        let slices: Vec<(String, f64)> = r.prominent[0]
            .composition
            .iter()
            .map(|s| (r.benchmarks[s.bench].name.clone(), s.cluster_share))
            .collect();
        b.iter(|| {
            let pie = PieChart::new("phase", slices.clone());
            black_box(pie.to_svg(200.0))
        });
    });
    group.finish();
}

criterion_group!(experiments, benches);
criterion_main!(experiments);
