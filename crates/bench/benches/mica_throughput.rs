//! Characterization overhead: the cost of the full 69-characteristic
//! analysis on top of bare execution, and per-analyzer costs on a
//! synthetic record stream.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use phaselab_mica::{
    Analyzer, BranchAnalyzer, FeatureVector, FootprintAnalyzer, IlpAnalyzer, IntervalCharacterizer,
    MixAnalyzer, RegTrafficAnalyzer, StrideAnalyzer,
};
use phaselab_trace::{ArchReg, BranchInfo, CountingSink, InstClass, InstRecord, MemAccess};
use phaselab_vm::Vm;
use phaselab_workloads::kernels::numeric;
use phaselab_workloads::Builder;

/// A synthetic but behaviorally rich record stream.
fn record_stream(n: usize) -> Vec<InstRecord> {
    let r1 = ArchReg::int(1);
    let r2 = ArchReg::int(2);
    let f1 = ArchReg::fp(1);
    (0..n as u64)
        .map(|i| match i % 5 {
            0 => InstRecord::new(4 * (i % 512), InstClass::MemRead)
                .with_reads(&[r1])
                .with_write(r2)
                .with_mem(MemAccess {
                    addr: (i * 24) % 65536,
                    size: 8,
                    is_store: false,
                }),
            1 => InstRecord::new(4 * (i % 512), InstClass::IntAdd)
                .with_reads(&[r1, r2])
                .with_write(r1),
            2 => InstRecord::new(4 * (i % 512), InstClass::CondBranch)
                .with_reads(&[r1, r2])
                .with_branch(BranchInfo {
                    taken: (i / 3) % 7 < 4,
                    target: 0,
                    conditional: true,
                }),
            3 => InstRecord::new(4 * (i % 512), InstClass::MemWrite)
                .with_reads(&[r2, r1])
                .with_mem(MemAccess {
                    addr: (i * 40 + 13) % 65536,
                    size: 8,
                    is_store: true,
                }),
            _ => InstRecord::new(4 * (i % 512), InstClass::FpMul)
                .with_reads(&[f1])
                .with_write(f1),
        })
        .collect()
}

fn bench_analyzers(c: &mut Criterion) {
    let stream = record_stream(100_000);
    let mut group = c.benchmark_group("analyzer");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.sample_size(20);

    macro_rules! bench_one {
        ($name:literal, $ty:ty) => {
            group.bench_function($name, |bench| {
                bench.iter(|| {
                    let mut a = <$ty>::new();
                    for (i, rec) in stream.iter().enumerate() {
                        a.observe(rec, i as u64);
                    }
                    let mut out = FeatureVector::zeros();
                    a.emit(&mut out);
                    black_box(out)
                })
            });
        };
    }
    bench_one!("mix", MixAnalyzer);
    bench_one!("ilp", IlpAnalyzer);
    bench_one!("regtraffic", RegTrafficAnalyzer);
    bench_one!("footprint", FootprintAnalyzer);
    bench_one!("strides", StrideAnalyzer);
    bench_one!("branch_ppm", BranchAnalyzer);
    group.finish();
}

fn bench_vm_vs_characterized(c: &mut Criterion) {
    let mut b = Builder::new(2);
    numeric::stream_triad(&mut b, 2048, 10);
    numeric::montecarlo(&mut b, 20_000);
    let program = b.finish().expect("assembles");

    let mut count = CountingSink::new();
    Vm::new(&program).run(&mut count, u64::MAX).expect("runs");
    let n = count.count();

    let mut group = c.benchmark_group("characterization_overhead");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);
    group.bench_function("bare_vm", |bench| {
        bench.iter(|| {
            let mut sink = CountingSink::new();
            Vm::new(&program).run(&mut sink, u64::MAX).expect("runs");
            black_box(sink.count())
        });
    });
    group.bench_function("vm_plus_mica", |bench| {
        bench.iter(|| {
            let mut chr = IntervalCharacterizer::new(50_000).keep_tail(true);
            Vm::new(&program).run(&mut chr, u64::MAX).expect("runs");
            chr.finish();
            black_box(chr.into_features().len())
        });
    });
    group.finish();
}

criterion_group!(mica, bench_analyzers, bench_vm_vs_characterized);
criterion_main!(mica);
