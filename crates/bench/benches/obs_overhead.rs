//! Observability overhead: instrumented k-means with and without an
//! installed obs subscriber.
//!
//! The hot loops in `phaselab-stats` gate all metric work behind one
//! relaxed atomic load, so with no subscriber the instrumented kernel
//! must run at its pre-instrumentation speed (the acceptance bar is a
//! ≤1% regression on the study shape). This bench measures the same
//! `kmeans` call twice — before and after `phaselab_obs::install()` —
//! and prints the relative overhead. It cannot use `bench_function`
//! for both sides because installation is process-global and
//! irreversible, so the no-subscriber measurement must come first.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use phaselab_stats::{kmeans, KmeansConfig, Matrix};

/// Points drawn around `centers` well-separated blob centers — the
/// shape of the study's rescaled PCA space (same generator as the
/// `stats_kernels` bench, so timings are comparable across benches).
fn clustered_matrix(rows: usize, cols: usize, centers: usize, seed: u64) -> Matrix {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let center_rows: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..cols).map(|_| next() * 10.0).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            let c = &center_rows[i % centers];
            c.iter()
                .map(|&v| v + (next() + next() + next() - 1.5) * 0.4)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// Minimum wall time over `reps` runs: the least-disturbed measurement.
fn min_wall_ms(reps: usize, data: &Matrix, cfg: &KmeansConfig) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(kmeans(black_box(data), cfg));
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn benches(c: &mut Criterion) {
    let (rows, cols, k, restarts, iters, reps) = if c.is_quick() {
        (1540, 20, 30, 1, 10, 2)
    } else {
        (15_400, 20, 300, 5, 40, 5)
    };
    let data = clustered_matrix(rows, cols, k, 7);
    let cfg = KmeansConfig::new(k)
        .with_restarts(restarts)
        .with_max_iters(iters)
        .with_seed(11);

    // Warm-up (untimed), then the no-subscriber side. This must run
    // before install(): there is no uninstall.
    assert!(
        phaselab_obs::registry().is_none(),
        "obs must not be installed before the absent-side measurement"
    );
    black_box(kmeans(&data, &cfg));
    let absent_ms = min_wall_ms(reps, &data, &cfg);

    let reg = phaselab_obs::install();
    black_box(kmeans(&data, &cfg));
    let present_ms = min_wall_ms(reps, &data, &cfg);
    assert!(
        reg.counter_value("kmeans.restarts").unwrap_or(0) > 0,
        "subscriber-present side must actually record metrics"
    );

    let overhead = (present_ms - absent_ms) / absent_ms * 100.0;
    println!(
        "obs_overhead/kmeans_{rows}x{cols}_k{k}  subscriber absent: {absent_ms:.1} ms  \
         subscriber present: {present_ms:.1} ms  overhead: {overhead:+.2}%  (min of {reps})"
    );
}

criterion_group!(obs_overhead, benches);
criterion_main!(obs_overhead);
