//! End-to-end pipeline stages: benchmark characterization, GA fitness
//! evaluation, and a reduced complete study.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phaselab_core::{characterize_program, run_study, StudyConfig};
use phaselab_ga::DistanceCorrelationFitness;
use phaselab_stats::Matrix;
use phaselab_workloads::{catalog, Scale, Suite};

fn benches(c: &mut Criterion) {
    // Characterize one benchmark at Tiny scale: the unit of work the
    // study parallelizes over.
    let all = catalog();
    let bench0 = &all[0];
    let program = bench0.build(Scale::Tiny, 0);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("characterize_one_benchmark_tiny", |b| {
        b.iter(|| black_box(characterize_program(&program, 20_000, u64::MAX).expect("runs")));
    });

    // One GA fitness evaluation at study shape (100 phases × 69
    // characteristics, 12 selected).
    let mut x = 0x12345u64;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let rows: Vec<Vec<f64>> = (0..100)
        .map(|_| (0..69).map(|_| next()).collect())
        .collect();
    let phases = Matrix::from_rows(&rows);
    let fitness = DistanceCorrelationFitness::new(&phases, 1.0);
    let mut mask = vec![false; 69];
    for m in mask.iter_mut().take(12) {
        *m = true;
    }
    group.bench_function("ga_fitness_eval_100x69_k12", |b| {
        b.iter(|| black_box(fitness.score(&mask)));
    });

    // A complete reduced study over one domain-specific suite.
    let mut cfg = StudyConfig::smoke();
    cfg.suites = Some(vec![Suite::Bmw]);
    group.bench_function("smoke_study_bmw", |b| {
        b.iter(|| black_box(run_study(&cfg).expect("smoke study")));
    });
    group.finish();
}

criterion_group!(pipeline, benches);
criterion_main!(pipeline);
