//! Statistics-substrate kernels: eigendecomposition, PCA, k-means and
//! correlation at the dimensions the study uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phaselab_ga::{select_features, DistanceCorrelationFitness, GaConfig};
use phaselab_stats::{
    jacobi_eigen, kmeans, kmeans_reference, normalize_columns, pearson, rescaled_pca_space,
    KmeansConfig, Matrix, Pca,
};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let rows: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| next()).collect())
        .collect();
    Matrix::from_rows(&rows)
}

/// Points drawn around `centers` well-separated blob centers — the shape
/// of the study's rescaled PCA space, where sampled intervals concentrate
/// around phase behaviors. (Uniform noise would be the adversarial case
/// for any clustering: in high dimensions its pairwise distances
/// concentrate and there is no structure to find.)
fn clustered_matrix(rows: usize, cols: usize, centers: usize, seed: u64) -> Matrix {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let center_rows: Vec<Vec<f64>> = (0..centers)
        .map(|_| (0..cols).map(|_| next() * 10.0).collect())
        .collect();
    let rows: Vec<Vec<f64>> = (0..rows)
        .map(|i| {
            let c = &center_rows[i % centers];
            // Sum of three uniforms, centered: a cheap bell-shaped jitter.
            c.iter()
                .map(|&v| v + (next() + next() + next() - 1.5) * 0.4)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows)
}

fn benches(c: &mut Criterion) {
    // 69×69 symmetric eigendecomposition: the PCA inner step at study
    // dimensionality.
    let m = random_matrix(200, 69, 1);
    let cov = m.covariance();
    c.bench_function("jacobi_eigen_69x69", |b| {
        b.iter(|| black_box(jacobi_eigen(&cov)));
    });

    // PCA fit on a study-sized sample block.
    let data = random_matrix(2000, 69, 2);
    c.bench_function("pca_fit_2000x69", |b| b.iter(|| black_box(Pca::fit(&data))));

    // The full rescaled-PCA-space construction used per GA fitness
    // evaluation (prominent-phase sized).
    let phases = random_matrix(100, 12, 3);
    c.bench_function("rescaled_pca_space_100x12", |b| {
        b.iter(|| black_box(rescaled_pca_space(&phases, 1.0)));
    });

    // k-means at a reduced study shape.
    let space = random_matrix(1500, 14, 4);
    let cfg = KmeansConfig::new(50).with_restarts(1).with_max_iters(15);
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("kmeans_1500x14_k50", |b| {
        b.iter(|| black_box(kmeans(&space, &cfg)));
    });
    group.finish();

    // k-means at the paper's study shape: ~15 400 sampled intervals in a
    // ~20-dimensional rescaled PCA space, k = 300 clusters, drawn around
    // k blob centers as the real interval data is. `--quick` shrinks the
    // problem so smoke runs stay fast; both sizes compare the
    // bound-pruned implementation against the naive full-scan reference
    // on identical input and configuration.
    let (rows, cols, k, restarts, iters) = if c.is_quick() {
        (1540, 20, 30, 1, 10)
    } else {
        (15_400, 20, 300, 5, 40)
    };
    let study = clustered_matrix(rows, cols, k, 7);
    let study_cfg = KmeansConfig::new(k)
        .with_restarts(restarts)
        .with_max_iters(iters)
        .with_seed(11);
    let mut group = c.benchmark_group("kmeans_study_shape");
    group.sample_size(10);
    group.bench_function(&format!("kmeans_{rows}x{cols}_k{k}"), |b| {
        b.iter(|| black_box(kmeans(&study, &study_cfg)));
    });
    group.bench_function(&format!("kmeans_reference_{rows}x{cols}_k{k}"), |b| {
        b.iter(|| black_box(kmeans_reference(&study, &study_cfg)));
    });
    group.finish();

    // One GA run over prominent-phase-sized fitness data: ~100 phases ×
    // 69 characteristics, selecting k = 12, with the distance-correlation
    // fitness scored in parallel batches.
    let ga_phases = random_matrix(100, 69, 8);
    let ga_fitness = DistanceCorrelationFitness::new(&ga_phases, 1.0);
    let ga_cfg = if c.is_quick() {
        GaConfig::fast(9)
    } else {
        GaConfig::study(9)
    };
    let ga_score = |mask: &[bool]| ga_fitness.score(mask);
    let mut group = c.benchmark_group("ga_generation");
    group.sample_size(10);
    group.bench_function("ga_select_100x69_k12", |b| {
        b.iter(|| black_box(select_features(69, 12, &ga_score, &ga_cfg)));
    });
    group.finish();

    // Normalization + correlation micro-kernels.
    c.bench_function("normalize_2000x69", |b| {
        b.iter(|| black_box(normalize_columns(&data)));
    });
    let x: Vec<f64> = (0..4950).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..4950).map(|i| (i as f64).cos()).collect();
    c.bench_function("pearson_4950", |b| b.iter(|| black_box(pearson(&x, &y))));
}

criterion_group!(stats, benches);
criterion_main!(stats);
