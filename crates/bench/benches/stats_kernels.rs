//! Statistics-substrate kernels: eigendecomposition, PCA, k-means and
//! correlation at the dimensions the study uses.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use phaselab_stats::{
    jacobi_eigen, kmeans, normalize_columns, pearson, rescaled_pca_space, KmeansConfig, Matrix,
    Pca,
};

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    let rows: Vec<Vec<f64>> = (0..rows)
        .map(|_| (0..cols).map(|_| next()).collect())
        .collect();
    Matrix::from_rows(&rows)
}

fn benches(c: &mut Criterion) {
    // 69×69 symmetric eigendecomposition: the PCA inner step at study
    // dimensionality.
    let m = random_matrix(200, 69, 1);
    let cov = m.covariance();
    c.bench_function("jacobi_eigen_69x69", |b| {
        b.iter(|| black_box(jacobi_eigen(&cov)))
    });

    // PCA fit on a study-sized sample block.
    let data = random_matrix(2000, 69, 2);
    c.bench_function("pca_fit_2000x69", |b| b.iter(|| black_box(Pca::fit(&data))));

    // The full rescaled-PCA-space construction used per GA fitness
    // evaluation (prominent-phase sized).
    let phases = random_matrix(100, 12, 3);
    c.bench_function("rescaled_pca_space_100x12", |b| {
        b.iter(|| black_box(rescaled_pca_space(&phases, 1.0)))
    });

    // k-means at a reduced study shape.
    let space = random_matrix(1500, 14, 4);
    let cfg = KmeansConfig::new(50).with_restarts(1).with_max_iters(15);
    let mut group = c.benchmark_group("kmeans");
    group.sample_size(10);
    group.bench_function("kmeans_1500x14_k50", |b| {
        b.iter(|| black_box(kmeans(&space, &cfg)))
    });
    group.finish();

    // Normalization + correlation micro-kernels.
    c.bench_function("normalize_2000x69", |b| {
        b.iter(|| black_box(normalize_columns(&data)))
    });
    let x: Vec<f64> = (0..4950).map(|i| (i as f64).sin()).collect();
    let y: Vec<f64> = (0..4950).map(|i| (i as f64).cos()).collect();
    c.bench_function("pearson_4950", |b| b.iter(|| black_box(pearson(&x, &y))));
}

criterion_group!(stats, benches);
criterion_main!(stats);
