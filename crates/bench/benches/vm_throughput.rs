//! Interpreter throughput over representative kernels (instructions per
//! second as Criterion element throughput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use phaselab_trace::CountingSink;
use phaselab_vm::Vm;
use phaselab_workloads::kernels::{bio, control, memory, numeric};
use phaselab_workloads::Builder;

fn run_instructions(program: &phaselab_vm::Program, budget: u64) -> u64 {
    let mut vm = Vm::new(program);
    let mut sink = CountingSink::new();
    vm.run(&mut sink, budget).expect("runs").instructions
}

fn bench_kernel(c: &mut Criterion, name: &str, emit: impl FnOnce(&mut Builder)) {
    let mut b = Builder::new(1);
    emit(&mut b);
    let program = b.finish().expect("assembles");
    // Pre-measure the instruction count for throughput accounting.
    let instructions = run_instructions(&program, u64::MAX);
    let mut group = c.benchmark_group("vm_throughput");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(20);
    group.bench_function(name, |bench| {
        bench.iter(|| black_box(run_instructions(&program, u64::MAX)));
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_kernel(c, "stream_triad", |b| numeric::stream_triad(b, 1024, 20));
    bench_kernel(c, "pointer_chase", |b| {
        memory::pointer_chase(b, 4096, 200_000);
    });
    bench_kernel(c, "smith_waterman", |b| bio::smith_waterman(b, 48, 96, 10));
    bench_kernel(c, "hash_table", |b| control::hash_table(b, 4000, 12, 5));
    bench_kernel(c, "nbody", |b| numeric::nbody(b, 48, 10));
}

criterion_group!(vm, benches);
criterion_main!(vm);
