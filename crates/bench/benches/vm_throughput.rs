//! Interpreter throughput over representative kernels (instructions per
//! second as Criterion element throughput).
//!
//! Bench identities follow the stable `group.case/size_shape` scheme so
//! the perf trajectory can be diffed across commits: the group encodes
//! the execution engine (`vm_throughput.inst` is the per-instruction
//! oracle, `vm_throughput.block` the block-compiled engine) and the
//! function name encodes kernel and problem shape. The same
//! `size_shape` appears under both groups, so any case directly
//! measures the block engine's dispatch amortization against the
//! baseline. `loop_heavy`, `stream_heavy`, and `fp_heavy` are the
//! registry-shaped cases: real catalog workloads (jpeg from MediaBench
//! II, lbm and leslie3d from SPEC FP 2006) at Tiny scale rather than
//! synthetic kernels — leslie3d has the longest average basic blocks
//! in the registry, so it bounds the dispatch amortization above.
//!
//! Both engines are driven through a *trait object* [`SummarySink`]
//! (`&mut dyn TraceSink` / `&mut dyn BlockSink`), matching the study
//! pipeline where the VM cannot see through its observer and the
//! observer maintains the paper's suite-level aggregates (instruction
//! mix, register traffic, memory traffic, taken branches). This is the
//! honest comparison: with a monomorphized no-op sink the optimizer
//! deletes the per-instruction record construction that the production
//! path always pays, flattering the oracle. Behind the opaque observer
//! the oracle pays one record build, one virtual call and one aggregate
//! update per *instruction*; the block engine pays one virtual call and
//! one precomputed-summary fold per *basic block*.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use phaselab_trace::{BlockSink, SummarySink, TraceSink};
use phaselab_vm::{CompiledProgram, Program, Vm};
use phaselab_workloads::kernels::{bio, control, memory, numeric};
use phaselab_workloads::{Builder, Scale};

fn run_instructions(program: &Program, budget: u64) -> u64 {
    let mut vm = Vm::new(program);
    let mut obs = SummarySink::new();
    let mut sink: &mut dyn TraceSink = black_box(&mut obs);
    vm.run(&mut sink, budget).expect("runs");
    obs.instructions()
}

fn run_instructions_block(program: &Program, compiled: &CompiledProgram, budget: u64) -> u64 {
    let mut vm = Vm::new(program);
    let mut obs = SummarySink::new();
    let mut sink: &mut dyn BlockSink = black_box(&mut obs);
    vm.run_blocks(compiled, &mut sink, budget).expect("runs");
    obs.instructions()
}

/// Benches one program under both engines: `vm_throughput.inst/<case>`
/// and `vm_throughput.block/<case>`.
fn bench_program(c: &mut Criterion, case: &str, program: &Program) {
    // Pre-measure the instruction count for throughput accounting.
    let instructions = run_instructions(program, u64::MAX);

    let mut group = c.benchmark_group("vm_throughput.inst");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(20);
    group.bench_function(case, |bench| {
        bench.iter(|| black_box(run_instructions(program, u64::MAX)));
    });
    group.finish();

    let compiled = CompiledProgram::compile(program);
    assert_eq!(
        run_instructions_block(program, &compiled, u64::MAX),
        instructions,
        "engines disagree on {case}"
    );
    let mut group = c.benchmark_group("vm_throughput.block");
    group.throughput(Throughput::Elements(instructions));
    group.sample_size(20);
    group.bench_function(case, |bench| {
        bench.iter(|| black_box(run_instructions_block(program, &compiled, u64::MAX)));
    });
    group.finish();
}

fn bench_kernel(c: &mut Criterion, case: &str, emit: impl FnOnce(&mut Builder)) {
    let mut b = Builder::new(1);
    emit(&mut b);
    let program = b.finish().expect("assembles");
    bench_program(c, case, &program);
}

fn registry_program(name: &str) -> Program {
    phaselab_workloads::catalog()
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| panic!("{name} in the registry"))
        .build(Scale::Tiny, 0)
}

fn benches(c: &mut Criterion) {
    // Registry-shaped cases: real catalog workloads, not synthetic
    // kernels — the dispatch profiles the study itself sees. jpeg is
    // branch-heavy (short blocks), lbm streams through long unrolled
    // blocks where dispatch amortization peaks.
    bench_program(c, "loop_heavy", &registry_program("jpeg"));
    bench_program(c, "stream_heavy", &registry_program("lbm"));
    bench_program(c, "fp_heavy", &registry_program("leslie3d"));

    bench_kernel(c, "stream_triad_1024x20", |b| {
        numeric::stream_triad(b, 1024, 20);
    });
    bench_kernel(c, "pointer_chase_4096x200k", |b| {
        memory::pointer_chase(b, 4096, 200_000);
    });
    bench_kernel(c, "smith_waterman_48x96x10", |b| {
        bio::smith_waterman(b, 48, 96, 10);
    });
    bench_kernel(c, "hash_table_4000x12x5", |b| {
        control::hash_table(b, 4000, 12, 5);
    });
    bench_kernel(c, "nbody_48x10", |b| numeric::nbody(b, 48, 10));
}

criterion_group!(vm, benches);
criterion_main!(vm);
