//! `repro` — regenerates every table and figure of Hoste & Eeckhout
//! (ISPASS 2008) from the `phaselab` reproduction.
//!
//! ```text
//! repro [options] <experiment>
//!
//! experiments:
//!   table1             the 69 characteristics by category (Table 1)
//!   table2             GA-selected key characteristics (Table 2)
//!   table3             benchmarks and interval counts (Table 3)
//!   fig1               GA correlation vs #characteristics (Figure 1)
//!   fig23              kiviat + pie plots of the prominent phases (Figures 2-3)
//!   fig4               workload-space coverage per suite (Figure 4)
//!   fig5               cumulative coverage per suite (Figure 5)
//!   fig6               unique-behavior fraction per suite (Figure 6)
//!   motivation         aggregate vs phase-level characterization (§2.1)
//!   implications       simulation-point counts per suite (§5.3)
//!   simpoints          per-benchmark SimPoint accuracy (related work)
//!   benchmarks         per-benchmark coverage and specificity
//!   drift              CPU2000 -> CPU2006 benchmark drift
//!   similarity         benchmark-similarity heatmap + dendrogram cut
//!   ablation-k         coverage/variability trade-off across k (§2.6)
//!   ablation-interval  interval-granularity sensitivity (§2.9)
//!   ablation-sampling  equal-weight vs proportional sampling (§2.4)
//!   all                everything above, sharing one study run
//!
//! options:
//!   --scale tiny|small|full   workload scale        (default: full)
//!   --interval N              interval length       (default: 100000)
//!   --samples N               samples per benchmark (default: 200)
//!   --k N                     clusters              (default: 300)
//!   --seed N                  master seed           (default: 0)
//!   --threads N               worker threads        (default: all cores)
//!   --engine block|inst       VM execution engine   (default: block)
//!   --suites LIST             restrict the study to these suites (comma-separated)
//!   --only LIST               restrict the study to these benchmark names
//!   --checkpoint-dir DIR      persist/reuse study checkpoints in DIR
//!   --resume                  resume from --checkpoint-dir (must exist)
//!   --max-inst-per-bench N    quarantine benchmarks exceeding N instructions
//!   --no-static-analysis      skip the static pre-flight (budgets, pruning,
//!                             shard ordering, static_analysis section)
//!   --metrics-out PATH        write the run manifest (JSON) to PATH
//!   --progress                throttled stage/progress lines on stderr
//!   --verify-only             statically verify every registry program, run nothing
//!   --json                    machine-readable diagnostics (lint/--verify-only)
//!   --help                    print usage and exit
//! ```
//!
//! `--verify-only` is a lint mode: it builds every registry program at
//! the requested `--scale`, runs `Program::verify_all` on each, prints
//! one line per finding, and exits `1` when anything fails — without
//! executing a single instruction. `lint` goes further: it runs the
//! abstract interpreter (`Program::analyze`) over every program and
//! reports severity-ranked diagnostics — unbounded loops without a
//! budget, dead blocks, degenerate constant loops, unreachable fault
//! sites, oversized footprints — exiting `1` only on `deny`-severity
//! findings. Both share one `--json` schema:
//! `{schema, programs, clean, findings: [{path, pc, instruction,
//! severity, source, kind, message}]}`.
//!
//! Text output goes to stdout; SVG/CSV artifacts go to
//! `target/experiments` (override with `PHASELAB_OUT`).
//!
//! Exit codes: `0` on success, `1` when the study itself fails (a
//! runtime error), `2` for usage errors — unknown flags, bad values,
//! unknown experiments — and `130` when interrupted (Ctrl-C).
//! Diagnostics are one line on stderr. Benchmarks quarantined by the
//! study are reported as warnings; the experiments run over the
//! survivors.
//!
//! With `--checkpoint-dir`, every completed benchmark characterization
//! and k-means restart is persisted as it finishes; an interrupted run
//! re-invoked with `--resume` reloads them and produces a bit-identical
//! result.
//!
//! `--supervise N` turns the binary into its own process supervisor: it
//! spawns N `--shard` workers over the shared store, restarts crashed
//! or hung ones with capped exponential backoff, salvages
//! permanently-dead shards in-process, and then runs the streaming
//! reduce — producing a report byte-identical to a fault-free
//! single-process run, or a typed non-zero exit naming the
//! unrecoverable shard. See DESIGN.md §16 for the fault model, the
//! lease/fencing protocol, and the supervisor state machine.
//!
//! `--metrics-out` installs the `phaselab-obs` subscriber and writes
//! one deterministic run manifest (counters, per-benchmark events,
//! k-means pruning stats, GA telemetry, spans) after the run; see
//! DESIGN.md §13. `--progress` prints a throttled stage/progress line
//! to stderr. Both are off by default, leaving the output byte-for-byte
//! what it was without them.

// The only unsafe in the workspace is the signal-handler install in
// `sigint` below, allowed explicitly; everything else is forbidden
// (and CI greps for new `unsafe` outside the allowlist).
#![deny(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use phaselab_bench::write_artifact;
use phaselab_core::{
    characterization_fingerprint, coverage, diversity, format_table, run_shard, run_shard_with,
    run_study_resumable, run_study_with_resumable, uniqueness, AnalysisMode, CancelToken,
    CheckpointStore, SamplingPolicy, StudyConfig, StudyError, StudyResult,
};
use phaselab_ga::{greedy_select, select_features, DistanceCorrelationFitness, GaConfig};
use phaselab_mica::{feature_names, FeatureCategory, NUM_FEATURES};
use phaselab_obs::Json;
use phaselab_stats::{kmeans, KmeansConfig};
use phaselab_viz::{
    ascii_bar_chart, ascii_curve, BarChart, KiviatAxisSpec, KiviatPlot, LineChart, PieChart,
};
use phaselab_workloads::{Scale, Suite};

/// Exit code for usage errors (bad flags, bad values, unknown
/// experiments): the caller got the invocation wrong.
const EXIT_USAGE: i32 = 2;
/// Exit code for runtime errors (the study itself failed): the
/// invocation was fine, the run was not.
const EXIT_RUNTIME: i32 = 1;
/// Exit code when the run was interrupted (Ctrl-C), matching the shell
/// convention of 128 + SIGINT.
const EXIT_INTERRUPTED: i32 = 130;

/// Ctrl-C and SIGTERM handling: the signal handler only flips an atomic
/// flag; a watcher thread turns the flag into a [`CancelToken`] trip,
/// which the pipeline observes at its next check. SIGTERM gets the same
/// cooperative treatment as SIGINT so supervised workers flush their
/// checkpoints and release their leases instead of dying mid-write.
/// `unsafe` allowlist: registering an async-signal-safe handler
/// requires the raw `signal(2)` FFI — there is no safe-Rust
/// equivalent without a dependency. The handler body itself is a
/// single atomic store.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a single atomic store, nothing else.
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}
    pub fn interrupted() -> bool {
        false
    }
}

/// Installs the Ctrl-C handler and a watcher thread that trips `token`
/// once the signal arrives.
fn install_interrupt_handler(token: &CancelToken) {
    sigint::install();
    let token = token.clone();
    std::thread::spawn(move || loop {
        if sigint::interrupted() {
            eprintln!(
                "[repro] interrupt received; finishing in-flight work and flushing checkpoints"
            );
            token.cancel();
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    });
}

/// Every experiment the binary knows, validated before any work runs.
const EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig23",
    "fig4",
    "fig5",
    "fig6",
    "motivation",
    "implications",
    "simpoints",
    "benchmarks",
    "drift",
    "similarity",
    "ablation-k",
    "ablation-interval",
    "ablation-sampling",
    "all",
];

/// Experiments that read [`StudyResult::features`], the raw
/// interval-by-feature matrix `--streaming` deliberately does not
/// retain.
const STREAMING_INCOMPATIBLE: &[&str] = &["fig1", "fig23", "motivation", "all"];

/// Commands that drive the characterization service instead of running
/// a study in-process. They occupy the experiment slot, like `lint`.
const SERVICE_COMMANDS: &[&str] = &["serve", "submit", "jobs", "cache"];

const USAGE: &str = "usage: repro [options] <experiment>

experiments:
  table1             the 69 characteristics by category (Table 1)
  table2             GA-selected key characteristics (Table 2)
  table3             benchmarks and interval counts (Table 3)
  fig1               GA correlation vs #characteristics (Figure 1)
  fig23              kiviat + pie plots of the prominent phases (Figures 2-3)
  fig4               workload-space coverage per suite (Figure 4)
  fig5               cumulative coverage per suite (Figure 5)
  fig6               unique-behavior fraction per suite (Figure 6)
  motivation         aggregate vs phase-level characterization (2.1)
  implications       simulation-point counts per suite (5.3)
  simpoints          per-benchmark SimPoint accuracy (related work)
  benchmarks         per-benchmark coverage and specificity
  drift              CPU2000 -> CPU2006 benchmark drift
  similarity         benchmark-similarity heatmap + dendrogram cut
  ablation-k         coverage/variability trade-off across k (2.6)
  ablation-interval  interval-granularity sensitivity (2.9)
  ablation-sampling  equal-weight vs proportional sampling (2.4)
  all                everything above, sharing one study run (default)

options:
  --scale tiny|small|full   workload scale        (default: full)
  --interval N              interval length       (default: 100000)
  --samples N               samples per benchmark (default: 200)
  --k N                     clusters              (default: 300)
  --seed N                  master seed           (default: 0)
  --threads N               worker threads        (default: all cores)
  --engine block|inst       VM execution engine: block-compiled dispatch or the
                            per-instruction oracle; results are bit-identical
                            (default: block)
  --suites LIST             restrict the study to these suites (comma-separated:
                            int2000,fp2000,int2006,fp2006,BioPerf,BMW,MediaBenchII)
  --only LIST               restrict the study to these benchmark names
                            (comma-separated; names match across selected suites)
  --checkpoint-dir DIR      persist/reuse study checkpoints in DIR
  --resume                  resume from --checkpoint-dir (must exist)
  --streaming               memory-bounded analysis: stream feature rows out of
                            the checkpoint store instead of materializing the
                            interval-by-feature matrix (requires
                            --checkpoint-dir; results are bit-identical, but
                            fig1/fig23/motivation/all need the matrix and
                            refuse this mode)
  --kmeans-batch N          mini-batch k-means, N sampled points per iteration
                            (approximate; the exact Hamerly solver when omitted)
  --shard I/N               worker pass of a sharded study: characterize shard
                            I of N (round-robin by catalog index) into the
                            checkpoint store and exit; no analysis runs.
                            Launch one worker per I, then reduce.
  --reduce N                reduce pass of a sharded study: analyze a store
                            filled by N shard workers (implies --streaming;
                            combine with a streaming-capable experiment)
  --supervise N             supervised sharded study: spawn N shard workers as
                            child processes, restart crashed/hung ones with
                            capped backoff, salvage permanently-dead shards
                            in-process, then run the reduce (implies
                            --streaming; requires --checkpoint-dir; combine
                            with a streaming-capable experiment)
  --max-inst-per-bench N    quarantine benchmarks exceeding N instructions
                            (when absent, a sound budget is derived from the
                            static analyzer's per-benchmark instruction bound)
  --no-static-analysis      skip the static pre-flight: no derived watchdog
                            budgets, no dead-code pruning, no longest-first
                            shard ordering, no static_analysis manifest section
                            (results are bit-identical either way)
  --metrics-out PATH        write the run manifest (JSON) to PATH
  --progress                throttled stage/progress lines on stderr
  --verify-only             statically verify every registry program, run nothing
  --json                    machine-readable diagnostics (lint/--verify-only)
  --help                    print this help and exit

diagnostics:
  lint               abstract-interpretation lints over every registry program
                     (unbounded loops, dead blocks, degenerate constant loops,
                     unreachable faults, oversized footprints); exits 1 on any
                     deny-severity finding. Combine with --json for the
                     machine-readable schema shared with --verify-only.

service (characterization-as-a-service over a spool directory):
  serve              run the job server over --queue-dir: admit submissions
                     under the --jobs concurrency budget, dedupe identical
                     specs to one execution, run each job as a child repro
                     process against the shared store under the queue root.
                     --drain exits once the queue is empty; otherwise serve
                     until interrupted. PHASELAB_SERVE_TIMEOUT_MS bounds each
                     job's wall clock.
  submit [EXPERIMENT] submit a job built from the study flags above to
                     --queue-dir and print its name (default experiment: all).
                     With --wait, poll until it completes, print the result
                     location, and exit 1 if the job failed.
  jobs               list every submission in --queue-dir with its state
  cache [stats|gc]   result-cache maintenance over --checkpoint-dir, usable
                     without the server: `stats` (the default) prints entry
                     and byte counts by kind; `gc` evicts least-recently-used
                     entries down to --max-bytes, skipping pinned fingerprints

service options:
  --queue-dir DIR    the spool directory (serve/submit/jobs; created on first
                     use; holds queue state, results, and the shared store)
  --jobs N           serve: max concurrently executing jobs (default: 2)
  --drain            serve: exit when the queue is empty and nothing is running
  --wait             submit: block until the job completes
  --max-bytes N      cache gc: evict down to this many bytes

exit codes: 0 success, 1 study/runtime error, 2 usage error, 130 interrupted";

/// Everything `parse_args` extracts from the command line.
struct Cli {
    cfg: StudyConfig,
    command: String,
    checkpoint_dir: Option<std::path::PathBuf>,
    /// `--only`: benchmark-name filter over the selected suites.
    only: Vec<String>,
    /// `--metrics-out`: run-manifest destination.
    metrics_out: Option<std::path::PathBuf>,
    /// `--progress`: throttled stderr stage/progress lines.
    progress: bool,
    /// `--shard I/N`: run the worker pass for shard I (N is
    /// `cfg.shard_total`) instead of an experiment.
    shard: Option<u32>,
    /// `--supervise N`: spawn and babysit N shard workers, then reduce.
    supervise: Option<u32>,
    /// `--json`: machine-readable diagnostics for `lint`/`--verify-only`.
    json: bool,
    /// `--queue-dir`: the spool directory for `serve`/`submit`/`jobs`.
    queue_dir: Option<std::path::PathBuf>,
    /// `--jobs N`: the serve loop's concurrency budget.
    jobs_budget: usize,
    /// `--drain`: serve exits once the queue runs dry.
    drain: bool,
    /// `--wait`: submit blocks until its job completes.
    wait: bool,
    /// `--max-bytes N`: the `cache gc` size budget.
    max_bytes: Option<u64>,
    /// The service command's own positional: the experiment for
    /// `submit`, the action for `cache`.
    subarg: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let cli = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("repro: {msg} (try `repro --help`)");
            std::process::exit(EXIT_USAGE);
        }
    };
    if cli.command == "--verify-only" {
        std::process::exit(verify_only(cli.cfg.scale, cli.json));
    }
    if cli.command == "lint" {
        std::process::exit(lint_registry(cli.cfg.scale, cli.json));
    }
    if SERVICE_COMMANDS.contains(&cli.command.as_str()) {
        std::process::exit(run_service(&cli));
    }
    let store = match &cli.checkpoint_dir {
        Some(dir) => match CheckpointStore::open(dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("repro: cannot open checkpoint dir `{}`: {e}", dir.display());
                std::process::exit(EXIT_RUNTIME);
            }
        },
        None => None,
    };
    if cli.metrics_out.is_some() || cli.progress {
        phaselab_obs::install();
    }
    let progress_stop = cli.progress.then(spawn_progress_reporter);
    let token = CancelToken::new();
    install_interrupt_handler(&token);
    let outcome = if let Some(shard_index) = cli.shard {
        let s = store
            .as_ref()
            .expect("parse_args requires --checkpoint-dir for --shard");
        run_shard_worker(&cli.cfg, shard_index, &cli.only, s, &token)
    } else if let Some(shards) = cli.supervise {
        let s = store
            .as_ref()
            .expect("parse_args requires --checkpoint-dir for --supervise");
        run_supervised(&cli, &args, shards, s, &token)
    } else {
        run_experiment(&cli.cfg, &cli.command, &cli.only, store.as_ref(), &token)
    };
    if let Some(stop) = progress_stop {
        stop.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    match outcome {
        Ok(()) => {
            if let Some(path) = &cli.metrics_out {
                write_metrics_manifest(&cli.cfg, &cli.command, path);
            }
        }
        Err(StudyError::Cancelled) => {
            match &store {
                Some(s) => eprintln!(
                    "repro: interrupted; resume with `--checkpoint-dir {} --resume`",
                    s.dir().display()
                ),
                None => eprintln!(
                    "repro: interrupted (re-run with --checkpoint-dir to make runs resumable)"
                ),
            }
            std::process::exit(EXIT_INTERRUPTED);
        }
        Err(e) => {
            eprintln!("repro: {e}");
            std::process::exit(EXIT_RUNTIME);
        }
    }
}

/// Measures raw VM dispatch throughput under both engines on one
/// registry workload (lbm: long unrolled blocks, the shape the block
/// engine is built for) and records the results as Timing-class
/// gauges, so `BENCH_obs.json` can carry a same-binary engine speedup.
/// Both engines run behind a trait-object sink, exactly like the study
/// pipeline — min-of-5 wall time per engine keeps scheduler noise out
/// of the numerator and denominator symmetrically.
fn calibrate_engines(reg: &phaselab_obs::Registry) {
    use phaselab_trace::{BlockSink, SummarySink, TraceSink};
    use phaselab_vm::{CompiledProgram, Vm};

    let Some(bench) = phaselab_workloads::catalog()
        .into_iter()
        .find(|b| b.name() == "lbm")
    else {
        return;
    };
    let program = bench.build(phaselab_workloads::Scale::Tiny, 0);
    let compiled = CompiledProgram::compile(&program);

    let time = |run: &mut dyn FnMut() -> u64| {
        let mut best = f64::INFINITY;
        let mut insts = 0;
        for _ in 0..5 {
            let t = std::time::Instant::now();
            insts = std::hint::black_box(run());
            best = best.min(t.elapsed().as_secs_f64() * 1e9);
        }
        best / insts.max(1) as f64
    };
    let inst_ns = time(&mut || {
        let mut vm = Vm::new(&program);
        let mut obs = SummarySink::new();
        let mut sink: &mut dyn TraceSink = std::hint::black_box(&mut obs);
        vm.run(&mut sink, u64::MAX).expect("lbm halts");
        obs.instructions()
    });
    let block_ns = time(&mut || {
        let mut vm = Vm::new(&program);
        let mut obs = SummarySink::new();
        let mut sink: &mut dyn BlockSink = std::hint::black_box(&mut obs);
        vm.run_blocks(&compiled, &mut sink, u64::MAX)
            .expect("lbm halts");
        obs.instructions()
    });

    use phaselab_obs::Class::Timing;
    reg.gauge("vm.calibrate.inst_ns_per_inst", Timing)
        .set(inst_ns);
    reg.gauge("vm.calibrate.block_ns_per_inst", Timing)
        .set(block_ns);
    reg.gauge("vm.calibrate.block_speedup", Timing)
        .set(inst_ns / block_ns);
}

/// Measures static-analyzer throughput over the full registry catalog
/// (built at Tiny so the measurement is dominated by analysis, not
/// program construction) and records it — plus the per-pass wall-time
/// split the analyzer self-reports — as Timing-class gauges. Min-of-3
/// keeps scheduler noise out, mirroring `calibrate_engines`.
fn calibrate_static(reg: &phaselab_obs::Registry) {
    use phaselab_obs::Class::Timing;
    let programs: Vec<_> = phaselab_workloads::catalog()
        .iter()
        .map(|b| b.build(Scale::Tiny, 0))
        .collect();
    let mut best = f64::INFINITY;
    let mut pass_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    for _ in 0..3 {
        let t = Instant::now();
        let mut this_round: BTreeMap<&'static str, u64> = BTreeMap::new();
        for program in &programs {
            if let Ok(report) = std::hint::black_box(program.analyze()) {
                for (pass, ns) in &report.pass_ns {
                    *this_round.entry(pass).or_insert(0) += ns;
                }
            }
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
            pass_ns = this_round;
        }
    }
    reg.gauge("static.calibrate.progs_per_s", Timing)
        .set(programs.len() as f64 / best.max(f64::MIN_POSITIVE));
    for (pass, ns) in pass_ns {
        reg.gauge(&format!("static.calibrate.{pass}_ms"), Timing)
            .set(ns as f64 / 1e6);
    }
}

/// Renders the run manifest and writes it to `path`. The config section
/// deliberately excludes the thread count: everything outside the
/// manifest's `timings` section is identical across thread counts.
fn write_metrics_manifest(cfg: &StudyConfig, command: &str, path: &Path) {
    let Some(reg) = phaselab_obs::registry() else {
        return;
    };
    calibrate_engines(reg);
    calibrate_static(reg);
    let config = vec![
        ("experiment".to_string(), Json::Str(command.to_string())),
        (
            "fingerprint".to_string(),
            Json::Str(format!("{:016x}", characterization_fingerprint(cfg))),
        ),
        (
            "scale".to_string(),
            Json::Str(format!("{:?}", cfg.scale).to_lowercase()),
        ),
        (
            "engine".to_string(),
            Json::Str(cfg.engine.name().to_string()),
        ),
        ("interval_len".to_string(), Json::U64(cfg.interval_len)),
        (
            "samples_per_benchmark".to_string(),
            Json::U64(cfg.samples_per_benchmark as u64),
        ),
        ("k".to_string(), Json::U64(cfg.k as u64)),
        ("seed".to_string(), Json::U64(cfg.seed)),
    ];
    let doc = phaselab_obs::manifest_json(reg, &config, true);
    match std::fs::write(path, doc) {
        Ok(()) => eprintln!("[repro] wrote metrics manifest {}", path.display()),
        Err(e) => {
            eprintln!(
                "repro: cannot write metrics manifest `{}`: {e}",
                path.display()
            );
            std::process::exit(EXIT_RUNTIME);
        }
    }
}

/// Spawns the `--progress` reporter: a detached thread that prints a
/// stage/progress line to stderr whenever it changes (checked twice a
/// second). Returns the flag that stops it.
fn spawn_progress_reporter() -> std::sync::Arc<std::sync::atomic::AtomicBool> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let stop = std::sync::Arc::new(AtomicBool::new(false));
    let stop_seen = std::sync::Arc::clone(&stop);
    std::thread::spawn(move || {
        let Some(reg) = phaselab_obs::registry() else {
            return;
        };
        let started = Instant::now();
        let mut last = String::new();
        while !stop_seen.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(500));
            let stage = reg.stage();
            if stage.is_empty() || stage == "done" {
                continue;
            }
            let done = reg.counter_value("study.benchmarks.done").unwrap_or(0);
            let total = reg.counter_value("study.benchmarks.total").unwrap_or(0);
            let line = if stage == "characterize" && total > 0 && done > 0 {
                let elapsed = started.elapsed().as_secs_f64();
                let eta = elapsed * (total.saturating_sub(done)) as f64 / done as f64;
                format!("[repro] progress: {stage} {done}/{total} benchmarks (eta {eta:.0}s)")
            } else {
                format!("[repro] progress: stage {stage}")
            };
            if line != last {
                eprintln!("{line}");
                last = line;
            }
        }
    });
    stop
}

fn run_experiment(
    cfg: &StudyConfig,
    command: &str,
    only: &[String],
    store: Option<&CheckpointStore>,
    token: &CancelToken,
) -> Result<(), StudyError> {
    let study = if command == "table1" {
        None
    } else {
        eprintln!(
            "[repro] running study: scale={:?} interval={} samples={} k={}",
            cfg.scale, cfg.interval_len, cfg.samples_per_benchmark, cfg.k
        );
        let t = Instant::now();
        let r = run_filtered_study(cfg, only, store, token)?;
        eprintln!(
            "[repro] study done in {:.1}s: {} benchmarks, {} sampled intervals, {} PCs ({:.1}% var), {} prominent phases covering {:.1}%",
            t.elapsed().as_secs_f64(),
            r.benchmarks.len(),
            r.sampled.len(),
            r.pcs_retained,
            r.variance_explained * 100.0,
            r.prominent.len(),
            r.prominent_coverage * 100.0
        );
        warn_quarantined(&r.quarantined);
        if let Some(budget) = cfg.max_inst_per_bench {
            warn_near_budget(&r, budget);
        }
        Some(r)
    };

    match command {
        "table1" => table1(),
        "table2" => table2(study.as_ref().unwrap()),
        "table3" => table3(study.as_ref().unwrap()),
        "fig1" => fig1(study.as_ref().unwrap()),
        "fig23" => fig23(study.as_ref().unwrap()),
        "fig4" => fig4(study.as_ref().unwrap()),
        "fig5" => fig5(study.as_ref().unwrap()),
        "fig6" => fig6(study.as_ref().unwrap()),
        "motivation" => motivation(study.as_ref().unwrap()),
        "implications" => implications(study.as_ref().unwrap()),
        "simpoints" => simpoints(study.as_ref().unwrap()),
        "benchmarks" => benchmarks_report(study.as_ref().unwrap()),
        "drift" => drift(study.as_ref().unwrap()),
        "similarity" => similarity(study.as_ref().unwrap()),
        "ablation-k" => ablation_k(study.as_ref().unwrap()),
        "ablation-interval" => ablation_interval(study.as_ref().unwrap(), cfg, only, store, token)?,
        "ablation-sampling" => ablation_sampling(study.as_ref().unwrap(), cfg, only, store, token)?,
        "all" => {
            let r = study.as_ref().unwrap();
            table1();
            table2(r);
            table3(r);
            fig1(r);
            fig23(r);
            fig4(r);
            fig5(r);
            fig6(r);
            motivation(r);
            implications(r);
            simpoints(r);
            benchmarks_report(r);
            drift(r);
            similarity(r);
            ablation_k(r);
            ablation_interval(r, cfg, only, store, token)?;
            ablation_sampling(r, cfg, only, store, token)?;
        }
        other => unreachable!("experiment `{other}` validated at parse time"),
    }
    Ok(())
}

/// One diagnostic from a registry-wide static pass — the shared record
/// behind the `lint` and `--verify-only` text and `--json` outputs. The
/// JSON schema (`schema: 1`) is validated in CI by
/// `scripts/check_manifest.py --diagnostics`.
struct Finding {
    /// `suite/bench/input`, the registry coordinates of the program.
    path: String,
    pc: u32,
    instruction: String,
    /// `deny` | `warn` | `info`; every verifier finding is `deny`.
    severity: &'static str,
    /// Which pass produced it: `verify` or `lint`.
    source: &'static str,
    /// Kebab-case diagnostic kind (e.g. `dead-block`, `verify-error`).
    kind: String,
    message: String,
}

/// Sort key: most severe first, then registry order, then pc.
fn severity_rank(severity: &str) -> u8 {
    match severity {
        "deny" => 0,
        "warn" => 1,
        _ => 2,
    }
}

/// Renders the shared diagnostics document:
/// `{schema, programs, clean, findings: [{path, pc, instruction,
/// severity, source, kind, message}]}`.
fn findings_json(programs: usize, findings: &[Finding]) -> String {
    let items = findings
        .iter()
        .map(|f| {
            Json::Obj(vec![
                ("path".to_string(), Json::Str(f.path.clone())),
                ("pc".to_string(), Json::U64(u64::from(f.pc))),
                ("instruction".to_string(), Json::Str(f.instruction.clone())),
                ("severity".to_string(), Json::Str(f.severity.to_string())),
                ("source".to_string(), Json::Str(f.source.to_string())),
                ("kind".to_string(), Json::Str(f.kind.clone())),
                ("message".to_string(), Json::Str(f.message.clone())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::U64(1)),
        ("programs".to_string(), Json::U64(programs as u64)),
        ("clean".to_string(), Json::Bool(findings.is_empty())),
        ("findings".to_string(), Json::Arr(items)),
    ])
    .render_pretty()
}

/// `--verify-only`: build every registry program at the requested scale
/// and run the static verifier over each, executing nothing. One stdout
/// line per finding (or the shared diagnostics JSON with `--json`); the
/// exit code says whether the registry is clean.
fn verify_only(scale: Scale, json: bool) -> i32 {
    let mut findings = Vec::new();
    let mut programs = 0usize;
    for bench in phaselab_workloads::catalog() {
        for input in 0..bench.num_inputs() {
            let program = bench.build(scale, input);
            programs += 1;
            for err in program.verify_all() {
                if !json {
                    println!(
                        "{} [{}] input `{}`: {err}",
                        bench.name(),
                        bench.suite().short_name(),
                        bench.input_names()[input]
                    );
                }
                findings.push(Finding {
                    path: format!(
                        "{}/{}/{}",
                        bench.suite().short_name(),
                        bench.name(),
                        bench.input_names()[input]
                    ),
                    pc: err.pc(),
                    instruction: err.instruction().to_string(),
                    severity: "deny",
                    source: "verify",
                    kind: "verify-error".to_string(),
                    message: err.to_string(),
                });
            }
        }
    }
    if json {
        print!("{}", findings_json(programs, &findings));
    } else if findings.is_empty() {
        println!("all clean: {programs} programs verified");
    }
    if findings.is_empty() {
        0
    } else {
        eprintln!(
            "repro: {} static-verification findings across {programs} programs",
            findings.len()
        );
        EXIT_RUNTIME
    }
}

/// `lint`: run the abstract interpreter over every registry program at
/// the requested scale — no execution — and report the severity-ranked
/// diagnostics (unbounded loops without a budget, dead blocks,
/// degenerate constant loops, unreachable fault sites, oversized
/// footprints). A program the verifier rejects outright surfaces as a
/// `deny`/`verify` finding, same as `--verify-only`. Exits `1` only
/// when a `deny`-severity finding exists: `warn`/`info` diagnostics are
/// advisory and leave the exit code at `0`.
fn lint_registry(scale: Scale, json: bool) -> i32 {
    let mut findings = Vec::new();
    let mut programs = 0usize;
    for bench in phaselab_workloads::catalog() {
        for input in 0..bench.num_inputs() {
            let program = bench.build(scale, input);
            programs += 1;
            let path = format!(
                "{}/{}/{}",
                bench.suite().short_name(),
                bench.name(),
                bench.input_names()[input]
            );
            match program.analyze() {
                Ok(report) => {
                    for lint in &report.lints {
                        findings.push(Finding {
                            path: path.clone(),
                            pc: lint.pc,
                            instruction: lint.instr.clone(),
                            severity: lint.severity.as_str(),
                            source: "lint",
                            kind: lint.kind.as_str().to_string(),
                            message: lint.message.clone(),
                        });
                    }
                }
                Err(err) => findings.push(Finding {
                    path,
                    pc: err.pc(),
                    instruction: err.instruction().to_string(),
                    severity: "deny",
                    source: "verify",
                    kind: "verify-error".to_string(),
                    message: err.to_string(),
                }),
            }
        }
    }
    // Most severe first; within a severity keep registry order (the
    // catalog walk above), which the stable sort preserves.
    findings.sort_by_key(|f| severity_rank(f.severity));
    let denied = findings.iter().filter(|f| f.severity == "deny").count();
    if json {
        print!("{}", findings_json(programs, &findings));
    } else {
        for f in &findings {
            println!(
                "{}: {} pc={} `{}`: {} [{}]",
                f.severity, f.path, f.pc, f.instruction, f.message, f.kind
            );
        }
        println!(
            "{programs} programs linted: {} findings ({denied} deny)",
            findings.len()
        );
    }
    if denied == 0 {
        0
    } else {
        eprintln!("repro: {denied} deny-severity lint findings across {programs} programs");
        EXIT_RUNTIME
    }
}

/// One warning line per quarantined benchmark; the study itself carried
/// on over the survivors.
fn warn_quarantined(quarantined: &[phaselab_core::QuarantinedBenchmark]) {
    for q in quarantined {
        eprintln!("[repro] warning: quarantined {q}");
    }
}

/// `--shard I/N`: the worker pass of a sharded study. Characterizes
/// this shard's benchmarks into the shared store (under the streaming
/// protocol fingerprint) and reports the tally; the analysis happens
/// later, in the `--reduce` pass.
fn run_shard_worker(
    cfg: &StudyConfig,
    shard_index: u32,
    only: &[String],
    store: &CheckpointStore,
    token: &CancelToken,
) -> Result<(), StudyError> {
    eprintln!(
        "[repro] shard worker {}/{}: characterizing into {}",
        shard_index,
        cfg.shard_total,
        store.dir().display()
    );
    let t = Instant::now();
    let summary = if only.is_empty() {
        run_shard(cfg, shard_index, store, Some(token))?
    } else {
        let benches: Vec<phaselab_workloads::Benchmark> = phaselab_workloads::catalog()
            .into_iter()
            .filter(|b| {
                cfg.suites
                    .as_ref()
                    .is_none_or(|suites| suites.contains(&b.suite()))
            })
            .filter(|b| only.iter().any(|name| name == b.name()))
            .collect();
        run_shard_with(cfg, &benches, shard_index, store, Some(token))?
    };
    eprintln!(
        "[repro] shard {}/{} done in {:.1}s: {} assigned, {} characterized, {} quarantined",
        summary.shard_index,
        summary.shard_total,
        t.elapsed().as_secs_f64(),
        summary.assigned,
        summary.characterized,
        summary.quarantined.len()
    );
    warn_quarantined(&summary.quarantined);
    Ok(())
}

/// Flags whose value must travel with them when the supervisor rebuilds
/// the worker argv from its own.
const VALUE_FLAGS: &[&str] = &[
    "--scale",
    "--interval",
    "--samples",
    "--k",
    "--seed",
    "--threads",
    "--engine",
    "--suites",
    "--only",
    "--checkpoint-dir",
    "--kmeans-batch",
    "--max-inst-per-bench",
];

/// Builds the child worker argv from the supervisor's own argv: keeps
/// the study-shape flags (scale, seed, filters, the checkpoint dir),
/// drops `--supervise` itself (each child gets `--shard I/N` appended
/// by the supervisor instead), the experiment token (workers
/// characterize; only the parent reduces), and the parent-only flags
/// (`--metrics-out`, `--progress`, `--resume`, `--streaming`).
fn worker_argv(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--supervise" || a == "--metrics-out" {
            i += 2; // flag + value
        } else if a == "--no-static-analysis" {
            // Boolean study-shape flag: workers must make the same
            // static-analysis decision as the parent or the store
            // fingerprints would describe differently-derived budgets.
            out.push(args[i].clone());
            i += 1;
        } else if VALUE_FLAGS.contains(&a) {
            out.push(args[i].clone());
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
            i += 2;
        } else {
            // `--progress`, `--resume`, `--streaming`, and the
            // experiment token are parent-side concerns; anything else
            // was already rejected by parse_args.
            i += 1;
        }
    }
    out
}

/// `--supervise N`: spawns N `--shard` worker processes over the shared
/// store, restarts crashed or hung ones with capped backoff, salvages
/// permanently-dead shards in-process, and then runs the streaming
/// reduce — one command, chaos-tolerant end to end. The report is
/// byte-identical to a fault-free single-process run because every
/// worker writes idempotent content-fingerprinted checkpoints.
fn run_supervised(
    cli: &Cli,
    args: &[String],
    shards: u32,
    store: &CheckpointStore,
    token: &CancelToken,
) -> Result<(), StudyError> {
    let sup = phaselab_bench::supervise::SuperviseConfig::from_env(
        shards,
        store.dir().to_path_buf(),
        worker_argv(args),
        cli.cfg.seed,
    );
    eprintln!(
        "[repro] supervising {shards} shard workers over {}",
        store.dir().display()
    );
    let report = phaselab_bench::supervise::supervise(&sup, token, |shard_index| {
        run_shard_worker(&cli.cfg, shard_index, &cli.only, store, token)
    })?;
    eprintln!(
        "[repro] supervision done: {} restart(s), {} shard(s) salvaged in-process",
        report.restarts,
        report.salvaged.len()
    );
    run_experiment(&cli.cfg, &cli.command, &cli.only, Some(store), token)
}

// ---------------------------------------------------------------------
// Characterization-as-a-service: `serve`, `submit`, `jobs`, `cache`
// (DESIGN.md §18). The server and queue mechanics live in
// `phaselab-serve`; this side owns the real job runner — each job is a
// child `repro` invocation against the shared store under the queue
// root, which is what makes a served report byte-identical to a direct
// run.
// ---------------------------------------------------------------------

/// Dispatches a service command; returns the process exit code.
fn run_service(cli: &Cli) -> i32 {
    match cli.command.as_str() {
        "serve" => cmd_serve(cli),
        "submit" => cmd_submit(cli),
        "jobs" => cmd_jobs(cli),
        "cache" => cmd_cache(cli),
        other => unreachable!("`{other}` is not a service command"),
    }
}

fn open_queue(cli: &Cli) -> Result<phaselab_serve::Queue, i32> {
    let dir = cli
        .queue_dir
        .as_ref()
        .expect("parse_args requires --queue-dir for queue commands");
    phaselab_serve::Queue::open(dir).map_err(|e| {
        eprintln!("repro: cannot open queue dir `{}`: {e}", dir.display());
        EXIT_RUNTIME
    })
}

/// `PHASELAB_SERVE_TIMEOUT_MS`: per-job wall-clock budget for the
/// serve loop's watchdog; unset means unbounded.
fn serve_timeout_from_env() -> Option<std::time::Duration> {
    std::env::var("PHASELAB_SERVE_TIMEOUT_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(std::time::Duration::from_millis)
}

/// `repro serve`: runs the job server over the spool directory until
/// interrupted (or until the queue drains, with `--drain`).
fn cmd_serve(cli: &Cli) -> i32 {
    let queue = match open_queue(cli) {
        Ok(q) => q,
        Err(code) => return code,
    };
    if cli.metrics_out.is_some() {
        phaselab_obs::install();
    }
    let token = CancelToken::new();
    install_interrupt_handler(&token);
    let scfg = phaselab_serve::ServeConfig {
        jobs: cli.jobs_budget,
        drain: cli.drain,
        job_timeout: serve_timeout_from_env(),
        ..phaselab_serve::ServeConfig::default()
    };
    eprintln!(
        "[repro] serving {} with a budget of {} job(s){}",
        queue.root().display(),
        scfg.jobs,
        if scfg.drain { " (drain mode)" } else { "" }
    );
    let report = match phaselab_serve::serve(&queue, &scfg, &token, &run_served_job) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: serve loop failed: {e}");
            return EXIT_RUNTIME;
        }
    };
    eprintln!(
        "[repro] serve done: {} admitted, {} deduped, {} completed, {} failed, {} requeued",
        report.admitted, report.deduped, report.completed, report.failed, report.requeued
    );
    if let Some(path) = &cli.metrics_out {
        write_metrics_manifest(&cli.cfg, "serve", path);
    }
    if token.is_cancelled() && !cli.drain {
        EXIT_INTERRUPTED
    } else {
        0
    }
}

/// The real job runner: executes one served study as a child `repro`
/// process with the spec's own argv plus the server-owned flags, and
/// publishes the child's stdout as the job's report. Running the exact
/// direct-invocation argv is the byte-identity argument: a served
/// study IS a direct run, just spawned by the server.
fn run_served_job(
    spec: &phaselab_serve::JobSpec,
    ctx: &phaselab_serve::JobContext,
) -> Result<String, String> {
    use std::process::{Command, Stdio};
    // Hold a pin on the study's checkpoints so a concurrent `cache gc`
    // cannot evict entries out from under the child.
    let _pin = pin_spec(spec, &ctx.store_dir);
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate repro binary: {e}"))?;
    std::fs::create_dir_all(&ctx.results_dir).map_err(|e| e.to_string())?;
    let report_tmp = ctx.results_dir.join("report.txt.tmp");
    let report_out =
        std::fs::File::create(&report_tmp).map_err(|e| format!("cannot stage report file: {e}"))?;
    let mut cmd = Command::new(exe);
    cmd.args(spec.argv())
        .arg("--checkpoint-dir")
        .arg(&ctx.store_dir)
        .arg("--metrics-out")
        .arg(ctx.results_dir.join("manifest.json"))
        .stdin(Stdio::null())
        .stdout(Stdio::from(report_out));
    // Faults aimed at the server (queue I/O) must not re-arm inside
    // every study child; `PHASELAB_FAULTS_WORKER` opts children in,
    // mirroring the supervisor's convention.
    cmd.env_remove("PHASELAB_FAULTS");
    if let Ok(plan) = std::env::var("PHASELAB_FAULTS_WORKER") {
        cmd.env("PHASELAB_FAULTS", plan);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn job child: {e}"))?;
    loop {
        match child.try_wait() {
            Ok(Some(status)) => {
                if status.success() {
                    std::fs::rename(&report_tmp, ctx.results_dir.join("report.txt"))
                        .map_err(|e| format!("cannot publish report: {e}"))?;
                    return Ok(ctx.results_dir.display().to_string());
                }
                let _ = std::fs::remove_file(&report_tmp);
                return Err(format!("job child exited with {status}"));
            }
            Ok(None) => {}
            Err(e) => return Err(format!("cannot wait for job child: {e}")),
        }
        let timed_out = ctx.deadline.is_some_and(|d| std::time::Instant::now() >= d);
        if ctx.cancel.is_cancelled() || timed_out {
            phaselab_bench::supervise::terminate(&mut child);
            let _ = child.wait();
            let _ = std::fs::remove_file(&report_tmp);
            return Err(if timed_out {
                "job exceeded its wall-clock budget".to_string()
            } else {
                "server shutting down".to_string()
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
}

/// Computes the study's characterization fingerprint exactly the way
/// the child will (same argv through the same `parse_args`, same
/// defaults) and pins it in the shared store for the job's duration.
fn pin_spec(spec: &phaselab_serve::JobSpec, store_dir: &Path) -> Option<phaselab_core::PinGuard> {
    let cli = parse_args(&spec.argv()).ok()?;
    let cache = phaselab_core::ResultCache::open(store_dir).ok()?;
    cache.pin(characterization_fingerprint(&cli.cfg)).ok()
}

/// Builds the job spec a `submit` invocation describes: the study
/// shape from the parsed flags plus the submitted experiment.
fn job_spec_from_cli(cli: &Cli) -> phaselab_serve::JobSpec {
    let scale = match cli.cfg.scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    phaselab_serve::JobSpec {
        experiment: cli.subarg.clone().unwrap_or_else(|| "all".to_string()),
        scale: scale.to_string(),
        interval_len: cli.cfg.interval_len,
        samples: cli.cfg.samples_per_benchmark as u64,
        k: cli.cfg.k as u64,
        seed: cli.cfg.seed,
        engine: cli.cfg.engine.name().to_string(),
        suites: cli
            .cfg
            .suites
            .as_ref()
            .map(|s| s.iter().map(|x| x.short_name().to_string()).collect()),
        only: cli.only.clone(),
        max_inst_per_bench: cli.cfg.max_inst_per_bench,
        static_analysis: cli.cfg.static_analysis,
        kmeans_batch: cli.cfg.kmeans_batch.map(|b| b as u64),
    }
}

/// `repro submit [EXPERIMENT]`: publishes one job to the spool and
/// prints its name on stdout; with `--wait`, polls until a server
/// completes it.
fn cmd_submit(cli: &Cli) -> i32 {
    let queue = match open_queue(cli) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let spec = job_spec_from_cli(cli);
    let name = match queue.submit(&spec) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("repro: submit failed: {e}");
            return EXIT_RUNTIME;
        }
    };
    println!("{name}");
    eprintln!(
        "[repro] submitted `{}` as {name} (fingerprint {:016x})",
        spec.experiment,
        spec.fingerprint()
    );
    if !cli.wait {
        return 0;
    }
    let token = CancelToken::new();
    install_interrupt_handler(&token);
    loop {
        if let Some(rec) = queue.read_done(&name) {
            eprintln!("[repro] job {name}: {} ({})", rec.status, rec.detail);
            return match rec.status {
                phaselab_serve::JobStatus::Failed => EXIT_RUNTIME,
                _ => 0,
            };
        }
        if token.is_cancelled() {
            eprintln!("[repro] wait interrupted; the job stays queued");
            return EXIT_INTERRUPTED;
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// `repro jobs`: one line per submission with its current state.
fn cmd_jobs(cli: &Cli) -> i32 {
    let queue = match open_queue(cli) {
        Ok(q) => q,
        Err(code) => return code,
    };
    let rows = match queue.list() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: cannot list queue: {e}");
            return EXIT_RUNTIME;
        }
    };
    for row in &rows {
        println!("{:<10} {}", row.state, row.name);
    }
    match queue.depth() {
        Ok(d) => eprintln!(
            "[repro] {} pending, {} running, {} done",
            d.pending, d.running, d.done
        ),
        Err(e) => eprintln!("repro: cannot read queue depth: {e}"),
    }
    0
}

/// `repro cache [stats|gc]`: result-cache accounting and eviction over
/// `--checkpoint-dir`, no server required.
fn cmd_cache(cli: &Cli) -> i32 {
    let dir = cli
        .checkpoint_dir
        .as_ref()
        .expect("parse_args requires --checkpoint-dir for cache");
    let cache = match phaselab_core::ResultCache::open(dir) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("repro: cannot open store `{}`: {e}", dir.display());
            return EXIT_RUNTIME;
        }
    };
    match cli.subarg.as_deref().unwrap_or("stats") {
        "stats" => match cache.stats() {
            Ok(s) => {
                println!("store              {}", dir.display());
                println!(
                    "benchmark entries  {:>8}  ({} bytes)",
                    s.bench_entries, s.bench_bytes
                );
                println!(
                    "clustering entries {:>8}  ({} bytes)",
                    s.clustering_entries, s.clustering_bytes
                );
                println!("fingerprints       {:>8}", s.fingerprints);
                println!("pinned             {:>8}", s.pinned);
                println!(
                    "total              {:>8}  ({} bytes)",
                    s.total_entries(),
                    s.total_bytes()
                );
                0
            }
            Err(e) => {
                eprintln!("repro: cache stats failed: {e}");
                EXIT_RUNTIME
            }
        },
        "gc" => {
            let budget = cli
                .max_bytes
                .expect("parse_args requires --max-bytes for cache gc");
            match cache.gc(budget) {
                Ok(rep) => {
                    println!(
                        "evicted {} entries ({} bytes); {} pinned kept; {} bytes remain",
                        rep.evicted_entries,
                        rep.evicted_bytes,
                        rep.pinned_skipped,
                        rep.remaining_bytes
                    );
                    0
                }
                Err(e) => {
                    eprintln!("repro: cache gc failed: {e}");
                    EXIT_RUNTIME
                }
            }
        }
        other => unreachable!("parse_args admits only stats|gc, got `{other}`"),
    }
}

/// Runs the study over the configured suites, further restricted to the
/// `--only` benchmark names when given. With an empty filter this is
/// exactly [`run_study_resumable`]; with a filter it applies the same
/// suite selection before the name match, so `--only` composes with
/// `--suites`.
fn run_filtered_study(
    cfg: &StudyConfig,
    only: &[String],
    store: Option<&CheckpointStore>,
    token: &CancelToken,
) -> Result<StudyResult, StudyError> {
    if only.is_empty() {
        return run_study_resumable(cfg, store, Some(token));
    }
    let benches: Vec<phaselab_workloads::Benchmark> = phaselab_workloads::catalog()
        .into_iter()
        .filter(|b| {
            cfg.suites
                .as_ref()
                .is_none_or(|suites| suites.contains(&b.suite()))
        })
        .filter(|b| only.iter().any(|name| name == b.name()))
        .collect();
    run_study_with_resumable(cfg, &benches, store, Some(token))
}

/// With the watchdog armed, reports the top-3 benchmarks closest to the
/// instruction budget, so near-runaway workloads are visible before
/// they quarantine. Ties break by name for a stable line.
fn warn_near_budget(r: &StudyResult, budget: u64) {
    let mut rows: Vec<(f64, String)> = r
        .benchmarks
        .iter()
        .map(|b| {
            (
                b.total_instructions as f64 / budget as f64,
                format!("{} [{}]", b.name, b.suite.short_name()),
            )
        })
        .collect();
    rows.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("finite budget fractions")
            .then_with(|| a.1.cmp(&b.1))
    });
    let top: Vec<String> = rows
        .iter()
        .take(3)
        .map(|(frac, name)| format!("{name} {:.1}%", frac * 100.0))
        .collect();
    if !top.is_empty() {
        eprintln!(
            "[repro] watchdog: closest to the {budget}-instruction budget: {}",
            top.join(", ")
        );
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut cfg = StudyConfig::paper_scaled();
    let mut command: Option<String> = None;
    let mut checkpoint_dir: Option<std::path::PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut progress = false;
    let mut json = false;
    let mut resume = false;
    let mut streaming = false;
    let mut shard: Option<(u32, u32)> = None;
    let mut reduce: Option<u32> = None;
    let mut supervise: Option<u32> = None;
    let mut queue_dir: Option<std::path::PathBuf> = None;
    let mut jobs_budget: usize = 2;
    let mut drain = false;
    let mut wait = false;
    let mut max_bytes: Option<u64> = None;
    let mut subarg: Option<String> = None;
    let mut i = 0;
    let value = |args: &[String], i: usize| -> Result<String, String> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("missing value for `{}`", args[i]))
    };
    fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
        v.parse()
            .map_err(|_| format!("bad value `{v}` for `{flag}`"))
    }
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let v = value(args, i)?;
                i += 1;
                cfg.scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    s => return Err(format!("bad scale `{s}` (expected tiny|small|full)")),
                };
            }
            "--interval" => {
                let v = value(args, i)?;
                i += 1;
                cfg.interval_len = parse_num("--interval", &v)?;
            }
            "--samples" => {
                let v = value(args, i)?;
                i += 1;
                cfg.samples_per_benchmark = parse_num("--samples", &v)?;
            }
            "--k" => {
                let v = value(args, i)?;
                i += 1;
                cfg.k = parse_num("--k", &v)?;
                cfg.n_prominent = cfg.n_prominent.min(cfg.k);
            }
            "--seed" => {
                let v = value(args, i)?;
                i += 1;
                cfg.seed = parse_num("--seed", &v)?;
            }
            "--threads" => {
                let v = value(args, i)?;
                i += 1;
                cfg.threads = parse_num("--threads", &v)?;
            }
            "--engine" => {
                let v = value(args, i)?;
                i += 1;
                cfg.engine = phaselab_core::Engine::parse(&v)
                    .ok_or_else(|| format!("bad engine `{v}` (expected block|inst)"))?;
            }
            "--checkpoint-dir" => {
                let v = value(args, i)?;
                i += 1;
                checkpoint_dir = Some(std::path::PathBuf::from(v));
            }
            "--suites" => {
                let v = value(args, i)?;
                i += 1;
                let mut suites = Vec::new();
                for name in v.split(',').filter(|s| !s.is_empty()) {
                    let suite = Suite::ALL
                        .into_iter()
                        .find(|s| s.short_name().eq_ignore_ascii_case(name))
                        .ok_or_else(|| {
                            format!(
                                "unknown suite `{name}` (expected int2000|fp2000|int2006|fp2006|BioPerf|BMW|MediaBenchII)"
                            )
                        })?;
                    if !suites.contains(&suite) {
                        suites.push(suite);
                    }
                }
                if suites.is_empty() {
                    return Err("empty suite list for `--suites`".to_string());
                }
                cfg.suites = Some(suites);
            }
            "--only" => {
                let v = value(args, i)?;
                i += 1;
                let catalog = phaselab_workloads::catalog();
                for name in v.split(',').filter(|s| !s.is_empty()) {
                    if !catalog.iter().any(|b| b.name() == name) {
                        return Err(format!("unknown benchmark `{name}` for `--only`"));
                    }
                    let owned = name.to_string();
                    if !only.contains(&owned) {
                        only.push(owned);
                    }
                }
                if only.is_empty() {
                    return Err("empty benchmark list for `--only`".to_string());
                }
            }
            "--metrics-out" => {
                let v = value(args, i)?;
                i += 1;
                metrics_out = Some(std::path::PathBuf::from(v));
            }
            "--progress" => progress = true,
            "--json" => json = true,
            "--no-static-analysis" => cfg.static_analysis = false,
            "--resume" => resume = true,
            "--streaming" => streaming = true,
            "--kmeans-batch" => {
                let v = value(args, i)?;
                i += 1;
                let batch: usize = parse_num("--kmeans-batch", &v)?;
                if batch == 0 {
                    return Err("bad value `0` for `--kmeans-batch` (must be positive)".to_string());
                }
                cfg.kmeans_batch = Some(batch);
            }
            "--shard" => {
                let v = value(args, i)?;
                i += 1;
                let (idx, total) = v
                    .split_once('/')
                    .ok_or_else(|| format!("bad value `{v}` for `--shard` (expected I/N)"))?;
                let idx: u32 = parse_num("--shard", idx)?;
                let total: u32 = parse_num("--shard", total)?;
                if total == 0 || idx >= total {
                    return Err(format!("bad shard `{v}` (need 0 <= I < N, N > 0)"));
                }
                shard = Some((idx, total));
            }
            "--reduce" => {
                let v = value(args, i)?;
                i += 1;
                let total: u32 = parse_num("--reduce", &v)?;
                if total == 0 {
                    return Err("bad value `0` for `--reduce` (must be positive)".to_string());
                }
                reduce = Some(total);
            }
            "--supervise" => {
                let v = value(args, i)?;
                i += 1;
                let n: u32 = parse_num("--supervise", &v)?;
                if n == 0 {
                    return Err("bad value `0` for `--supervise` (must be positive)".to_string());
                }
                supervise = Some(n);
            }
            // Occupies the experiment slot: the lint mode runs instead
            // of (never alongside) an experiment.
            "--verify-only" => {
                if let Some(first) = &command {
                    return Err(format!(
                        "`--verify-only` cannot be combined with experiment `{first}`"
                    ));
                }
                command = Some("--verify-only".to_string());
            }
            // Like `--verify-only`, `lint` occupies the experiment slot:
            // it runs the abstract interpreter instead of a study.
            "lint" => {
                if let Some(first) = &command {
                    return Err(format!(
                        "`lint` cannot be combined with experiment `{first}`"
                    ));
                }
                command = Some("lint".to_string());
            }
            "--queue-dir" => {
                let v = value(args, i)?;
                i += 1;
                queue_dir = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => {
                let v = value(args, i)?;
                i += 1;
                jobs_budget = parse_num("--jobs", &v)?;
                if jobs_budget == 0 {
                    return Err("bad value `0` for `--jobs` (must be positive)".to_string());
                }
            }
            "--drain" => drain = true,
            "--wait" => wait = true,
            "--max-bytes" => {
                let v = value(args, i)?;
                i += 1;
                max_bytes = Some(parse_num("--max-bytes", &v)?);
            }
            "--max-inst-per-bench" => {
                let v = value(args, i)?;
                i += 1;
                let budget: u64 = parse_num("--max-inst-per-bench", &v)?;
                if budget == 0 {
                    return Err(
                        "bad value `0` for `--max-inst-per-bench` (must be positive)".to_string(),
                    );
                }
                cfg.max_inst_per_bench = Some(budget);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            cmd => {
                if let Some(first) = &command {
                    // `submit` and `cache` take one positional of their
                    // own: the experiment to submit, the cache action.
                    let takes_subarg = (first == "submit" && EXPERIMENTS.contains(&cmd))
                        || (first == "cache" && (cmd == "stats" || cmd == "gc"));
                    if takes_subarg && subarg.is_none() {
                        subarg = Some(cmd.to_string());
                    } else if first == "--verify-only" || first == "lint" {
                        return Err(format!(
                            "`{first}` cannot be combined with experiment `{cmd}`"
                        ));
                    } else {
                        return Err(format!(
                            "unexpected argument `{cmd}` (experiment `{first}` already given)"
                        ));
                    }
                } else if SERVICE_COMMANDS.contains(&cmd) || EXPERIMENTS.contains(&cmd) {
                    command = Some(cmd.to_string());
                } else {
                    return Err(format!("unknown experiment `{cmd}`"));
                }
            }
        }
        i += 1;
    }
    if resume {
        let Some(dir) = &checkpoint_dir else {
            return Err("`--resume` requires `--checkpoint-dir`".to_string());
        };
        if !Path::new(dir).is_dir() {
            return Err(format!(
                "`--resume` given but checkpoint dir `{}` does not exist",
                dir.display()
            ));
        }
    }
    if let Some((idx, total)) = shard {
        if let Some(cmd) = &command {
            return Err(format!(
                "`--shard` is the worker pass; it cannot be combined with experiment `{cmd}`"
            ));
        }
        if reduce.is_some() {
            return Err(
                "`--shard` and `--reduce` are separate passes; run them as separate invocations"
                    .to_string(),
            );
        }
        if checkpoint_dir.is_none() {
            return Err(
                "`--shard` requires `--checkpoint-dir` (the shared store is the worker's output)"
                    .to_string(),
            );
        }
        cfg.shard_total = total;
        // Workers checkpoint under the streaming protocol fingerprint —
        // the reduce pass is the only consumer of a sharded store.
        cfg.analysis = AnalysisMode::Streaming;
        let _ = idx; // carried in Cli::shard
    }
    if let Some(total) = reduce {
        cfg.shard_total = total;
        streaming = true;
    }
    if let Some(n) = supervise {
        if shard.is_some() {
            return Err(
                "`--supervise` spawns the `--shard` workers itself; the flags cannot be combined"
                    .to_string(),
            );
        }
        if reduce.is_some() {
            return Err("`--supervise` already runs the reduce pass; drop `--reduce`".to_string());
        }
        if checkpoint_dir.is_none() {
            return Err(
                "`--supervise` requires `--checkpoint-dir` (the shared store coordinates workers)"
                    .to_string(),
            );
        }
        cfg.shard_total = n;
        // Workers fill the store under the streaming protocol; the
        // supervisor's reduce streams rows back out of it.
        cfg.analysis = AnalysisMode::Streaming;
    }
    if streaming {
        cfg.analysis = AnalysisMode::Streaming;
        if checkpoint_dir.is_none() {
            return Err(
                "`--streaming` requires `--checkpoint-dir` (the store is the streamed row source)"
                    .to_string(),
            );
        }
    }
    // The worker pass occupies the experiment slot, like --verify-only.
    let command = if shard.is_some() {
        "--shard".to_string()
    } else {
        command.unwrap_or_else(|| "all".to_string())
    };
    if shard.is_none()
        && cfg.analysis == AnalysisMode::Streaming
        && STREAMING_INCOMPATIBLE.contains(&command.as_str())
    {
        return Err(format!(
            "experiment `{command}` reads the raw feature matrix, which `--streaming` does not \
             retain (pick a streaming-capable experiment, e.g. table3 or fig4)"
        ));
    }
    if json && command != "lint" && command != "--verify-only" {
        return Err(
            "`--json` is only meaningful with `lint` or `--verify-only` (diagnostics modes)"
                .to_string(),
        );
    }
    if SERVICE_COMMANDS.contains(&command.as_str()) {
        if matches!(command.as_str(), "serve" | "submit" | "jobs") && queue_dir.is_none() {
            return Err(format!(
                "`{command}` requires `--queue-dir` (the spool directory)"
            ));
        }
        if command == "cache" && checkpoint_dir.is_none() {
            return Err("`cache` requires `--checkpoint-dir` (the store to account)".to_string());
        }
        if command == "cache" && subarg.as_deref() == Some("gc") && max_bytes.is_none() {
            return Err("`cache gc` requires `--max-bytes` (the eviction budget)".to_string());
        }
        if supervise.is_some() || reduce.is_some() || streaming || resume {
            return Err(format!(
                "`{command}` cannot be combined with study-execution flags \
                 (--supervise/--reduce/--streaming/--resume); pass study shape flags only"
            ));
        }
    }
    Ok(Cli {
        cfg,
        command,
        checkpoint_dir,
        only,
        metrics_out,
        progress,
        shard: shard.map(|(idx, _)| idx),
        supervise,
        json,
        queue_dir,
        jobs_budget,
        drain,
        wait,
        max_bytes,
        subarg,
    })
}

/// Table 1: the characteristic categories and counts.
fn table1() {
    println!("\n== Table 1: microarchitecture-independent characteristics ==\n");
    let names = feature_names();
    let rows: Vec<Vec<String>> = FeatureCategory::ALL
        .into_iter()
        .map(|cat| {
            let members: Vec<&str> = cat.range().map(|i| names[i]).collect();
            vec![
                cat.name().to_string(),
                cat.range().len().to_string(),
                members.join(", "),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["category", "#", "characteristics"], &rows)
    );
    println!("total: {NUM_FEATURES} characteristics (paper: 69)");
}

/// Table 2: the GA-selected key characteristics.
fn table2(r: &StudyResult) {
    println!("\n== Table 2: key characteristics retained by the GA ==\n");
    let names = feature_names();
    let rows: Vec<Vec<String>> = r
        .key_characteristics
        .iter()
        .enumerate()
        .map(|(i, &f)| {
            vec![
                (i + 1).to_string(),
                names[f].to_string(),
                FeatureCategory::of(f).name().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["#", "characteristic", "category"], &rows)
    );
    println!(
        "distance correlation of the reduced space: {:.3} (paper: ~0.83 with 12)",
        r.ga_fitness
    );
    let csv_rows: Vec<Vec<String>> = rows;
    let mut buf = Vec::new();
    phaselab_core::write_csv(&mut buf, &["rank", "characteristic", "category"], &csv_rows)
        .expect("csv");
    let path = write_artifact("table2.csv", &String::from_utf8(buf).expect("utf8"));
    println!("wrote {}", path.display());
}

/// Table 3: benchmarks and interval counts.
fn table3(r: &StudyResult) {
    println!("\n== Table 3: benchmarks and characterized interval counts ==\n");
    let rows: Vec<Vec<String>> = r
        .benchmarks
        .iter()
        .map(|b| {
            vec![
                b.suite.name().to_string(),
                b.name.clone(),
                b.input_names.len().to_string(),
                b.total_intervals().to_string(),
                b.total_instructions.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["suite", "benchmark", "inputs", "intervals", "instructions"],
            &rows
        )
    );
    let totals: (usize, u64) = r.benchmarks.iter().fold((0, 0), |(iv, ins), b| {
        (iv + b.total_intervals(), ins + b.total_instructions)
    });
    println!(
        "total: {} benchmarks, {} intervals, {} instructions",
        r.benchmarks.len(),
        totals.0,
        totals.1
    );
    let mut buf = Vec::new();
    phaselab_core::write_csv(
        &mut buf,
        &["suite", "benchmark", "inputs", "intervals", "instructions"],
        &rows,
    )
    .expect("csv");
    let path = write_artifact("table3.csv", &String::from_utf8(buf).expect("utf8"));
    println!("wrote {}", path.display());
}

/// Figure 1: GA distance correlation vs number of retained
/// characteristics, with a greedy forward-selection baseline.
fn fig1(r: &StudyResult) {
    println!("\n== Figure 1: distance correlation vs #key characteristics ==\n");
    let rep_rows: Vec<usize> = r.prominent.iter().map(|p| p.representative_row).collect();
    if rep_rows.len() < 3 {
        println!("(study too small for figure 1)");
        return;
    }
    let rep_matrix = r.features.select_rows(&rep_rows);
    let fitness = DistanceCorrelationFitness::new(&rep_matrix, r.config.pca_sd_threshold)
        .with_threads(r.config.threads);
    let score = |mask: &[bool]| fitness.score(mask);

    let max_k = 20.min(NUM_FEATURES);
    let mut ga_pts = Vec::new();
    let mut greedy_pts = Vec::new();
    let mut rows = Vec::new();
    for k in 1..=max_k {
        let ga_cfg = GaConfig::study(r.config.seed + k as u64).with_threads(r.config.threads);
        let ga = select_features(NUM_FEATURES, k, &score, &ga_cfg);
        let (_, greedy_fit) = greedy_select(NUM_FEATURES, k, &score);
        ga_pts.push((k as f64, ga.fitness));
        greedy_pts.push((k as f64, greedy_fit));
        rows.push(vec![
            k.to_string(),
            format!("{:.3}", ga.fitness),
            format!("{:.3}", greedy_fit),
        ]);
    }
    println!(
        "{}",
        format_table(
            &["#characteristics", "GA correlation", "greedy correlation"],
            &rows
        )
    );
    println!(
        "{}",
        ascii_curve(
            &[
                ("GA".into(), ga_pts.clone()),
                ("greedy".into(), greedy_pts.clone())
            ],
            48,
            12,
        )
    );
    let chart = LineChart::new(
        "Figure 1: distance correlation vs retained characteristics",
        "number of retained characteristics",
        "Pearson correlation",
        vec![("GA".into(), ga_pts), ("greedy".into(), greedy_pts)],
    );
    let path = write_artifact("fig1.svg", &chart.to_svg(560.0, 320.0));
    println!("\nwrote {}", path.display());
}

/// Figures 2–3: kiviat plots and pie charts of the prominent phases.
fn fig23(r: &StudyResult) {
    println!("\n== Figures 2-3: prominent phase kiviat plots ==\n");
    let mut by_kind: BTreeMap<&'static str, Vec<usize>> = BTreeMap::new();
    for (i, p) in r.prominent.iter().enumerate() {
        by_kind.entry(p.kind.name()).or_default().push(i);
    }
    for (kind, phases) in &by_kind {
        println!("{kind} clusters: {}", phases.len());
    }

    let mut listing = String::new();
    for (idx, phase) in r.prominent.iter().enumerate() {
        let axes: Vec<KiviatAxisSpec> = r
            .kiviat_axes(phase)
            .into_iter()
            .map(|a| {
                KiviatAxisSpec::new(
                    a.name.to_string(),
                    a.normalized_value(),
                    a.normalized_rings(),
                )
            })
            .collect();
        let title = format!(
            "phase {idx:03} ({}, weight {:.2}%)",
            phase.kind,
            phase.weight * 100.0
        );
        let kiviat = KiviatPlot::new(&title).with_axes(axes);
        write_artifact(
            &format!("fig23_phase{idx:03}_kiviat.svg"),
            &kiviat.to_svg(320.0),
        );

        let slices: Vec<(String, f64)> = phase
            .composition
            .iter()
            .take(9)
            .map(|s| {
                let b = &r.benchmarks[s.bench];
                (
                    format!("{} [{}]", b.name, b.suite.short_name()),
                    s.cluster_share,
                )
            })
            .collect();
        let rest: f64 = phase
            .composition
            .iter()
            .skip(9)
            .map(|s| s.cluster_share)
            .sum();
        let mut slices = slices;
        if rest > 0.0 {
            slices.push(("other".into(), rest));
        }
        let pie = PieChart::new(&title, slices);
        write_artifact(&format!("fig23_phase{idx:03}_pie.svg"), &pie.to_svg(200.0));

        let _ = write!(
            listing,
            "phase {idx:03}  weight {:6.2}%  {:<19}  ",
            phase.weight * 100.0,
            phase.kind.name()
        );
        let comp: Vec<String> = phase
            .composition
            .iter()
            .take(4)
            .map(|s| {
                let b = &r.benchmarks[s.bench];
                format!(
                    "{}[{}] {:.0}% (covers {:.1}% of it)",
                    b.name,
                    b.suite.short_name(),
                    s.cluster_share * 100.0,
                    s.benchmark_fraction * 100.0
                )
            })
            .collect();
        listing.push_str(&comp.join(", "));
        if phase.composition.len() > 4 {
            let _ = write!(listing, ", … +{}", phase.composition.len() - 4);
        }
        listing.push('\n');
    }
    // An HTML gallery over the per-phase SVG pairs, grouped by kind.
    let mut html = String::from(
        "<!doctype html><meta charset=\"utf-8\"><title>phaselab: prominent phases</title>\n\
         <style>body{font-family:sans-serif} .phase{display:inline-block;margin:8px;\n\
         border:1px solid #ddd;padding:4px;vertical-align:top} h2{margin:18px 4px 6px}</style>\n\
         <h1>Figures 2\u{2013}3: the prominent phases</h1>\n",
    );
    for (kind, phases) in &by_kind {
        let _ = writeln!(html, "<h2>{kind} ({} clusters)</h2>", phases.len());
        for &idx in phases {
            let _ = writeln!(
                html,
                "<div class=\"phase\"><img src=\"fig23_phase{idx:03}_kiviat.svg\" width=\"240\">\
                 <br><img src=\"fig23_phase{idx:03}_pie.svg\" width=\"240\"></div>"
            );
        }
    }
    write_artifact("fig23_index.html", &html);
    let path = write_artifact("fig23_phases.txt", &listing);
    println!(
        "\nper-phase listing and {} kiviat/pie SVG pairs written under {}",
        r.prominent.len(),
        path.parent().unwrap().display()
    );

    // Print the five heaviest phases inline for a quick look.
    println!("\nfive heaviest phases:");
    for line in listing.lines().take(5) {
        println!("  {line}");
    }
}

/// Figure 4: workload-space coverage per suite.
fn fig4(r: &StudyResult) {
    println!("\n== Figure 4: workload-space coverage per suite ==\n");
    let cov = coverage(r);
    let bars: Vec<(String, f64)> = cov
        .iter()
        .map(|c| (c.suite.short_name().to_string(), c.clusters_touched as f64))
        .collect();
    println!("{}", ascii_bar_chart(&bars, 40));
    println!(
        "(of {} non-empty clusters)",
        cov.first().map_or(0, |c| c.total_clusters)
    );
    let chart = BarChart::new(
        "Figure 4: workload-space coverage per suite",
        "#clusters",
        bars,
    );
    let path = write_artifact("fig4.svg", &chart.to_svg(560.0, 320.0));
    println!("wrote {}", path.display());
}

/// Figure 5: cumulative coverage per suite.
fn fig5(r: &StudyResult) {
    println!("\n== Figure 5: cumulative coverage per suite ==\n");
    let curves = diversity(r);
    let series: Vec<(String, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|c| {
            (
                c.suite.short_name().to_string(),
                c.cumulative
                    .iter()
                    .enumerate()
                    .map(|(i, &y)| ((i + 1) as f64, y))
                    .collect(),
            )
        })
        .collect();
    println!("{}", ascii_curve(&series, 56, 14));
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.suite.short_name().to_string(),
                c.clusters_to_cover(0.8).to_string(),
                c.clusters_to_cover(0.9).to_string(),
                c.cumulative.len().to_string(),
            ]
        })
        .collect();
    println!(
        "\n{}",
        format_table(
            &[
                "suite",
                "clusters to 80%",
                "clusters to 90%",
                "clusters touched"
            ],
            &rows
        )
    );
    let chart = LineChart::new(
        "Figure 5: cumulative coverage per suite",
        "number of clusters",
        "cumulative coverage",
        series,
    );
    let path = write_artifact("fig5.svg", &chart.to_svg(620.0, 360.0));
    println!("wrote {}", path.display());
}

/// Figure 6: unique-behavior fraction per suite.
fn fig6(r: &StudyResult) {
    println!("\n== Figure 6: fraction of unique behavior per suite ==\n");
    let uniq = uniqueness(r);
    let bars: Vec<(String, f64)> = uniq
        .iter()
        .map(|u| (u.suite.short_name().to_string(), u.unique_fraction))
        .collect();
    println!("{}", ascii_bar_chart(&bars, 40));
    let chart = BarChart::new(
        "Figure 6: fraction of unique behavior per suite",
        "fraction",
        bars,
    );
    let path = write_artifact("fig6.svg", &chart.to_svg(560.0, 320.0));
    println!("wrote {}", path.display());
}

/// §2.1's motivating argument: an aggregate characterization can be
/// badly misleading when a program's phases differ. For each benchmark,
/// compare the whole-execution mean of the memory-read fraction with its
/// per-interval extremes; rank benchmarks by how wrong the mean is.
fn motivation(r: &StudyResult) {
    println!("\n== Motivation (§2.1): aggregate vs phase-level view ==\n");
    let mem_read = phaselab_mica::feature_index("mix_mem_read").expect("known feature");
    struct Row {
        name: String,
        suite: &'static str,
        mean: f64,
        min: f64,
        max: f64,
    }
    let mut rows: Vec<Row> = Vec::new();
    for (bench_idx, bench) in r.benchmarks.iter().enumerate() {
        let vals: Vec<f64> = r
            .sampled
            .iter()
            .enumerate()
            .filter(|(_, s)| s.bench == bench_idx)
            .map(|(row, _)| r.features.get(row, mem_read))
            .collect();
        if vals.is_empty() {
            continue;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        rows.push(Row {
            name: bench.name.clone(),
            suite: bench.suite.short_name(),
            mean,
            min,
            max,
        });
    }
    rows.sort_by(|a, b| {
        let spread_a = a.max - a.min;
        let spread_b = b.max - b.min;
        spread_b.partial_cmp(&spread_a).expect("finite spreads")
    });
    let table: Vec<Vec<String>> = rows
        .iter()
        .take(10)
        .map(|x| {
            vec![
                format!("{} [{}]", x.name, x.suite),
                format!("{:.1}%", x.mean * 100.0),
                format!("{:.1}%", x.min * 100.0),
                format!("{:.1}%", x.max * 100.0),
                format!("{:.1}pp", (x.max - x.min) * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "aggregate mean",
                "interval min",
                "interval max",
                "spread"
            ],
            &table
        )
    );
    println!(
        "(a designer sizing load/store resources from the aggregate column\n\
         would badly mis-provision the extreme phases — the paper's §2.1 example)"
    );
}

/// §5.3's implications: how many representative simulation points each
/// suite needs, and the simulation-time saving of phase-level sampling.
fn implications(r: &StudyResult) {
    println!("\n== Implications (§5.3): simulation points per suite ==\n");
    let curves = diversity(r);
    let total_intervals: usize = r
        .benchmarks
        .iter()
        .map(phaselab_core::BenchmarkRun::total_intervals)
        .sum();
    let rows: Vec<Vec<String>> = curves
        .iter()
        .map(|c| {
            vec![
                c.suite.short_name().to_string(),
                c.clusters_to_cover(0.8).to_string(),
                c.clusters_to_cover(0.9).to_string(),
                c.clusters_to_cover(0.95).to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "suite",
                "points for 80%",
                "points for 90%",
                "points for 95%"
            ],
            &rows
        )
    );
    println!(
        "simulating one representative interval per prominent phase: {} intervals\n\
         instead of {} characterized intervals ({:.0}x reduction at {:.1}% coverage)",
        r.prominent.len(),
        total_intervals,
        total_intervals as f64 / r.prominent.len().max(1) as f64,
        r.prominent_coverage * 100.0
    );
    println!(
        "(the paper's takeaway: CPU2006 needs only slightly more simulation\n\
         points than CPU2000; BMW and MediaBench II add few behaviors beyond\n\
         CPU2006 + BioPerf, so simulating them may not pay off)"
    );
}

/// Per-benchmark coverage and specificity: which benchmarks contribute
/// the benchmark-specific clusters of Figures 2-3, and which blend into
/// mixed behavior.
fn benchmarks_report(r: &StudyResult) {
    println!("\n== Per-benchmark coverage and specificity ==\n");
    let mut stats = phaselab_core::benchmark_stats(r);
    stats.sort_by(|a, b| {
        b.benchmark_specific
            .partial_cmp(&a.benchmark_specific)
            .expect("finite fractions")
    });
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            let b = &r.benchmarks[s.bench];
            vec![
                format!("{} [{}]", b.name, b.suite.short_name()),
                s.clusters_touched.to_string(),
                format!("{:.1}%", s.benchmark_specific * 100.0),
                format!("{:.1}%", s.suite_specific * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "clusters",
                "benchmark-specific",
                "suite-specific"
            ],
            &rows
        )
    );
    let mut buf = Vec::new();
    phaselab_core::write_csv(
        &mut buf,
        &[
            "benchmark",
            "clusters",
            "benchmark_specific",
            "suite_specific",
        ],
        &rows,
    )
    .expect("csv");
    let path = write_artifact("benchmarks.csv", &String::from_utf8(buf).expect("utf8"));
    println!("wrote {}", path.display());
}

/// SimPoint-style per-benchmark simulation points (the related-work
/// application of the phase taxonomy): classify each benchmark's
/// intervals against the study's clustering, pick one representative per
/// phase, and measure how well the weighted representatives reconstruct
/// the benchmark's aggregate instruction mix.
fn simpoints(r: &StudyResult) {
    println!("\n== SimPoints: weighted phase representatives per benchmark ==\n");
    let catalog = phaselab_workloads::catalog();
    let mix_range = phaselab_mica::FeatureCategory::Mix.range();
    // A representative cross-section of suites and behavior styles.
    let picks = [
        ("BioPerf", "blast"),
        ("int2000", "gcc"),
        ("int2006", "libquantum"),
        ("fp2006", "cactusADM"),
        ("MediaBenchII", "jpeg"),
        ("BMW", "speak"),
    ];
    let mut rows = Vec::new();
    for (suite, name) in picks {
        let Some(bench) = catalog
            .iter()
            .find(|b| b.suite().short_name() == suite && b.name() == name)
        else {
            continue;
        };
        let program = bench.build(r.config.scale, 0);
        let (features, _) = match phaselab_core::characterize_program(
            &program,
            r.config.interval_len,
            r.config.max_instructions_per_run,
        ) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("[repro] warning: skipping {name} [{suite}]: {e}");
                continue;
            }
        };
        if features.is_empty() {
            continue;
        }
        let timeline = phaselab_core::PhaseTimeline {
            clusters: features
                .iter()
                .map(|f| r.classify(f.as_slice()).0)
                .collect(),
        };
        let points = phaselab_core::simulation_points(&timeline, &features);
        let err = phaselab_core::reconstruction_error(&points, &features, mix_range.clone());
        rows.push(vec![
            format!("{name} [{suite}]"),
            features.len().to_string(),
            points.len().to_string(),
            format!("{:.1}x", features.len() as f64 / points.len().max(1) as f64),
            format!("{:.2e}", err),
            timeline.render().chars().take(44).collect::<String>(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "benchmark",
                "intervals",
                "sim points",
                "reduction",
                "mix MAE",
                "phase timeline"
            ],
            &rows
        )
    );
    println!(
        "(simulating only the weighted representatives reconstructs the\n\
         aggregate instruction mix to within the MAE column — SimPoint's\n\
         premise, built on this paper's cross-benchmark taxonomy)"
    );
}

/// Benchmark similarity: mean per-benchmark positions in the rescaled
/// PCA space, hierarchically clustered (the dendrogram view of the
/// authors' companion similarity papers) and rendered as a heatmap with
/// similar benchmarks adjacent.
fn similarity(r: &StudyResult) {
    println!("\n== Benchmark similarity (companion-methodology view) ==\n");
    let dims = r.space.cols();
    let nb = r.benchmarks.len();
    let mut sums = vec![vec![0.0; dims]; nb];
    let mut counts = vec![0usize; nb];
    for (row, s) in r.sampled.iter().enumerate() {
        counts[s.bench] += 1;
        for (a, &v) in sums[s.bench].iter_mut().zip(r.space.row(row)) {
            *a += v;
        }
    }
    let centers: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(&counts)
        .map(|(s, &n)| s.into_iter().map(|v| v / n.max(1) as f64).collect())
        .collect();
    let mut dist = phaselab_stats::Matrix::zeros(nb, nb);
    for i in 0..nb {
        for j in 0..nb {
            dist.set(i, j, phaselab_stats::distance(&centers[i], &centers[j]));
        }
    }
    let dendro = phaselab_stats::hierarchical_cluster(&dist);
    let order = dendro.leaf_order();

    // Heatmap in dendrogram order.
    let labels: Vec<String> = order
        .iter()
        .map(|&i| {
            format!(
                "{} [{}]",
                r.benchmarks[i].name,
                r.benchmarks[i].suite.short_name()
            )
        })
        .collect();
    let values: Vec<Vec<f64>> = order
        .iter()
        .map(|&i| order.iter().map(|&j| dist.get(i, j)).collect())
        .collect();
    let heatmap = phaselab_viz::Heatmap::new(
        "Benchmark distance (dendrogram-ordered; dark = similar)",
        labels,
        values,
    );
    let path = write_artifact("similarity_heatmap.svg", &heatmap.to_svg(9.0));
    println!("wrote {}", path.display());

    // Most similar cross-suite pairs: the paper's mixed clusters should
    // resurface here.
    let mut pairs: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..nb {
        for j in (i + 1)..nb {
            if r.benchmarks[i].suite != r.benchmarks[j].suite {
                pairs.push((i, j, dist.get(i, j)));
            }
        }
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite distances"));
    let rows: Vec<Vec<String>> = pairs
        .iter()
        .take(8)
        .map(|&(i, j, d)| {
            vec![
                format!(
                    "{} [{}]",
                    r.benchmarks[i].name,
                    r.benchmarks[i].suite.short_name()
                ),
                format!(
                    "{} [{}]",
                    r.benchmarks[j].name,
                    r.benchmarks[j].suite.short_name()
                ),
                format!("{d:.2}"),
            ]
        })
        .collect();
    println!("closest cross-suite benchmark pairs:");
    println!(
        "{}",
        format_table(&["benchmark", "benchmark", "distance"], &rows)
    );

    // Dendrogram cut: how many benchmark families exist at half the
    // median pair distance?
    let median = {
        let mut ds: Vec<f64> = pairs.iter().map(|p| p.2).collect();
        ds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        ds[ds.len() / 2]
    };
    let cut = dendro.cut(median / 2.0);
    let families = cut.iter().max().map_or(0, |m| m + 1);
    println!("dendrogram cut at half the median distance: {families} benchmark families");
}

/// Benchmark drift (Yi et al., cited in the paper's intro): how far did
/// the benchmarks carried over from CPU2000 to CPU2006 move in the
/// workload space, relative to the typical distance between unrelated
/// benchmarks?
fn drift(r: &StudyResult) {
    println!("\n== Benchmark drift: CPU2000 -> CPU2006 carried-over codes ==\n");
    // Mean position of each benchmark in the rescaled PCA space.
    let dims = r.space.cols();
    let mut sums = vec![vec![0.0; dims]; r.benchmarks.len()];
    let mut counts = vec![0usize; r.benchmarks.len()];
    for (row, s) in r.sampled.iter().enumerate() {
        counts[s.bench] += 1;
        for (a, &v) in sums[s.bench].iter_mut().zip(r.space.row(row)) {
            *a += v;
        }
    }
    let centers: Vec<Vec<f64>> = sums
        .into_iter()
        .zip(&counts)
        .map(|(s, &n)| s.into_iter().map(|v| v / n.max(1) as f64).collect())
        .collect();
    let find = |suite: &str, name: &str| -> Option<usize> {
        r.benchmarks
            .iter()
            .position(|b| b.suite.short_name() == suite && b.name == name)
    };
    let dist = |a: usize, b: usize| phaselab_stats::distance(&centers[a], &centers[b]);

    // Baseline: mean distance over all cross-suite benchmark pairs.
    let mut baseline = 0.0;
    let mut pairs = 0usize;
    for i in 0..centers.len() {
        for j in (i + 1)..centers.len() {
            if r.benchmarks[i].suite != r.benchmarks[j].suite {
                baseline += dist(i, j);
                pairs += 1;
            }
        }
    }
    baseline /= pairs.max(1) as f64;

    let twins = [
        ("bzip2", "bzip2"),
        ("gcc", "gcc"),
        ("mcf", "mcf"),
        ("perlbmk", "perlbench"),
    ];
    let mut rows = Vec::new();
    for (old, new) in twins {
        let (Some(a), Some(b)) = (find("int2000", old), find("int2006", new)) else {
            continue;
        };
        let d = dist(a, b);
        rows.push(vec![
            format!("{old} -> {new}"),
            format!("{d:.2}"),
            format!("{:.2}", d / baseline),
        ]);
    }
    // A non-twin control pair for contrast.
    if let (Some(a), Some(b)) = (find("int2000", "mcf"), find("int2006", "libquantum")) {
        rows.push(vec![
            "mcf -> libquantum (control)".to_string(),
            format!("{:.2}", dist(a, b)),
            format!("{:.2}", dist(a, b) / baseline),
        ]);
    }
    println!(
        "{}",
        format_table(&["pair", "distance", "vs mean cross-suite distance"], &rows)
    );
    println!(
        "(carried-over benchmarks drift far less than the typical distance\n\
         between unrelated codes — the same-program-new-input effect the\n\
         benchmark-drift literature measures)"
    );
}

/// Ablation A1 (§2.6): the coverage vs per-cluster-variability trade-off
/// as k grows past the number of prominent phases.
fn ablation_k(r: &StudyResult) {
    println!("\n== Ablation: coverage vs variability across k (§2.6) ==\n");
    let n_prominent = r.config.n_prominent;
    let mut rows = Vec::new();
    for mult in [1.0_f64, 2.0, 3.0, 4.0] {
        let k = ((n_prominent as f64 * mult) as usize).min(r.space.rows());
        let clustering = kmeans(
            &r.space,
            &KmeansConfig::new(k)
                .with_restarts(r.config.kmeans_restarts)
                .with_max_iters(r.config.kmeans_max_iters)
                .with_seed(r.config.seed ^ 0xAB1E)
                .with_threads(r.config.threads),
        );
        // Coverage of the n_prominent heaviest clusters, and their mean
        // within-cluster variance.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| clustering.sizes[b].cmp(&clustering.sizes[a]));
        let total = r.space.rows() as f64;
        let covered: usize = order
            .iter()
            .take(n_prominent)
            .map(|&c| clustering.sizes[c])
            .sum();
        // Mean squared distance to centroid inside the prominent set.
        let prominent: Vec<usize> = order.iter().take(n_prominent).copied().collect();
        let mut sq = 0.0;
        let mut n = 0usize;
        for (row, &c) in clustering.assignments.iter().enumerate() {
            if prominent.contains(&c) {
                sq += phaselab_stats::distance_sq(r.space.row(row), clustering.centroids.row(c));
                n += 1;
            }
        }
        rows.push(vec![
            k.to_string(),
            format!("{:.1}%", covered as f64 / total * 100.0),
            format!("{:.3}", sq / n.max(1) as f64),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "k",
                &format!("coverage of top {n_prominent}"),
                "mean within-cluster sq. distance",
            ],
            &rows
        )
    );
    println!("(expected: larger k trades coverage for lower per-cluster variability)");
}

/// Ablation A2 (§2.9): interval-granularity sensitivity.
fn ablation_interval(
    r: &StudyResult,
    cfg: &StudyConfig,
    only: &[String],
    store: Option<&CheckpointStore>,
    token: &CancelToken,
) -> Result<(), StudyError> {
    println!("\n== Ablation: interval granularity (§2.9) ==\n");
    let mut rows = Vec::new();
    let intervals = [
        (cfg.interval_len / 2).max(1),
        cfg.interval_len,
        cfg.interval_len * 2,
    ];
    for interval in intervals {
        let result;
        let res = if interval == cfg.interval_len {
            r
        } else {
            let mut c = cfg.clone();
            c.interval_len = interval;
            result = run_filtered_study(&c, only, store, token)?;
            &result
        };
        let uniq = uniqueness(res);
        let bio = uniq
            .iter()
            .find(|u| u.suite == phaselab_workloads::Suite::BioPerf)
            .map_or(f64::NAN, |u| u.unique_fraction);
        rows.push(vec![
            interval.to_string(),
            res.pcs_retained.to_string(),
            format!("{:.1}%", res.variance_explained * 100.0),
            format!("{:.1}%", res.prominent_coverage * 100.0),
            format!("{:.1}%", bio * 100.0),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "interval",
                "PCs",
                "variance explained",
                "prominent coverage",
                "BioPerf uniqueness",
            ],
            &rows
        )
    );
    println!("(expected: conclusions stable across granularities, finer intervals → more phases)");
    Ok(())
}

/// Ablation A3 (§2.4): sampling policy.
fn ablation_sampling(
    r: &StudyResult,
    cfg: &StudyConfig,
    only: &[String],
    store: Option<&CheckpointStore>,
    token: &CancelToken,
) -> Result<(), StudyError> {
    println!("\n== Ablation: equal-weight vs proportional sampling (§2.4) ==\n");
    let mut c = cfg.clone();
    c.sampling = SamplingPolicy::Proportional;
    let prop = run_filtered_study(&c, only, store, token)?;

    let mut rows = Vec::new();
    let equal_cov = coverage(r);
    let prop_cov = coverage(&prop);
    let equal_uniq = uniqueness(r);
    let prop_uniq = uniqueness(&prop);
    for (i, c) in equal_cov.iter().enumerate() {
        rows.push(vec![
            c.suite.short_name().to_string(),
            c.clusters_touched.to_string(),
            prop_cov
                .iter()
                .find(|p| p.suite == c.suite)
                .map(|p| p.clusters_touched.to_string())
                .unwrap_or_default(),
            format!("{:.1}%", equal_uniq[i].unique_fraction * 100.0),
            prop_uniq
                .iter()
                .find(|p| p.suite == c.suite)
                .map(|p| format!("{:.1}%", p.unique_fraction * 100.0))
                .unwrap_or_default(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "suite",
                "clusters (equal)",
                "clusters (proportional)",
                "unique (equal)",
                "unique (proportional)",
            ],
            &rows
        )
    );
    println!("(proportional sampling over-weights long-running benchmarks; the paper's equal-weight choice avoids this)");
    Ok(())
}
