//! Shared helpers for the `phaselab` benchmark harness and the
//! experiment binaries that regenerate every table and figure of the
//! paper (see `src/bin/repro.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod supervise;

use std::path::{Path, PathBuf};

/// Returns the output directory for experiment artifacts (SVG figures,
/// CSV tables), creating it if needed. Defaults to `target/experiments`
/// relative to the workspace; override with the `PHASELAB_OUT` variable.
pub fn output_dir() -> PathBuf {
    let dir = std::env::var_os("PHASELAB_OUT")
        .map_or_else(|| Path::new("target").join("experiments"), PathBuf::from);
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

/// Writes a text artifact into the output directory and returns its path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let path = output_dir().join(name);
    std::fs::write(&path, contents).expect("write experiment artifact");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip() {
        std::env::set_var(
            "PHASELAB_OUT",
            std::env::temp_dir().join("phaselab-test-out"),
        );
        let p = write_artifact("probe.txt", "hello");
        assert_eq!(std::fs::read_to_string(p).unwrap(), "hello");
        std::env::remove_var("PHASELAB_OUT");
    }
}
