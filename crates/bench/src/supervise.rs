//! The shard supervisor: turns the hand-launched worker protocol of
//! `scripts/shard_smoke.sh` into a self-healing orchestrator.
//!
//! `repro --supervise N --checkpoint-dir D` spawns the N shard workers
//! as child processes and babysits them: exit codes are monitored,
//! crashed or hung workers are restarted with capped exponential
//! backoff and deterministic jitter, and a shard that keeps dying past
//! its restart budget is **salvaged** — its slice is re-run in-process
//! by the supervisor itself (checkpoint writes are idempotent and
//! content-keyed, so re-running a half-finished slice only fills in
//! what is missing). Only when even salvage fails does the study
//! abort, with a typed [`StudyError::UnrecoverableShard`] naming the
//! shard — never a quietly-partial report.
//!
//! Hang detection is two-pronged: a per-attempt wall-clock timeout
//! (`PHASELAB_SUPERVISE_TIMEOUT_MS`) catches stalled workers, and the
//! shard's lease heartbeat (written by the worker every quarter-TTL)
//! catches frozen ones — a live process whose heartbeat has gone stale
//! past twice the TTL is killed and treated as a failed attempt.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use phaselab_core::{lease, CancelToken, StudyError};

/// Everything the supervision loop needs, resolved once up front.
#[derive(Debug, Clone)]
pub struct SuperviseConfig {
    /// Number of shard workers (`cfg.shard_total`).
    pub shards: u32,
    /// The shared checkpoint store's root directory.
    pub store_dir: PathBuf,
    /// Worker argv template: the original invocation minus the
    /// experiment and supervisor-only flags; `--shard i/N` is appended
    /// per worker.
    pub worker_args: Vec<String>,
    /// Restart budget per shard (initial attempt excluded).
    pub max_restarts: u32,
    /// Per-attempt wall-clock cap before a worker is declared hung.
    pub attempt_timeout: Duration,
    /// Lease TTL; a live worker whose heartbeat is staler than twice
    /// this is declared frozen.
    pub lease_ttl: Duration,
    /// Seed for the deterministic restart jitter.
    pub seed: u64,
}

impl SuperviseConfig {
    /// Builds a config from the environment knobs:
    /// `PHASELAB_SUPERVISE_MAX_RESTARTS` (default 5),
    /// `PHASELAB_SUPERVISE_TIMEOUT_MS` (default 600000), and the lease
    /// TTL from `PHASELAB_LEASE_TTL_MS`.
    pub fn from_env(shards: u32, store_dir: PathBuf, worker_args: Vec<String>, seed: u64) -> Self {
        let env_u64 = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        };
        SuperviseConfig {
            shards,
            store_dir,
            worker_args,
            max_restarts: env_u64("PHASELAB_SUPERVISE_MAX_RESTARTS", 5) as u32,
            attempt_timeout: Duration::from_millis(env_u64(
                "PHASELAB_SUPERVISE_TIMEOUT_MS",
                600_000,
            )),
            lease_ttl: lease::default_ttl(),
            seed,
        }
    }
}

/// What the supervision loop observed, for the caller's log line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SuperviseReport {
    /// Worker restarts across all shards.
    pub restarts: u32,
    /// Shards whose workers exhausted their restart budget and were
    /// re-run in-process by the supervisor.
    pub salvaged: Vec<u32>,
}

/// Per-shard supervision state.
enum ShardState {
    /// Waiting out a restart backoff (or the initial spawn).
    Pending { at: Instant, attempt: u32 },
    /// A worker process is running.
    Running {
        child: Child,
        started: Instant,
        attempt: u32,
    },
    /// The worker exited 0.
    Done,
    /// Restart budget exhausted; awaiting salvage.
    Dead { attempts: u32, last: String },
}

/// Capped exponential backoff with deterministic jitter: attempt `a`
/// (1-based) waits `min(base << (a-1), cap)` plus up to a quarter of
/// that, derived from (seed, shard, attempt) so reruns are identical.
fn backoff(seed: u64, shard: u32, attempt: u32) -> Duration {
    const BASE_MS: u64 = 100;
    const CAP_MS: u64 = 5_000;
    let exp = BASE_MS
        .checked_shl(attempt.saturating_sub(1))
        .unwrap_or(CAP_MS)
        .min(CAP_MS);
    let mut state = seed ^ (u64::from(shard) << 32) ^ u64::from(attempt);
    let jitter = phaselab_par::splitmix64(&mut state) % (exp / 4 + 1);
    Duration::from_millis(exp + jitter)
}

/// Sends the polite signal first (SIGTERM on unix, so the worker can
/// flush checkpoints and release its lease), escalating to a hard kill
/// if unavailable. Public because the serve loop's job runner retires
/// timed-out and cancelled study children the same way.
pub fn terminate(child: &mut Child) {
    #[cfg(unix)]
    {
        let delivered = Command::new("kill")
            .arg("-TERM")
            .arg(child.id().to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .is_ok_and(|s| s.success());
        if delivered {
            return;
        }
    }
    let _ = child.kill();
}

/// Spawns the worker for one shard. The child inherits stdio (its
/// diagnostics interleave on stderr; shard workers write nothing to
/// stdout) and — when `PHASELAB_FAULTS_WORKER` is set — gets it as its
/// `PHASELAB_FAULTS`, so chaos can be aimed at workers while the
/// supervisor's own reduce pass stays clean.
fn spawn_worker(sup: &SuperviseConfig, shard: u32) -> std::io::Result<Child> {
    let exe = std::env::current_exe()?;
    let mut cmd = Command::new(exe);
    cmd.args(&sup.worker_args)
        .arg("--shard")
        .arg(format!("{shard}/{}", sup.shards));
    if let Ok(spec) = std::env::var("PHASELAB_FAULTS_WORKER") {
        cmd.env("PHASELAB_FAULTS", spec);
    }
    cmd.spawn()
}

/// Runs the supervision loop: spawn every shard worker, restart
/// failures with backoff, declare budget-exhausted shards dead, then
/// salvage dead shards via `salvage` (in-process re-run).
///
/// # Errors
///
/// [`StudyError::Cancelled`] when `cancel` trips (workers are sent
/// SIGTERM and reaped first); [`StudyError::UnrecoverableShard`] when
/// a dead shard's salvage also fails.
pub fn supervise<F>(
    sup: &SuperviseConfig,
    cancel: &CancelToken,
    salvage: F,
) -> Result<SuperviseReport, StudyError>
where
    F: Fn(u32) -> Result<(), StudyError>,
{
    let mut report = SuperviseReport::default();
    let now = Instant::now();
    let mut states: Vec<ShardState> = (0..sup.shards)
        .map(|_| ShardState::Pending {
            at: now,
            attempt: 0,
        })
        .collect();

    loop {
        if cancel.is_cancelled() {
            shutdown_workers(&mut states);
            return Err(StudyError::Cancelled);
        }
        let mut active = false;
        for (shard, state) in states.iter_mut().enumerate() {
            let shard = shard as u32;
            match state {
                ShardState::Done | ShardState::Dead { .. } => {}
                ShardState::Pending { at, attempt } => {
                    active = true;
                    if Instant::now() >= *at {
                        let attempt = *attempt;
                        match spawn_worker(sup, shard) {
                            Ok(child) => {
                                eprintln!(
                                    "[repro] supervisor: shard {shard} worker pid {} (attempt {})",
                                    child.id(),
                                    attempt + 1
                                );
                                *state = ShardState::Running {
                                    child,
                                    started: Instant::now(),
                                    attempt,
                                };
                            }
                            Err(e) => {
                                *state = failed_attempt(
                                    sup,
                                    &mut report,
                                    shard,
                                    attempt,
                                    &format!("spawn failed: {e}"),
                                );
                            }
                        }
                    }
                }
                ShardState::Running {
                    child,
                    started,
                    attempt,
                } => {
                    active = true;
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => *state = ShardState::Done,
                        Ok(Some(status)) => {
                            let attempt = *attempt;
                            *state = failed_attempt(
                                sup,
                                &mut report,
                                shard,
                                attempt,
                                &status.to_string(),
                            );
                        }
                        Ok(None) => {
                            // Still running: hung?
                            let reason = if started.elapsed() > sup.attempt_timeout {
                                Some("timed out".to_string())
                            } else if started.elapsed() > sup.lease_ttl * 2
                                && lease::read_lease(&sup.store_dir, shard).is_some_and(|l| {
                                    l.pid == child.id() && l.is_stale(sup.lease_ttl * 2)
                                })
                            {
                                Some("heartbeat stale (worker frozen)".to_string())
                            } else {
                                None
                            };
                            if let Some(reason) = reason {
                                terminate(child);
                                let deadline = Instant::now() + Duration::from_secs(2);
                                while child.try_wait().ok().flatten().is_none()
                                    && Instant::now() < deadline
                                {
                                    std::thread::sleep(Duration::from_millis(20));
                                }
                                let _ = child.kill();
                                let _ = child.wait();
                                let attempt = *attempt;
                                *state = failed_attempt(sup, &mut report, shard, attempt, &reason);
                            }
                        }
                        Err(e) => {
                            let attempt = *attempt;
                            *state = failed_attempt(
                                sup,
                                &mut report,
                                shard,
                                attempt,
                                &format!("wait failed: {e}"),
                            );
                        }
                    }
                }
            }
        }
        if !active {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // Reassign permanently-dead shards to the survivor that cannot
    // die: the supervisor itself. Store work is idempotent, so the
    // salvage pass recomputes only what the dead workers never wrote.
    for (shard, state) in states.iter().enumerate() {
        let shard = shard as u32;
        if let ShardState::Dead { attempts, last } = state {
            if cancel.is_cancelled() {
                return Err(StudyError::Cancelled);
            }
            eprintln!(
                "[repro] supervisor: shard {shard} dead after {attempts} attempt(s) \
                 (last: {last}); salvaging in-process"
            );
            phaselab_obs::event("supervisor", &format!("salvaging shard {shard}"));
            salvage(shard).map_err(|e| StudyError::UnrecoverableShard {
                shard,
                attempts: *attempts,
                last: format!("{last}; salvage failed: {e}"),
            })?;
            report.salvaged.push(shard);
        }
    }
    Ok(report)
}

/// Records one failed attempt: restart with backoff while budget
/// remains, otherwise declare the shard dead.
fn failed_attempt(
    sup: &SuperviseConfig,
    report: &mut SuperviseReport,
    shard: u32,
    attempt: u32,
    reason: &str,
) -> ShardState {
    let attempts = attempt + 1;
    if attempt >= sup.max_restarts {
        eprintln!("[repro] supervisor: shard {shard} failed ({reason}); restart budget exhausted");
        return ShardState::Dead {
            attempts,
            last: reason.to_string(),
        };
    }
    let delay = backoff(sup.seed, shard, attempts);
    eprintln!(
        "[repro] supervisor: shard {shard} failed ({reason}); restart {attempts}/{} in {}ms",
        sup.max_restarts,
        delay.as_millis()
    );
    report.restarts += 1;
    phaselab_obs::counter_add("supervisor.restarts", phaselab_obs::Class::Timing, 1);
    phaselab_obs::event("supervisor", &format!("restarting shard {shard}: {reason}"));
    ShardState::Pending {
        at: Instant::now() + delay,
        attempt: attempts,
    }
}

/// Cancellation path: SIGTERM every running worker, give the cohort a
/// short grace window to flush, then hard-kill the stragglers.
fn shutdown_workers(states: &mut [ShardState]) {
    for state in states.iter_mut() {
        if let ShardState::Running { child, .. } = state {
            terminate(child);
        }
    }
    let deadline = Instant::now() + Duration::from_secs(3);
    for state in states.iter_mut() {
        if let ShardState::Running { child, .. } = state {
            while child.try_wait().ok().flatten().is_none() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(20));
            }
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_exponential_and_deterministic() {
        for shard in 0..4u32 {
            for attempt in 1..12u32 {
                let a = backoff(7, shard, attempt);
                let b = backoff(7, shard, attempt);
                assert_eq!(a, b, "jitter must be deterministic");
                let exp = 100u64.checked_shl(attempt - 1).unwrap_or(5_000).min(5_000);
                assert!(a.as_millis() as u64 >= exp);
                assert!(a.as_millis() as u64 <= exp + exp / 4);
            }
        }
        // Different shards jitter differently (not in lockstep).
        assert_ne!(backoff(7, 0, 3), backoff(7, 1, 3));
    }

    #[test]
    fn from_env_defaults_are_sane() {
        let sup = SuperviseConfig::from_env(4, PathBuf::from("/tmp/x"), vec![], 0);
        assert_eq!(sup.shards, 4);
        assert!(sup.max_restarts >= 1);
        assert!(sup.attempt_timeout >= Duration::from_secs(1));
    }
}
