//! Exit-code and diagnostic contract of the `repro` binary.
//!
//! Usage errors (bad flags, bad values, unknown experiments) must exit
//! with code 2 and a one-line stderr diagnostic *without* running a
//! study; `--help` succeeds. Keeping these argument-parsing paths fast
//! is what makes them testable here — none of them characterizes a
//! single benchmark.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn stderr_line(out: &Output) -> String {
    let text = String::from_utf8_lossy(&out.stderr);
    let mut lines = text.lines();
    let first = lines.next().unwrap_or_default().to_string();
    assert_eq!(lines.next(), None, "expected a one-line diagnostic");
    first
}

#[test]
fn help_exits_zero_and_prints_usage() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("usage: repro"));
    assert!(text.contains("exit codes"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = repro(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("unknown flag `--frobnicate`"), "{line}");
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let out = repro(&["--interval", "ten", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("bad value `ten` for `--interval`"), "{line}");
}

#[test]
fn missing_flag_value_is_a_usage_error() {
    let out = repro(&["--seed"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("missing value for `--seed`"), "{line}");
}

#[test]
fn bad_scale_is_a_usage_error() {
    let out = repro(&["--scale", "huge"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("bad scale `huge`"), "{line}");
}

#[test]
fn unknown_experiment_is_a_usage_error() {
    let out = repro(&["table9"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("unknown experiment `table9`"), "{line}");
}

#[test]
fn second_experiment_is_a_usage_error() {
    let out = repro(&["table1", "fig4"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("unexpected argument `fig4`"), "{line}");
}

#[test]
fn table1_runs_without_a_study_and_succeeds() {
    let out = repro(&["table1"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Table 1"));
}

#[test]
fn help_lists_the_checkpoint_flags() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "--checkpoint-dir",
        "--resume",
        "--max-inst-per-bench",
        "130 interrupted",
    ] {
        assert!(text.contains(needle), "help missing `{needle}`");
    }
}

#[test]
fn resume_without_checkpoint_dir_is_a_usage_error() {
    let out = repro(&["--resume", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--resume` requires `--checkpoint-dir`"),
        "{line}"
    );
}

#[test]
fn resume_with_missing_dir_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!(
        "phaselab-no-such-checkpoint-dir-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
        "table1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("does not exist"), "{line}");
}

#[test]
fn verify_only_sweeps_the_registry_clean() {
    let out = repro(&["--verify-only", "--scale", "tiny"]);
    assert_eq!(out.status.code(), Some(0), "registry must verify clean");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("all clean"), "{text}");
    assert!(text.contains("programs verified"), "{text}");
}

#[test]
fn verify_only_rejects_an_experiment_argument() {
    let out = repro(&["--verify-only", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--verify-only` cannot be combined with experiment `table1`"),
        "{line}"
    );
}

#[test]
fn verify_only_after_an_experiment_is_also_rejected() {
    let out = repro(&["table1", "--verify-only"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--verify-only` cannot be combined with experiment `table1`"),
        "{line}"
    );
}

#[test]
fn help_lists_verify_only() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--verify-only"), "help missing --verify-only");
}

#[test]
fn lint_sweeps_the_registry_without_deny_findings() {
    let out = repro(&["lint", "--scale", "tiny"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "registry must carry no deny-severity lints: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("programs linted"), "{text}");
    // Findings are severity-ranked: no warn line may follow an info line.
    let mut seen_info = false;
    for line in text.lines() {
        if line.starts_with("info:") {
            seen_info = true;
        }
        if line.starts_with("warn:") {
            assert!(!seen_info, "warn after info: findings not severity-ranked");
        }
    }
}

#[test]
fn lint_json_emits_the_shared_diagnostics_schema() {
    let out = repro(&["lint", "--scale", "tiny", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\n  \"schema\": 1,"), "{text}");
    for needle in [
        "\"programs\":",
        "\"clean\":",
        "\"findings\":",
        "\"path\":",
        "\"pc\":",
        "\"instruction\":",
        "\"severity\":",
        "\"source\": \"lint\"",
        "\"kind\":",
        "\"message\":",
    ] {
        assert!(text.contains(needle), "lint JSON missing `{needle}`");
    }
}

#[test]
fn verify_only_json_shares_the_lint_schema_and_is_clean() {
    let out = repro(&["--verify-only", "--scale", "tiny", "--json"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\n  \"schema\": 1,"), "{text}");
    assert!(text.contains("\"clean\": true"), "{text}");
    assert!(text.contains("\"findings\": []"), "{text}");
    // JSON replaces the human lines entirely.
    assert!(!text.contains("all clean:"), "{text}");
}

#[test]
fn lint_rejects_an_experiment_argument() {
    let out = repro(&["lint", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`lint` cannot be combined with experiment"),
        "{line}"
    );
}

#[test]
fn json_without_a_diagnostics_mode_is_a_usage_error() {
    let out = repro(&["--json", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--json` is only meaningful with `lint` or `--verify-only`"),
        "{line}"
    );
}

#[test]
fn help_lists_lint_and_the_static_analysis_flags() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["lint", "--json", "--no-static-analysis"] {
        assert!(text.contains(needle), "help missing `{needle}`");
    }
}

#[test]
fn zero_bench_budget_is_a_usage_error() {
    let out = repro(&["--max-inst-per-bench", "0", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("bad value `0` for `--max-inst-per-bench`"),
        "{line}"
    );
}

#[test]
fn non_numeric_bench_budget_is_a_usage_error() {
    let out = repro(&["--max-inst-per-bench", "lots", "table1"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("bad value `lots` for `--max-inst-per-bench`"),
        "{line}"
    );
}

#[test]
fn unknown_suite_is_a_usage_error() {
    let out = repro(&["--suites", "spec2017", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("unknown suite `spec2017`"), "{line}");
}

#[test]
fn unknown_only_benchmark_is_a_usage_error() {
    let out = repro(&["--only", "face,nosuchbench", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("unknown benchmark `nosuchbench` for `--only`"),
        "{line}"
    );
}

#[test]
fn missing_metrics_out_value_is_a_usage_error() {
    let out = repro(&["--metrics-out"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("missing value for `--metrics-out`"), "{line}");
}

#[test]
fn help_lists_the_observability_flags() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["--metrics-out", "--progress", "--suites", "--only"] {
        assert!(text.contains(needle), "help missing `{needle}`");
    }
}

#[test]
fn metrics_out_writes_a_manifest_for_a_tiny_run() {
    let dir = std::env::temp_dir().join(format!("phaselab-metrics-out-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let manifest = dir.join("manifest.json");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "tiny",
            "--interval",
            "20000",
            "--samples",
            "8",
            "--k",
            "12",
            "--only",
            "face,finger,jpeg",
            "--metrics-out",
            manifest.to_str().unwrap(),
            "table3",
        ])
        .env("PHASELAB_OUT", &dir)
        .output()
        .expect("spawn repro");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&manifest).expect("manifest written");
    assert!(text.starts_with("{\n  \"schema\": 1,"), "{text}");
    for needle in [
        "\"config\":",
        "\"experiment\": \"table3\"",
        "\"counters\":",
        "\"study.benchmarks.total\": 3",
        "\"timings\":",
    ] {
        assert!(text.contains(needle), "manifest missing `{needle}`");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_without_checkpoint_dir_is_a_usage_error() {
    let out = repro(&["--streaming", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--streaming` requires `--checkpoint-dir`"),
        "{line}"
    );
}

#[test]
fn streaming_refuses_experiments_that_need_the_feature_matrix() {
    for exp in ["fig1", "fig23", "motivation", "all"] {
        let out = repro(&["--streaming", "--checkpoint-dir", "/tmp/unused", exp]);
        assert_eq!(out.status.code(), Some(2), "experiment {exp}");
        let line = stderr_line(&out);
        assert!(line.contains("raw feature matrix"), "{exp}: {line}");
    }
}

#[test]
fn malformed_shard_spec_is_a_usage_error() {
    for spec in ["3", "a/b", "2/2", "0/0"] {
        let out = repro(&["--shard", spec, "--checkpoint-dir", "/tmp/unused"]);
        assert_eq!(out.status.code(), Some(2), "spec {spec}");
    }
}

#[test]
fn shard_cannot_be_combined_with_an_experiment() {
    let out = repro(&[
        "--shard",
        "0/2",
        "--checkpoint-dir",
        "/tmp/unused",
        "table3",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("worker pass"), "{line}");
}

#[test]
fn shard_requires_a_checkpoint_dir() {
    let out = repro(&["--shard", "0/2"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--shard` requires `--checkpoint-dir`"),
        "{line}"
    );
}

#[test]
fn zero_kmeans_batch_is_a_usage_error() {
    let out = repro(&["--kmeans-batch", "0", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("bad value `0` for `--kmeans-batch`"),
        "{line}"
    );
}

#[test]
fn help_lists_the_sharding_flags() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in ["--streaming", "--shard I/N", "--reduce N", "--kmeans-batch"] {
        assert!(text.contains(needle), "help missing `{needle}`");
    }
}

#[test]
fn supervise_requires_a_checkpoint_dir() {
    let out = repro(&["--supervise", "2", "table3"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(
        line.contains("`--supervise` requires `--checkpoint-dir`"),
        "{line}"
    );
}

#[test]
fn supervise_cannot_be_combined_with_shard_or_reduce() {
    let out = repro(&[
        "--supervise",
        "2",
        "--shard",
        "0/2",
        "--checkpoint-dir",
        "/tmp/unused",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("cannot be combined"), "{line}");

    let out = repro(&[
        "--supervise",
        "2",
        "--reduce",
        "2",
        "--checkpoint-dir",
        "/tmp/unused",
        "table3",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("already runs the reduce"), "{line}");
}

#[test]
fn zero_supervise_is_a_usage_error() {
    let out = repro(&["--supervise", "0", "--checkpoint-dir", "/tmp/unused"]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("bad value `0` for `--supervise`"), "{line}");
}

#[test]
fn supervise_refuses_matrix_experiments_like_streaming_does() {
    let out = repro(&[
        "--supervise",
        "2",
        "--checkpoint-dir",
        "/tmp/unused",
        "fig1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let line = stderr_line(&out);
    assert!(line.contains("raw feature matrix"), "{line}");
}

#[test]
fn help_lists_supervise() {
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--supervise N"), "help missing --supervise");
}

/// SIGTERM gets the same cooperative-cancel treatment as Ctrl-C: the
/// run flushes and exits 130 instead of dying mid-write.
#[cfg(unix)]
#[test]
fn sigterm_cancels_cooperatively_with_exit_130() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "small", "table3"])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn repro");
    // Let it get into the study before signalling; a small-scale full
    // catalog run takes far longer than this.
    std::thread::sleep(std::time::Duration::from_millis(500));
    let delivered = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("spawn kill")
        .success();
    assert!(delivered, "kill -TERM must reach the child");
    let status = child.wait().expect("wait for repro");
    assert_eq!(status.code(), Some(130), "SIGTERM must exit 130");
}

/// The full sharded protocol end to end at smoke scale: two workers
/// fill one store, the reduce pass analyzes it, and the report is
/// byte-identical to the single-process run's.
#[test]
fn shard_workers_plus_reduce_reproduce_the_single_process_report() {
    let dir = std::env::temp_dir().join(format!("phaselab-shard-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("ckpt");
    let base = [
        "--scale",
        "tiny",
        "--interval",
        "20000",
        "--samples",
        "8",
        "--k",
        "12",
        "--seed",
        "0",
        "--only",
        "face,finger,jpeg",
    ];
    for shard in ["0/2", "1/2"] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend([
            "--shard",
            shard,
            "--checkpoint-dir",
            store.to_str().unwrap(),
        ]);
        let out = repro(&args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "worker {shard}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--reduce",
        "2",
        "--checkpoint-dir",
        store.to_str().unwrap(),
        "table3",
    ]);
    let reduced = repro(&args);
    assert_eq!(
        reduced.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&reduced.stderr)
    );
    let mut args: Vec<&str> = base.to_vec();
    args.push("table3");
    let single = repro(&args);
    assert_eq!(single.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&single.stdout),
        String::from_utf8_lossy(&reduced.stdout),
        "reduced report must be byte-identical to the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The supervised mode end to end, with crash/torn/EINTR fault
/// injection armed in the workers: the supervisor restarts the
/// casualties (salvaging any shard that exhausts its restart budget)
/// and the final report is still byte-identical to a fault-free
/// single-process run.
#[cfg(unix)]
#[test]
fn supervised_chaos_run_reproduces_the_single_process_report() {
    let dir = std::env::temp_dir().join(format!("phaselab-supervise-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("ckpt");
    let base = [
        "--scale",
        "tiny",
        "--interval",
        "20000",
        "--samples",
        "8",
        "--k",
        "12",
        "--seed",
        "0",
        "--only",
        "face,finger,jpeg",
    ];
    let mut args: Vec<&str> = base.to_vec();
    args.extend([
        "--supervise",
        "3",
        "--checkpoint-dir",
        store.to_str().unwrap(),
        "table3",
    ]);
    let supervised = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(&args)
        .env(
            "PHASELAB_FAULTS_WORKER",
            "seed=7,crash=0.4,torn=0.2,eintr=0.1",
        )
        .output()
        .expect("spawn repro");
    assert_eq!(
        supervised.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&supervised.stderr)
    );
    let mut args: Vec<&str> = base.to_vec();
    args.push("table3");
    let single = repro(&args);
    assert_eq!(single.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&single.stdout),
        String::from_utf8_lossy(&supervised.stdout),
        "supervised chaos report must be byte-identical to the single-process report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
