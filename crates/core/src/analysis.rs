//! Step 6: suite-level coverage, diversity and uniqueness analyses
//! (the paper's Figures 4, 5 and 6).
//!
//! All three analyses use the *full* clustering (all k clusters), not
//! just the prominent phases — exactly as §5 of the paper does.

use phaselab_workloads::Suite;

use crate::pipeline::StudyResult;

/// Workload-space coverage of one suite: how many of the k clusters
/// contain at least one of the suite's sampled intervals (Figure 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuiteCoverage {
    /// The suite.
    pub suite: Suite,
    /// Number of clusters containing at least one interval of the suite.
    pub clusters_touched: usize,
    /// Total number of (non-empty) clusters in the study.
    pub total_clusters: usize,
}

/// Cumulative-coverage curve of one suite (Figure 5): entry `i` is the
/// fraction of the suite's sampled execution covered by its `i + 1`
/// heaviest clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCurve {
    /// The suite.
    pub suite: Suite,
    /// Cumulative coverage fractions, non-decreasing, ending at 1.
    pub cumulative: Vec<f64>,
}

impl SuiteCurve {
    /// Number of clusters needed to reach `fraction` coverage.
    pub fn clusters_to_cover(&self, fraction: f64) -> usize {
        self.cumulative
            .iter()
            .position(|&c| c >= fraction)
            .map_or(self.cumulative.len(), |p| p + 1)
    }
}

/// Uniqueness of one suite (Figure 6): the fraction of the suite's
/// sampled execution that falls in clusters populated *only* by that
/// suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteUniqueness {
    /// The suite.
    pub suite: Suite,
    /// Fraction of the suite's sampled intervals in suite-exclusive
    /// clusters.
    pub unique_fraction: f64,
}

/// Suites present in a study, in the paper's reporting order.
fn suites_present(result: &StudyResult) -> Vec<Suite> {
    Suite::ALL
        .into_iter()
        .filter(|s| result.benchmarks.iter().any(|b| b.suite == *s))
        .collect()
}

/// Per-cluster suite membership: `out[c]` lists the suites with at least
/// one interval in cluster `c`.
fn cluster_suites(result: &StudyResult) -> Vec<Vec<Suite>> {
    let mut out = vec![Vec::new(); result.clustering.k()];
    for (row, &cluster) in result.clustering.assignments.iter().enumerate() {
        let suite = result.suite_of_row(row);
        if !out[cluster].contains(&suite) {
            out[cluster].push(suite);
        }
    }
    out
}

/// Computes Figure 4: workload-space coverage per suite.
pub fn coverage(result: &StudyResult) -> Vec<SuiteCoverage> {
    let per_cluster = cluster_suites(result);
    let total_clusters = per_cluster.iter().filter(|s| !s.is_empty()).count();
    suites_present(result)
        .into_iter()
        .map(|suite| SuiteCoverage {
            suite,
            clusters_touched: per_cluster.iter().filter(|s| s.contains(&suite)).count(),
            total_clusters,
        })
        .collect()
}

/// Computes Figure 5: the cumulative coverage curve per suite.
pub fn diversity(result: &StudyResult) -> Vec<SuiteCurve> {
    suites_present(result)
        .into_iter()
        .map(|suite| {
            // Count the suite's intervals per cluster.
            let mut counts = vec![0usize; result.clustering.k()];
            let mut total = 0usize;
            for (row, &cluster) in result.clustering.assignments.iter().enumerate() {
                if result.suite_of_row(row) == suite {
                    counts[cluster] += 1;
                    total += 1;
                }
            }
            let mut counts: Vec<usize> = counts.into_iter().filter(|&c| c > 0).collect();
            counts.sort_unstable_by(|a, b| b.cmp(a));
            let mut cumulative = Vec::with_capacity(counts.len());
            let mut acc = 0usize;
            for c in counts {
                acc += c;
                cumulative.push(acc as f64 / total.max(1) as f64);
            }
            SuiteCurve { suite, cumulative }
        })
        .collect()
}

/// Computes Figure 6: the unique-behavior fraction per suite.
pub fn uniqueness(result: &StudyResult) -> Vec<SuiteUniqueness> {
    let per_cluster = cluster_suites(result);
    suites_present(result)
        .into_iter()
        .map(|suite| {
            let mut total = 0usize;
            let mut unique = 0usize;
            for (row, &cluster) in result.clustering.assignments.iter().enumerate() {
                if result.suite_of_row(row) == suite {
                    total += 1;
                    if per_cluster[cluster] == [suite] {
                        unique += 1;
                    }
                }
            }
            SuiteUniqueness {
                suite,
                unique_fraction: unique as f64 / total.max(1) as f64,
            }
        })
        .collect()
}

/// Per-benchmark statistics: clusters touched and unique-behavior
/// fraction at benchmark granularity (the grouping behind the paper's
/// Figures 2-3).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkStats {
    /// Index into [`StudyResult::benchmarks`].
    pub bench: usize,
    /// Number of clusters containing at least one of the benchmark's
    /// intervals.
    pub clusters_touched: usize,
    /// Fraction of the benchmark's sampled intervals in clusters
    /// populated only by this benchmark (benchmark-specific behavior).
    pub benchmark_specific: f64,
    /// Fraction in clusters populated only by this benchmark's suite.
    pub suite_specific: f64,
}

/// Computes per-benchmark coverage and specificity statistics.
pub fn benchmark_stats(result: &StudyResult) -> Vec<BenchmarkStats> {
    let k = result.clustering.k();
    // Which benchmarks and suites populate each cluster.
    let mut benches_in: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (row, &cluster) in result.clustering.assignments.iter().enumerate() {
        let b = result.bench_of_row(row);
        if !benches_in[cluster].contains(&b) {
            benches_in[cluster].push(b);
        }
    }
    let suites_in = cluster_suites(result);

    (0..result.benchmarks.len())
        .map(|bench| {
            let suite = result.benchmarks[bench].suite;
            let mut total = 0usize;
            let mut own = 0usize;
            let mut own_suite = 0usize;
            let mut touched = vec![false; k];
            for (row, &cluster) in result.clustering.assignments.iter().enumerate() {
                if result.bench_of_row(row) != bench {
                    continue;
                }
                total += 1;
                touched[cluster] = true;
                if benches_in[cluster] == [bench] {
                    own += 1;
                }
                if suites_in[cluster] == [suite] {
                    own_suite += 1;
                }
            }
            BenchmarkStats {
                bench,
                clusters_touched: touched.iter().filter(|&&t| t).count(),
                benchmark_specific: own as f64 / total.max(1) as f64,
                suite_specific: own_suite as f64 / total.max(1) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::pipeline::run_study;

    fn result_two_suites() -> StudyResult {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![Suite::BioPerf, Suite::MediaBench2]);
        run_study(&cfg).expect("smoke study")
    }

    #[test]
    fn coverage_is_bounded_and_complete() {
        let r = result_two_suites();
        let cov = coverage(&r);
        assert_eq!(cov.len(), 2);
        for c in &cov {
            assert!(c.clusters_touched >= 1);
            assert!(c.clusters_touched <= c.total_clusters);
        }
        // Together the suites touch every non-empty cluster.
        let max_touched = cov.iter().map(|c| c.clusters_touched).max().unwrap();
        assert!(max_touched <= cov[0].total_clusters);
    }

    #[test]
    fn diversity_curves_are_monotone_and_end_at_one() {
        let r = result_two_suites();
        for curve in diversity(&r) {
            assert!(!curve.cumulative.is_empty());
            for w in curve.cumulative.windows(2) {
                assert!(w[1] >= w[0] - 1e-12);
            }
            let last = *curve.cumulative.last().unwrap();
            assert!((last - 1.0).abs() < 1e-9, "curve ends at {last}");
            assert!(curve.clusters_to_cover(0.5) >= 1);
            assert_eq!(
                curve.clusters_to_cover(1.0),
                curve.cumulative.len().min(curve.clusters_to_cover(1.0))
            );
        }
    }

    #[test]
    fn uniqueness_fractions_are_probabilities() {
        let r = result_two_suites();
        for u in uniqueness(&r) {
            assert!((0.0..=1.0).contains(&u.unique_fraction));
        }
    }

    #[test]
    fn single_suite_study_is_fully_unique() {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![Suite::Bmw]);
        let r = run_study(&cfg).expect("smoke study");
        let u = uniqueness(&r);
        assert_eq!(u.len(), 1);
        assert!((u[0].unique_fraction - 1.0).abs() < 1e-12);
        let cov = coverage(&r);
        assert_eq!(cov[0].clusters_touched, cov[0].total_clusters);
    }

    #[test]
    fn benchmark_stats_are_consistent_with_suite_uniqueness() {
        let r = result_two_suites();
        let stats = benchmark_stats(&r);
        assert_eq!(stats.len(), r.benchmarks.len());
        for s in &stats {
            assert!(s.clusters_touched >= 1);
            assert!((0.0..=1.0).contains(&s.benchmark_specific));
            // Benchmark-specific clusters are a subset of suite-specific
            // ones (a single-benchmark cluster is also single-suite).
            assert!(
                s.suite_specific >= s.benchmark_specific - 1e-12,
                "{}: bench {} > suite {}",
                r.benchmarks[s.bench].name,
                s.benchmark_specific,
                s.suite_specific
            );
        }
        // A suite's uniqueness is the benchmark-count-weighted mean of
        // its members' suite-specific fractions (equal samples per
        // benchmark).
        let uniq = uniqueness(&r);
        for u in uniq {
            let members: Vec<&BenchmarkStats> = stats
                .iter()
                .filter(|s| r.benchmarks[s.bench].suite == u.suite)
                .collect();
            let mean: f64 =
                members.iter().map(|s| s.suite_specific).sum::<f64>() / members.len() as f64;
            assert!(
                (mean - u.unique_fraction).abs() < 1e-9,
                "{:?}: {} vs {}",
                u.suite,
                mean,
                u.unique_fraction
            );
        }
    }

    #[test]
    fn bioperf_is_distinct_from_mediabench_even_at_smoke_scale() {
        // BioPerf's integer DP behaviors and MediaBench's media kernels
        // should rarely co-cluster, so both suites retain substantial
        // unique fractions.
        let r = result_two_suites();
        let u = uniqueness(&r);
        let bio = u.iter().find(|x| x.suite == Suite::BioPerf).unwrap();
        assert!(
            bio.unique_fraction > 0.5,
            "BioPerf uniqueness {}",
            bio.unique_fraction
        );
    }
}
