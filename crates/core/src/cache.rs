//! The checkpoint store, promoted to a managed result cache: size
//! accounting, LRU size-budget eviction, and pinning of in-flight
//! entries.
//!
//! A [`CheckpointStore`] is already content-addressed — entries are
//! keyed by configuration fingerprint plus an integrity-checked frame —
//! and idempotent, so any entry can be deleted at any time and the
//! pipeline recomputes it. That makes eviction *safe* but not *free*:
//! evicting an entry a running study is about to read costs a
//! recharacterization. [`ResultCache`] layers the missing policy on
//! top:
//!
//! * **Accounting** ([`ResultCache::stats`]): bytes and entry counts by
//!   kind (benchmark characterizations vs k-means restarts), walked
//!   from the directory layout, no index file to rot.
//! * **Eviction** ([`ResultCache::gc`]): delete least-recently-used
//!   entries until the store fits a byte budget. Recency is the entry
//!   file's mtime, which [`CheckpointStore::load_benchmark`] bumps on
//!   every hit, so a warm entry survives a cold one of the same age.
//! * **Pinning** ([`ResultCache::pin`]): a job server (or any caller)
//!   pins a characterization fingerprint while a study is in flight;
//!   `gc` never evicts pinned fingerprints. Pins record the owning pid
//!   and are broken automatically once that process is gone, so a
//!   crashed owner cannot pin the cache full forever.
//!
//! Concurrent `gc` passes from different processes are serialized with
//! the same `O_EXCL` mutation-lock protocol the lease module uses
//! ([`lease::with_mutation_lock`]); everything else stays lock-free.
//!
//! Cross-study sharing needs no extra machinery: the characterization
//! fingerprint deliberately excludes sampling, clustering, and GA
//! parameters (see
//! [`characterization_fingerprint`](crate::characterization_fingerprint)),
//! so two studies differing only in those share every benchmark entry.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::SystemTime;

use crate::checkpoint::CheckpointStore;
use crate::lease;

/// What kind of payload a cache entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// One benchmark's characterization (`c<fp>/bench-*.ckpt`).
    Benchmark,
    /// One completed k-means restart (`k<fp>/restart-*.ckpt`).
    Clustering,
}

/// One evictable entry, as enumerated from the store directory.
#[derive(Debug, Clone)]
struct Entry {
    path: PathBuf,
    fingerprint: u64,
    kind: EntryKind,
    bytes: u64,
    mtime: SystemTime,
}

/// Byte and entry tallies for a store directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Bytes held by benchmark-characterization entries.
    pub bench_bytes: u64,
    /// Number of benchmark-characterization entries.
    pub bench_entries: usize,
    /// Bytes held by k-means-restart entries.
    pub clustering_bytes: u64,
    /// Number of k-means-restart entries.
    pub clustering_entries: usize,
    /// Distinct fingerprints with at least one entry.
    pub fingerprints: usize,
    /// Fingerprints currently pinned by a live process.
    pub pinned: usize,
}

impl CacheStats {
    /// Total evictable bytes (benchmark + clustering entries).
    pub fn total_bytes(&self) -> u64 {
        self.bench_bytes + self.clustering_bytes
    }

    /// Total entry count.
    pub fn total_entries(&self) -> usize {
        self.bench_entries + self.clustering_entries
    }
}

/// What one [`ResultCache::gc`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Entries deleted.
    pub evicted_entries: usize,
    /// Bytes reclaimed.
    pub evicted_bytes: u64,
    /// Entries spared because their fingerprint was pinned.
    pub pinned_skipped: usize,
    /// Evictable bytes remaining after the pass.
    pub remaining_bytes: u64,
}

/// A held pin: the fingerprint stays eviction-proof until this guard
/// drops (or the owning process dies, whichever comes first).
#[derive(Debug)]
pub struct PinGuard {
    path: PathBuf,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// Policy layer over a [`CheckpointStore`]: accounting, LRU eviction to
/// a byte budget, and in-flight pinning (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct ResultCache {
    store: CheckpointStore,
}

impl ResultCache {
    /// Opens (creating if needed) the store directory and wraps it.
    ///
    /// # Errors
    ///
    /// Whatever [`CheckpointStore::open`] produces.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        Ok(ResultCache {
            store: CheckpointStore::open(dir)?,
        })
    }

    /// Wraps an already-open store.
    pub fn new(store: CheckpointStore) -> Self {
        ResultCache { store }
    }

    /// The underlying store (for the pipeline entry points).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    fn pins_dir(&self) -> PathBuf {
        self.store.dir().join("pins")
    }

    /// Pins `fingerprint` against eviction for the guard's lifetime.
    /// Multiple processes may pin the same fingerprint; each holds its
    /// own pin file.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the pin file cannot be created.
    pub fn pin(&self, fingerprint: u64) -> io::Result<PinGuard> {
        let dir = self.pins_dir();
        fs::create_dir_all(&dir)?;
        let pid = std::process::id();
        let path = dir.join(format!("p{fingerprint:016x}-{pid}.pin"));
        fs::write(&path, format!("{pid}\n"))?;
        Ok(PinGuard { path })
    }

    /// Fingerprints pinned by a live process. Pins whose owner is gone
    /// are broken (deleted) as they are encountered.
    pub fn pinned_fingerprints(&self) -> Vec<u64> {
        let mut pinned = Vec::new();
        let Ok(entries) = fs::read_dir(self.pins_dir()) else {
            return pinned;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((fp, pid)) = parse_pin_name(name) else {
                continue;
            };
            if pid_alive(pid) {
                if !pinned.contains(&fp) {
                    pinned.push(fp);
                }
            } else {
                // The owner died without dropping its guard; break the
                // pin so a crashed job cannot pin the cache forever.
                let _ = fs::remove_file(entry.path());
            }
        }
        pinned.sort_unstable();
        pinned
    }

    /// Walks the store directory and tallies entries by kind.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store root cannot be read;
    /// individually unreadable entries are skipped.
    pub fn stats(&self) -> io::Result<CacheStats> {
        let entries = self.entries()?;
        let mut stats = CacheStats::default();
        let mut fps: Vec<u64> = Vec::new();
        for e in &entries {
            match e.kind {
                EntryKind::Benchmark => {
                    stats.bench_entries += 1;
                    stats.bench_bytes += e.bytes;
                }
                EntryKind::Clustering => {
                    stats.clustering_entries += 1;
                    stats.clustering_bytes += e.bytes;
                }
            }
            if !fps.contains(&e.fingerprint) {
                fps.push(e.fingerprint);
            }
        }
        stats.fingerprints = fps.len();
        stats.pinned = self.pinned_fingerprints().len();
        Ok(stats)
    }

    /// Evicts least-recently-used entries until the evictable bytes fit
    /// `max_bytes`, never touching pinned fingerprints. Concurrent `gc`
    /// passes (any process) are serialized by the store's mutation
    /// lock; a pass that cannot get the lock within the lease TTL
    /// returns `WouldBlock` rather than racing.
    ///
    /// # Errors
    ///
    /// `WouldBlock` when another process holds the gc lock past the
    /// TTL; otherwise the I/O error that stopped the walk.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcReport> {
        let lock_name = self.store.dir().join("cache-gc");
        lease::with_mutation_lock(&lock_name, lease::default_ttl(), || {
            self.gc_locked(max_bytes)
        })?
    }

    fn gc_locked(&self, max_bytes: u64) -> io::Result<GcReport> {
        let mut entries = self.entries()?;
        // Oldest first; ties break by path so two walkers agree.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let pinned = self.pinned_fingerprints();
        let mut live: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport {
            remaining_bytes: live,
            ..GcReport::default()
        };
        for e in &entries {
            if live <= max_bytes {
                break;
            }
            if pinned.binary_search(&e.fingerprint).is_ok() {
                report.pinned_skipped += 1;
                continue;
            }
            match fs::remove_file(&e.path) {
                Ok(()) => {
                    live -= e.bytes;
                    report.evicted_entries += 1;
                    report.evicted_bytes += e.bytes;
                    // Drop a fingerprint directory once its last entry
                    // is gone (failure just means it was not empty).
                    if let Some(parent) = e.path.parent() {
                        let _ = fs::remove_dir(parent);
                    }
                }
                // Someone else (a concurrent recompute) replaced or
                // removed it; the next pass re-accounts.
                Err(err) if err.kind() == io::ErrorKind::NotFound => {}
                Err(err) => return Err(err),
            }
        }
        report.remaining_bytes = live;
        if phaselab_obs::enabled() {
            use phaselab_obs::Class::Timing;
            phaselab_obs::counter_add("cache.evicted", Timing, report.evicted_entries as u64);
            phaselab_obs::counter_add("cache.pinned", Timing, report.pinned_skipped as u64);
            phaselab_obs::gauge_set("cache.bytes", Timing, report.remaining_bytes as f64);
            phaselab_obs::event("cache", "gc");
        }
        Ok(report)
    }

    /// Enumerates every evictable entry under the store root: one
    /// directory level of `c<fp>`/`k<fp>` groups, `.ckpt` files within.
    /// Anything else (leases, pins, temporaries) is not a cache entry
    /// and never eviction fodder.
    fn entries(&self) -> io::Result<Vec<Entry>> {
        let mut out = Vec::new();
        for group in fs::read_dir(self.store.dir())? {
            let group = group?;
            let name = group.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some((kind, fingerprint)) = parse_group_name(name) else {
                continue;
            };
            let Ok(files) = fs::read_dir(group.path()) else {
                continue;
            };
            for file in files.flatten() {
                let path = file.path();
                if path.extension().and_then(|e| e.to_str()) != Some("ckpt") {
                    continue;
                }
                let Ok(meta) = file.metadata() else { continue };
                out.push(Entry {
                    path,
                    fingerprint,
                    kind,
                    bytes: meta.len(),
                    mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
                });
            }
        }
        Ok(out)
    }
}

/// Parses a fingerprint group directory name (`c<16 hex>` or
/// `k<16 hex>`).
fn parse_group_name(name: &str) -> Option<(EntryKind, u64)> {
    let (kind, hex) = match name.split_at_checked(1)? {
        ("c", rest) => (EntryKind::Benchmark, rest),
        ("k", rest) => (EntryKind::Clustering, rest),
        _ => return None,
    };
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok().map(|fp| (kind, fp))
}

/// Parses a pin file name (`p<16 hex>-<pid>.pin`).
fn parse_pin_name(name: &str) -> Option<(u64, u32)> {
    let rest = name.strip_prefix('p')?.strip_suffix(".pin")?;
    let (hex, pid) = rest.split_once('-')?;
    if hex.len() != 16 {
        return None;
    }
    Some((u64::from_str_radix(hex, 16).ok()?, pid.parse().ok()?))
}

/// Whether a process with this pid is alive. On Linux `/proc` answers
/// directly; elsewhere we assume alive (pins then only break when
/// dropped, which is merely conservative).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::BenchCharacterization;
    use crate::checkpoint::BenchOutcome;
    use phaselab_mica::{FeatureVector, NUM_FEATURES};
    use phaselab_workloads::Suite;

    fn temp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("phaselab-cache-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultCache::open(&dir).expect("temp cache")
    }

    fn outcome(salt: f64) -> BenchOutcome {
        let mut v = [0.0f64; NUM_FEATURES];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as f64 + salt) * 0.25;
        }
        BenchOutcome::Characterized(BenchCharacterization {
            per_input: vec![vec![FeatureVector::from_slice(&v); 2]],
            total_instructions: 1000,
        })
    }

    fn names() -> [&'static str; 4] {
        ["alpha", "beta", "gamma", "delta"]
    }

    fn fill(cache: &ResultCache, fp: u64) {
        for (i, name) in names().iter().enumerate() {
            cache
                .store()
                .store_benchmark(fp, Suite::Bmw, name, &outcome(i as f64));
        }
    }

    #[test]
    fn stats_count_entries_and_bytes_by_kind() {
        let cache = temp_cache("stats");
        let empty = cache.stats().expect("stats");
        assert_eq!(empty, CacheStats::default());
        fill(&cache, 0xAB);
        let stats = cache.stats().expect("stats");
        assert_eq!(stats.bench_entries, 4);
        assert_eq!(stats.clustering_entries, 0);
        assert!(stats.bench_bytes > 0);
        assert_eq!(stats.fingerprints, 1);
        assert_eq!(stats.total_entries(), 4);
        assert_eq!(stats.total_bytes(), stats.bench_bytes);
    }

    #[test]
    fn gc_evicts_oldest_first_down_to_the_budget() {
        let cache = temp_cache("gc");
        fill(&cache, 0xCD);
        let entries = cache.entries().expect("entries");
        assert_eq!(entries.len(), 4);
        // Age the entries deterministically: alpha oldest, delta newest.
        for (i, name) in names().iter().enumerate() {
            let path = cache.store().benchmark_path(0xCD, Suite::Bmw, name);
            let t = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1000 + i as u64);
            let f = fs::File::options().append(true).open(&path).expect("open");
            f.set_times(fs::FileTimes::new().set_modified(t))
                .expect("set mtime");
        }
        let per_entry = entries[0].bytes;
        let total = per_entry * 4;
        // Budget for two entries: the two oldest must go.
        let report = cache.gc(total - 2 * per_entry).expect("gc");
        assert_eq!(report.evicted_entries, 2);
        assert_eq!(report.evicted_bytes, 2 * per_entry);
        assert_eq!(report.remaining_bytes, 2 * per_entry);
        assert!(cache
            .store()
            .load_benchmark(0xCD, Suite::Bmw, "alpha")
            .is_none());
        assert!(cache
            .store()
            .load_benchmark(0xCD, Suite::Bmw, "beta")
            .is_none());
        assert!(cache
            .store()
            .load_benchmark(0xCD, Suite::Bmw, "gamma")
            .is_some());
        assert!(cache
            .store()
            .load_benchmark(0xCD, Suite::Bmw, "delta")
            .is_some());
    }

    #[test]
    fn gc_to_zero_clears_the_store_and_its_group_dirs() {
        let cache = temp_cache("gc-zero");
        fill(&cache, 0x11);
        fill(&cache, 0x22);
        let report = cache.gc(0).expect("gc");
        assert_eq!(report.evicted_entries, 8);
        assert_eq!(report.remaining_bytes, 0);
        assert!(!cache.store().dir().join(format!("c{:016x}", 0x11)).exists());
        let stats = cache.stats().expect("stats");
        assert_eq!(stats.total_entries(), 0);
    }

    #[test]
    fn pinned_fingerprints_survive_gc() {
        let cache = temp_cache("pin");
        fill(&cache, 0x33);
        fill(&cache, 0x44);
        let pin = cache.pin(0x33).expect("pin");
        let report = cache.gc(0).expect("gc");
        assert_eq!(report.evicted_entries, 4, "only the unpinned group goes");
        assert_eq!(report.pinned_skipped, 4);
        assert!(cache
            .store()
            .load_benchmark(0x33, Suite::Bmw, "alpha")
            .is_some());
        assert!(cache
            .store()
            .load_benchmark(0x44, Suite::Bmw, "alpha")
            .is_none());
        drop(pin);
        let report = cache.gc(0).expect("gc after unpin");
        assert_eq!(report.evicted_entries, 4);
        assert_eq!(cache.stats().expect("stats").total_entries(), 0);
    }

    #[test]
    fn dead_owner_pins_are_broken() {
        let cache = temp_cache("stale-pin");
        fill(&cache, 0x55);
        // Forge a pin owned by a pid that cannot be alive.
        let dir = cache.pins_dir();
        fs::create_dir_all(&dir).expect("pins dir");
        fs::write(
            dir.join(format!("p{:016x}-{}.pin", 0x55, u32::MAX - 1)),
            "x",
        )
        .expect("pin");
        if cfg!(target_os = "linux") {
            assert!(cache.pinned_fingerprints().is_empty());
            let report = cache.gc(0).expect("gc");
            assert_eq!(report.evicted_entries, 4, "stale pin must not protect");
        }
    }

    #[test]
    fn group_and_pin_names_parse_strictly() {
        assert_eq!(
            parse_group_name("c00000000000000ab"),
            Some((EntryKind::Benchmark, 0xAB))
        );
        assert_eq!(
            parse_group_name("k00000000000000cd"),
            Some((EntryKind::Clustering, 0xCD))
        );
        assert_eq!(parse_group_name("x0000000000000001"), None);
        assert_eq!(parse_group_name("c123"), None);
        assert_eq!(parse_group_name("leases"), None);
        assert_eq!(parse_pin_name("p00000000000000ab-42.pin"), Some((0xAB, 42)));
        assert_eq!(parse_pin_name("p123-42.pin"), None);
        assert_eq!(parse_pin_name("garbage"), None);
    }
}
