//! Step 1: interval characterization of benchmark executions.

use phaselab_mica::{FeatureVector, IntervalCharacterizer};
use phaselab_par::CancelToken;
use phaselab_vm::{CompiledProgram, Program, StaticReport, Vm, VmError};
use phaselab_workloads::{Benchmark, Scale};

use crate::config::{Engine, StudyConfig};
use crate::error::{QuarantineCause, QuarantinedBenchmark};

/// VM slice length, in instructions, between watchdog and cancellation
/// checks. Pause/resume is bit-transparent, so slicing never changes a
/// characterization; it only bounds how stale a cancel check can be.
const WATCHDOG_SLICE: u64 = 1 << 20;

/// Why [`characterize_benchmark_watched`] produced no characterization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BenchFailure {
    /// The benchmark faulted or ran away; the record says which and
    /// where.
    Quarantined(QuarantinedBenchmark),
    /// The cancel token tripped mid-characterization; partial work was
    /// discarded.
    Cancelled,
}

/// The characterization of one benchmark across all of its inputs.
#[derive(Debug, Clone)]
pub struct BenchCharacterization {
    /// Interval feature vectors, one `Vec` per input.
    pub per_input: Vec<Vec<FeatureVector>>,
    /// Total dynamic instructions executed across inputs.
    pub total_instructions: u64,
}

impl BenchCharacterization {
    /// Total number of characterized intervals across inputs.
    pub fn total_intervals(&self) -> usize {
        self.per_input.iter().map(Vec::len).sum()
    }
}

/// The static pre-flight of one benchmark: one [`StaticReport`] per
/// input, in input order. Produced by [`analyze_benchmark`], consumed
/// by the watchdog (derived budget), the block compiler (dead-code
/// pruning), the supervisor (longest-first shard ordering), and the
/// `static_analysis` manifest section.
#[derive(Debug, Clone)]
pub struct BenchStaticReport {
    /// One report per input.
    pub per_input: Vec<StaticReport>,
}

impl BenchStaticReport {
    /// Sum of the per-input static instruction maxima; `None` (⊤) when
    /// any input is unbounded or the sum overflows.
    pub fn total_inst_max(&self) -> Option<u64> {
        self.per_input
            .iter()
            .try_fold(0u64, |acc, r| r.inst_max.and_then(|m| acc.checked_add(m)))
    }

    /// Sum of the per-input static instruction minima (saturating).
    pub fn total_inst_min(&self) -> u64 {
        self.per_input
            .iter()
            .fold(0u64, |acc, r| acc.saturating_add(r.inst_min))
    }

    /// The watchdog budget derived from the static maxima: twice the
    /// proven upper bound, so a sound bound can never trip it while a
    /// genuinely runaway execution (one exceeding its own proof) still
    /// gets caught. `None` when any input's bound is ⊤ — an unbounded
    /// benchmark cannot arm a finite budget.
    pub fn derived_budget(&self) -> Option<u64> {
        self.total_inst_max().map(|m| m.saturating_mul(2).max(1))
    }
}

/// Builds and statically analyzes every input of `bench` at `scale`
/// without executing anything.
///
/// # Errors
///
/// Returns a [`QuarantinedBenchmark`] with
/// [`QuarantineCause::StaticallyInvalid`] naming the first input whose
/// program fails verification (analysis runs the verifier first).
pub fn analyze_benchmark(
    bench: &Benchmark,
    scale: Scale,
) -> Result<BenchStaticReport, QuarantinedBenchmark> {
    let mut per_input = Vec::with_capacity(bench.num_inputs());
    for input in 0..bench.num_inputs() {
        let program = bench.build(scale, input);
        match program.analyze() {
            Ok(report) => per_input.push(report),
            Err(e) => {
                return Err(QuarantinedBenchmark {
                    name: bench.name().to_string(),
                    suite: bench.suite(),
                    input,
                    input_name: bench.input_names()[input].to_string(),
                    cause: QuarantineCause::StaticallyInvalid(e),
                })
            }
        }
    }
    Ok(BenchStaticReport { per_input })
}

/// Characterizes one program execution: runs it to completion (or the
/// instruction budget) and returns one [`FeatureVector`] per interval.
///
/// Only full intervals are kept (as in the paper), unless the whole
/// execution is shorter than one interval — then the single partial
/// interval is kept so no benchmark characterizes to nothing.
///
/// # Errors
///
/// Returns the [`VmError`] if the program faults. The bundled workloads
/// are validated not to fault, but the study pipeline treats a fault as
/// an input condition: the owning benchmark is quarantined and the study
/// continues (see [`run_study`](crate::run_study)).
pub fn characterize_program(
    program: &Program,
    interval_len: u64,
    max_instructions: u64,
) -> Result<(Vec<FeatureVector>, u64), VmError> {
    characterize_program_with_engine(program, interval_len, max_instructions, Engine::default())
}

/// [`characterize_program`] with an explicit execution-engine choice.
///
/// Both engines produce bit-identical features and instruction counts
/// (the differential tests assert this on every registry workload);
/// [`Engine::Inst`] exists as the reference oracle and for `--engine
/// inst` debugging runs.
///
/// # Errors
///
/// Returns the [`VmError`] if the program faults; both engines fault at
/// the same instruction index with the same error.
pub fn characterize_program_with_engine(
    program: &Program,
    interval_len: u64,
    max_instructions: u64,
    engine: Engine,
) -> Result<(Vec<FeatureVector>, u64), VmError> {
    let mut chr = IntervalCharacterizer::new(interval_len).keep_tail(true);
    let mut vm = Vm::new(program);
    let outcome = match engine {
        Engine::Block => {
            let compiled = CompiledProgram::compile(program);
            vm.run_blocks(&compiled, &mut chr, max_instructions)?
        }
        Engine::Inst => vm.run(&mut chr, max_instructions)?,
    };
    chr.finish();
    let mut features = chr.into_features();
    let full = (outcome.instructions / interval_len) as usize;
    if full >= 1 && features.len() > full {
        features.truncate(full); // drop the partial tail
    }
    Ok((features, outcome.instructions))
}

/// Characterizes every input of a benchmark at the study's scale and
/// interval length.
///
/// # Errors
///
/// Returns a [`QuarantinedBenchmark`] record — naming the faulting input
/// and the VM fault — if any input faults. Quarantine is all-or-nothing:
/// inputs characterized before the fault are discarded so a benchmark
/// never enters the data set partially.
pub fn characterize_benchmark(
    bench: &Benchmark,
    cfg: &StudyConfig,
) -> Result<BenchCharacterization, QuarantinedBenchmark> {
    match characterize_benchmark_watched(bench, cfg, None) {
        Ok(c) => Ok(c),
        Err(BenchFailure::Quarantined(q)) => Err(q),
        Err(BenchFailure::Cancelled) => {
            unreachable!("characterization without a token cannot be cancelled")
        }
    }
}

/// [`characterize_benchmark`] under the runaway watchdog and cooperative
/// cancellation.
///
/// Execution runs in [`WATCHDOG_SLICE`]-instruction slices; between
/// slices the cancel token is polled and the per-benchmark budget
/// (`cfg.max_inst_per_bench`, spanning all inputs) is enforced. VM
/// pause/resume is exact, so a watched characterization is bit-identical
/// to an unwatched one whenever neither trips.
///
/// # Errors
///
/// [`BenchFailure::Quarantined`] if an input fails the static
/// pre-flight verification ([`QuarantineCause::StaticallyInvalid`] —
/// the program is never run), faults ([`QuarantineCause::Fault`]), or
/// exhausts its budget without halting ([`QuarantineCause::Runaway`]);
/// [`BenchFailure::Cancelled`] if `cancel` trips first. Partially
/// characterized inputs are discarded in every failure case.
pub fn characterize_benchmark_watched(
    bench: &Benchmark,
    cfg: &StudyConfig,
    cancel: Option<&CancelToken>,
) -> Result<BenchCharacterization, BenchFailure> {
    let quarantine = |input: usize, cause: QuarantineCause| {
        BenchFailure::Quarantined(QuarantinedBenchmark {
            name: bench.name().to_string(),
            suite: bench.suite(),
            input,
            input_name: bench.input_names()[input].to_string(),
            cause,
        })
    };
    // Static pre-flight: analyze every input before running anything.
    // Analysis subsumes verification, so a failure here is the same
    // `StaticallyInvalid` quarantine the verifier would produce.
    let statics = if cfg.static_analysis {
        match analyze_benchmark(bench, cfg.scale) {
            Ok(r) => Some(r),
            Err(q) => return Err(BenchFailure::Quarantined(q)),
        }
    } else {
        None
    };
    // The explicit CLI budget wins; otherwise, when every input has a
    // finite static maximum, arm twice the proven bound — a sound
    // bound can never trip it, so results are unchanged, while a
    // genuinely runaway execution (exceeding its own proof) is caught.
    let armed_budget = cfg
        .max_inst_per_bench
        .or_else(|| statics.as_ref().and_then(BenchStaticReport::derived_budget));
    let mut per_input = Vec::with_capacity(bench.num_inputs());
    let mut total_instructions = 0;
    let mut budget_left = armed_budget;
    // Counter handles fetched once per benchmark so the per-slice cost
    // is three atomic adds; `None` without a subscriber. Instructions and
    // blocks are counted separately: their ratio is the dispatch
    // amortization the block engine buys (under the per-instruction
    // engine every instruction is its own dispatch unit, so the two
    // counts coincide).
    let vm_counters = phaselab_obs::registry().map(|reg| {
        use phaselab_obs::Class::Structural;
        (
            reg.counter("vm.instructions", Structural),
            reg.counter("vm.blocks", Structural),
            reg.counter("vm.slices", Structural),
        )
    });
    for input in 0..bench.num_inputs() {
        if cancel.is_some_and(CancelToken::is_cancelled) {
            return Err(BenchFailure::Cancelled);
        }
        let program = bench.build(cfg.scale, input);
        // Static pre-flight: reject ill-formed programs before spending
        // a single cycle (or watchdog budget) running them. With the
        // analyzer on, `analyze_benchmark` already ran the verifier.
        if statics.is_none() {
            if let Err(e) = program.verify() {
                return Err(quarantine(input, QuarantineCause::StaticallyInvalid(e)));
            }
        }
        // Compile once per input; every resume slice reuses the decoded
        // blocks. Statically dead pcs skip decode entirely — sound
        // because execution can never enter them.
        let compiled = (cfg.engine == Engine::Block).then(|| {
            match statics.as_ref().map(|s| s.per_input[input].dead.as_slice()) {
                Some(dead) if !dead.is_empty() => CompiledProgram::compile_pruned(&program, dead),
                _ => CompiledProgram::compile(&program),
            }
        });
        let mut chr = IntervalCharacterizer::new(cfg.interval_len).keep_tail(true);
        let mut vm = Vm::new(&program);
        let mut executed = 0u64;
        loop {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return Err(BenchFailure::Cancelled);
            }
            if budget_left == Some(0) {
                // Budget spent and the program still hasn't halted.
                let budget = armed_budget.expect("budget was armed");
                return Err(quarantine(input, QuarantineCause::Runaway { budget }));
            }
            let run_left = cfg.max_instructions_per_run - executed;
            if run_left == 0 {
                break; // per-run cap: silent truncation, as unwatched
            }
            let slice = WATCHDOG_SLICE
                .min(run_left)
                .min(budget_left.unwrap_or(u64::MAX));
            let outcome = match &compiled {
                Some(cp) => vm.run_blocks(cp, &mut chr, slice),
                None => vm.run(&mut chr, slice),
            }
            .map_err(|e| quarantine(input, QuarantineCause::Fault(e)))?;
            executed += outcome.instructions;
            if let Some((inst, blocks, slices)) = &vm_counters {
                inst.add(outcome.instructions);
                blocks.add(outcome.blocks);
                slices.inc();
            }
            if let Some(b) = &mut budget_left {
                *b -= outcome.instructions;
            }
            if outcome.halted {
                break;
            }
        }
        chr.finish();
        let mut features = chr.into_features();
        let full = (executed / cfg.interval_len) as usize;
        if full >= 1 && features.len() > full {
            features.truncate(full); // drop the partial tail
        }
        total_instructions += executed;
        per_input.push(features);
    }
    Ok(BenchCharacterization {
        per_input,
        total_instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_workloads::{catalog, Scale};

    #[test]
    fn short_program_keeps_partial_interval() {
        let all = catalog();
        let program = all[0].build(Scale::Tiny, 0);
        // Interval far longer than the whole Tiny run.
        let (features, instrs) = characterize_program(&program, 1 << 40, 1 << 41).expect("runs");
        assert_eq!(features.len(), 1);
        assert!(instrs > 0);
    }

    #[test]
    fn interval_count_matches_execution_length() {
        let all = catalog();
        let program = all[0].build(Scale::Tiny, 0);
        let interval = 10_000;
        let (features, instrs) = characterize_program(&program, interval, 1 << 40).expect("runs");
        assert_eq!(features.len() as u64, instrs / interval);
    }

    #[test]
    fn characterize_benchmark_covers_all_inputs() {
        let all = catalog();
        // bzip2 (SPECint2000) has two inputs.
        let bzip2 = all
            .iter()
            .find(|b| b.name() == "bzip2" && b.num_inputs() == 2)
            .expect("bzip2 with two inputs");
        let mut cfg = StudyConfig::smoke();
        cfg.interval_len = 10_000;
        let c = characterize_benchmark(bzip2, &cfg).expect("no faults");
        assert_eq!(c.per_input.len(), 2);
        assert!(c.total_intervals() >= 2);
        assert!(c.total_instructions > 20_000);
    }

    #[test]
    fn characterization_is_deterministic() {
        let all = catalog();
        let program = all[3].build(Scale::Tiny, 0);
        let (a, _) = characterize_program(&program, 15_000, 1 << 40).expect("runs");
        let (b, _) = characterize_program(&program, 15_000, 1 << 40).expect("runs");
        assert_eq!(a, b);
    }

    fn spinning_benchmark() -> Benchmark {
        use phaselab_vm::{regs::*, Asm, DataBuilder};
        Benchmark::custom(
            "spin",
            phaselab_workloads::Suite::Bmw,
            vec![(
                "forever",
                Box::new(|_, _| {
                    // The halt is statically reachable (so the program
                    // passes pre-flight verification) but dynamically
                    // never taken: T0 starts at 1 and only grows.
                    let mut asm = Asm::new();
                    asm.li(T0, 1);
                    asm.label("spin");
                    asm.beq(T0, ZERO, "done");
                    asm.addi(T0, T0, 1);
                    asm.j("spin");
                    asm.label("done");
                    asm.halt();
                    asm.assemble(DataBuilder::new()).expect("assembles")
                }),
            )],
        )
    }

    #[test]
    fn watchdog_quarantines_a_runaway_benchmark() {
        let mut cfg = StudyConfig::smoke();
        cfg.max_inst_per_bench = Some(100_000);
        let err = characterize_benchmark_watched(&spinning_benchmark(), &cfg, None)
            .expect_err("never halts");
        let BenchFailure::Quarantined(q) = err else {
            panic!("expected quarantine, got {err:?}");
        };
        assert!(q.is_runaway());
        assert_eq!(q.name, "spin");
        assert_eq!(q.cause, QuarantineCause::Runaway { budget: 100_000 });
    }

    #[test]
    fn watchdog_budget_disabled_defers_to_run_cap() {
        // Without a per-benchmark budget the spinner is silently
        // truncated at the per-run cap, exactly as before the watchdog.
        let mut cfg = StudyConfig::smoke();
        cfg.max_instructions_per_run = 60_000;
        cfg.interval_len = 10_000;
        let c = characterize_benchmark_watched(&spinning_benchmark(), &cfg, None)
            .expect("truncated, not failed");
        assert_eq!(c.total_instructions, 60_000);
        assert_eq!(c.per_input[0].len(), 6);
    }

    #[test]
    fn watched_characterization_matches_unwatched_bit_exactly() {
        let all = catalog();
        let bench = &all[5];
        let mut cfg = StudyConfig::smoke();
        cfg.interval_len = 10_000;
        let unwatched = characterize_benchmark(bench, &cfg).expect("healthy");
        // A generous budget (all Tiny benchmarks halt well within it)
        // must not perturb a single bit.
        cfg.max_inst_per_bench = Some(40_000_000);
        let watched =
            characterize_benchmark_watched(bench, &cfg, None).expect("budget not exceeded");
        assert_eq!(watched.total_instructions, unwatched.total_instructions);
        assert_eq!(watched.per_input, unwatched.per_input);
    }

    #[test]
    fn benchmark_halting_exactly_at_budget_survives() {
        let all = catalog();
        let bench = &all[0];
        let cfg = StudyConfig::smoke();
        let exact = characterize_benchmark(bench, &cfg).expect("healthy");
        let mut cfg2 = cfg.clone();
        cfg2.max_inst_per_bench = Some(exact.total_instructions);
        let c = characterize_benchmark_watched(bench, &cfg2, None)
            .expect("halting on the last budgeted instruction is not runaway");
        assert_eq!(c.total_instructions, exact.total_instructions);
    }

    #[test]
    fn cancelled_token_stops_characterization() {
        let token = CancelToken::new();
        token.cancel();
        let all = catalog();
        let cfg = StudyConfig::smoke();
        let err = characterize_benchmark_watched(&all[0], &cfg, Some(&token))
            .expect_err("token already tripped");
        assert_eq!(err, BenchFailure::Cancelled);
    }

    #[test]
    fn statically_invalid_benchmark_is_quarantined_without_running() {
        use phaselab_vm::{regs::*, Asm, DataBuilder, VerifyError};
        // A genuinely halt-free loop: rejected by the pre-flight
        // verifier, so not a single instruction executes and the
        // watchdog budget is never consulted.
        let bench = Benchmark::custom(
            "haltless",
            phaselab_workloads::Suite::Bmw,
            vec![(
                "default",
                Box::new(|_, _| {
                    let mut asm = Asm::new();
                    asm.li(T0, 0);
                    asm.label("spin");
                    asm.addi(T0, T0, 1);
                    asm.j("spin");
                    asm.assemble(DataBuilder::new()).expect("assembles")
                }),
            )],
        );
        let cfg = StudyConfig::smoke();
        let err = characterize_benchmark_watched(&bench, &cfg, None).expect_err("rejected");
        let BenchFailure::Quarantined(q) = err else {
            panic!("expected quarantine, got {err:?}");
        };
        assert_eq!(q.name, "haltless");
        assert!(!q.is_runaway());
        let verr = q.verify_error().expect("static cause");
        assert!(matches!(verr, VerifyError::NoHaltReachable { .. }));
        // The diagnostic carries a pc and the entry disassembly.
        assert!(q.to_string().contains("statically invalid: pc 0"));
    }

    #[test]
    fn engines_characterize_bit_identically() {
        let all = catalog();
        for bench in all.iter().take(6) {
            let program = bench.build(Scale::Tiny, 0);
            let blk = characterize_program_with_engine(&program, 10_000, 1 << 40, Engine::Block)
                .expect("runs");
            let inst = characterize_program_with_engine(&program, 10_000, 1 << 40, Engine::Inst)
                .expect("runs");
            assert_eq!(blk, inst, "engine divergence on {}", bench.name());
        }
    }

    #[test]
    fn engine_selection_does_not_change_watched_results() {
        let all = catalog();
        let bench = &all[5];
        let mut cfg = StudyConfig::smoke();
        cfg.interval_len = 10_000;
        cfg.max_inst_per_bench = Some(40_000_000);
        cfg.engine = Engine::Block;
        let blk = characterize_benchmark_watched(bench, &cfg, None).expect("healthy");
        cfg.engine = Engine::Inst;
        let inst = characterize_benchmark_watched(bench, &cfg, None).expect("healthy");
        assert_eq!(blk.total_instructions, inst.total_instructions);
        assert_eq!(blk.per_input, inst.per_input);
    }

    #[test]
    fn engines_quarantine_runaways_identically() {
        for engine in [Engine::Block, Engine::Inst] {
            let mut cfg = StudyConfig::smoke();
            cfg.max_inst_per_bench = Some(100_000);
            cfg.engine = engine;
            let err = characterize_benchmark_watched(&spinning_benchmark(), &cfg, None)
                .expect_err("never halts");
            let BenchFailure::Quarantined(q) = err else {
                panic!("expected quarantine, got {err:?}");
            };
            assert_eq!(q.cause, QuarantineCause::Runaway { budget: 100_000 });
        }
    }

    #[test]
    fn faulting_program_reports_the_vm_error() {
        use phaselab_vm::{regs::*, Asm, DataBuilder};
        let mut asm = Asm::new();
        asm.li(T0, 1 << 40); // far outside any data segment
        asm.ld(T1, T0, 0);
        asm.halt();
        let program = asm.assemble(DataBuilder::new()).expect("assembles");
        let err = characterize_program(&program, 1_000, 1 << 20).expect_err("faults");
        assert!(err.is_memory_fault(), "unexpected fault {err}");
    }
}
