//! Step 1: interval characterization of benchmark executions.

use phaselab_mica::{FeatureVector, IntervalCharacterizer};
use phaselab_trace::TraceSink as _;
use phaselab_vm::{Program, Vm, VmError};
use phaselab_workloads::Benchmark;

use crate::config::StudyConfig;
use crate::error::QuarantinedBenchmark;

/// The characterization of one benchmark across all of its inputs.
#[derive(Debug, Clone)]
pub struct BenchCharacterization {
    /// Interval feature vectors, one `Vec` per input.
    pub per_input: Vec<Vec<FeatureVector>>,
    /// Total dynamic instructions executed across inputs.
    pub total_instructions: u64,
}

impl BenchCharacterization {
    /// Total number of characterized intervals across inputs.
    pub fn total_intervals(&self) -> usize {
        self.per_input.iter().map(Vec::len).sum()
    }
}

/// Characterizes one program execution: runs it to completion (or the
/// instruction budget) and returns one [`FeatureVector`] per interval.
///
/// Only full intervals are kept (as in the paper), unless the whole
/// execution is shorter than one interval — then the single partial
/// interval is kept so no benchmark characterizes to nothing.
///
/// # Errors
///
/// Returns the [`VmError`] if the program faults. The bundled workloads
/// are validated not to fault, but the study pipeline treats a fault as
/// an input condition: the owning benchmark is quarantined and the study
/// continues (see [`run_study`](crate::run_study)).
pub fn characterize_program(
    program: &Program,
    interval_len: u64,
    max_instructions: u64,
) -> Result<(Vec<FeatureVector>, u64), VmError> {
    let mut chr = IntervalCharacterizer::new(interval_len).keep_tail(true);
    let mut vm = Vm::new(program);
    let outcome = vm.run(&mut chr, max_instructions)?;
    chr.finish();
    let mut features = chr.into_features();
    let full = (outcome.instructions / interval_len) as usize;
    if full >= 1 && features.len() > full {
        features.truncate(full); // drop the partial tail
    }
    Ok((features, outcome.instructions))
}

/// Characterizes every input of a benchmark at the study's scale and
/// interval length.
///
/// # Errors
///
/// Returns a [`QuarantinedBenchmark`] record — naming the faulting input
/// and the VM fault — if any input faults. Quarantine is all-or-nothing:
/// inputs characterized before the fault are discarded so a benchmark
/// never enters the data set partially.
pub fn characterize_benchmark(
    bench: &Benchmark,
    cfg: &StudyConfig,
) -> Result<BenchCharacterization, QuarantinedBenchmark> {
    let mut per_input = Vec::with_capacity(bench.num_inputs());
    let mut total_instructions = 0;
    for input in 0..bench.num_inputs() {
        let program = bench.build(cfg.scale, input);
        let (features, instrs) =
            characterize_program(&program, cfg.interval_len, cfg.max_instructions_per_run)
                .map_err(|error| QuarantinedBenchmark {
                    name: bench.name().to_string(),
                    suite: bench.suite(),
                    input,
                    input_name: bench.input_names()[input].to_string(),
                    error,
                })?;
        total_instructions += instrs;
        per_input.push(features);
    }
    Ok(BenchCharacterization {
        per_input,
        total_instructions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_workloads::{catalog, Scale};

    #[test]
    fn short_program_keeps_partial_interval() {
        let all = catalog();
        let program = all[0].build(Scale::Tiny, 0);
        // Interval far longer than the whole Tiny run.
        let (features, instrs) = characterize_program(&program, 1 << 40, 1 << 41).expect("runs");
        assert_eq!(features.len(), 1);
        assert!(instrs > 0);
    }

    #[test]
    fn interval_count_matches_execution_length() {
        let all = catalog();
        let program = all[0].build(Scale::Tiny, 0);
        let interval = 10_000;
        let (features, instrs) = characterize_program(&program, interval, 1 << 40).expect("runs");
        assert_eq!(features.len() as u64, instrs / interval);
    }

    #[test]
    fn characterize_benchmark_covers_all_inputs() {
        let all = catalog();
        // bzip2 (SPECint2000) has two inputs.
        let bzip2 = all
            .iter()
            .find(|b| b.name() == "bzip2" && b.num_inputs() == 2)
            .expect("bzip2 with two inputs");
        let mut cfg = StudyConfig::smoke();
        cfg.interval_len = 10_000;
        let c = characterize_benchmark(bzip2, &cfg).expect("no faults");
        assert_eq!(c.per_input.len(), 2);
        assert!(c.total_intervals() >= 2);
        assert!(c.total_instructions > 20_000);
    }

    #[test]
    fn characterization_is_deterministic() {
        let all = catalog();
        let program = all[3].build(Scale::Tiny, 0);
        let (a, _) = characterize_program(&program, 15_000, 1 << 40).expect("runs");
        let (b, _) = characterize_program(&program, 15_000, 1 << 40).expect("runs");
        assert_eq!(a, b);
    }

    #[test]
    fn faulting_program_reports_the_vm_error() {
        use phaselab_vm::{regs::*, Asm, DataBuilder};
        let mut asm = Asm::new();
        asm.li(T0, 1 << 40); // far outside any data segment
        asm.ld(T1, T0, 0);
        asm.halt();
        let program = asm.assemble(DataBuilder::new()).expect("assembles");
        let err = characterize_program(&program, 1_000, 1 << 20).expect_err("faults");
        assert!(err.is_memory_fault(), "unexpected fault {err}");
    }
}
