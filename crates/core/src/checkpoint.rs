//! Crash-safe persistence of completed study work.
//!
//! Long studies lose everything to a crash, a Ctrl-C, or one runaway
//! benchmark. This module gives the pipeline a durable store: each
//! per-benchmark characterization and each completed k-means restart is
//! written to disk the moment it finishes, and
//! [`run_study_resumable`](crate::run_study_resumable) reloads whatever
//! is already there instead of recomputing it. Because every persisted
//! `f64` round-trips through its exact bit pattern, a resumed study is
//! **bit-identical** to an uninterrupted one.
//!
//! # On-disk format
//!
//! One artifact per file, framed like `phaselab-trace`'s streams
//! (little-endian, magic-tagged, versioned) plus a CRC so torn or
//! bit-rotted files are detected rather than trusted:
//!
//! ```text
//! "PLCK" | version u32 | kind u8 | fingerprint u64 | payload_len u64 | payload | crc32(payload)
//! ```
//!
//! Files are written to a temporary sibling and atomically renamed into
//! place, so a crash mid-write can only ever leave a `.tmp` file behind,
//! never a half-written checkpoint under its real name.
//!
//! # Fingerprints
//!
//! Artifacts are keyed by a fingerprint of exactly the configuration
//! that determines their content: characterizations by (format version,
//! scale, interval length, per-run cap, watchdog budget); clusterings by
//! (format version, k, iteration cap, seed, and the bits of the matrix
//! being clustered). The fingerprint is part of the directory name, so
//! studies with different configurations coexist in one store — an
//! ablation sweep reuses whatever stages it genuinely shares — and it is
//! repeated inside the file as a defense against moved files.
//!
//! # Failure policy
//!
//! Loads never fail the study: any unreadable, corrupt, stale, or
//! mismatched checkpoint is skipped with a one-line warning and the
//! artifact is recomputed (and rewritten). Stores are best-effort for
//! the same reason — a full disk degrades to recomputation, not to a
//! crash.

use std::fmt;
use std::fs;
use std::io::{self};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use phaselab_mica::{FeatureVector, NUM_FEATURES};
use phaselab_stats::{Clustering, KmeansConfig, Matrix};
use phaselab_vm::{VerifyError, VmError};
use phaselab_workloads::{Scale, Suite};

use crate::characterize::BenchCharacterization;
use crate::config::{AnalysisMode, StudyConfig};
use crate::error::{QuarantineCause, QuarantinedBenchmark};
use crate::faults;

const MAGIC: &[u8; 4] = b"PLCK";
/// Bumped whenever the payload encodings change; older files are
/// skipped (and rewritten), never misread.
const VERSION: u32 = 2;
const KIND_BENCH: u8 = 1;
const KIND_CLUSTERING: u8 = 2;
/// Frame bytes before the payload: magic, version, kind, fingerprint,
/// payload length.
const HEADER_LEN: usize = 4 + 4 + 1 + 8 + 8;

/// Why a checkpoint file could not be used.
///
/// Every variant is recoverable: the loader warns once and recomputes.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with the `PLCK` magic.
    BadMagic,
    /// The file was written by an incompatible format version.
    UnsupportedVersion {
        /// The version found in the file.
        found: u32,
    },
    /// The file holds a different kind of artifact than expected.
    WrongKind {
        /// The kind tag found in the file.
        found: u8,
    },
    /// The file's embedded fingerprint does not match the
    /// configuration asking for it (e.g. a file copied between stores).
    FingerprintMismatch {
        /// The fingerprint the caller derived from its configuration.
        expected: u64,
        /// The fingerprint found in the file.
        found: u64,
    },
    /// The file ends before its declared payload does.
    Truncated,
    /// The payload's CRC32 does not match — the bytes rotted or were
    /// torn mid-write.
    CrcMismatch,
    /// The payload decodes to something structurally invalid (bad tag,
    /// impossible length, NaN where the pipeline guarantees none).
    Malformed(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a phaselab checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {VERSION})"
                )
            }
            CheckpointError::WrongKind { found } => {
                write!(f, "unexpected checkpoint kind {found}")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "configuration fingerprint mismatch (expected {expected:016x}, found {found:016x})"
            ),
            CheckpointError::Truncated => write!(f, "checkpoint file truncated"),
            CheckpointError::CrcMismatch => write!(f, "checkpoint payload failed its CRC check"),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The persisted outcome of characterizing one benchmark: either its
/// feature matrices or the reason it was quarantined.
///
/// Quarantines are persisted too, so a resume neither re-runs a
/// benchmark that already faulted nor forgets that it faulted — the
/// resumed study's quarantine list matches the uninterrupted one.
#[derive(Debug, Clone)]
pub enum BenchOutcome {
    /// The benchmark characterized cleanly.
    Characterized(BenchCharacterization),
    /// The benchmark was quarantined (fault or runaway).
    Quarantined(QuarantinedBenchmark),
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Fingerprints (FNV-1a 64).

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self
    }
    fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }
}

fn scale_code(scale: Scale) -> u64 {
    match scale {
        Scale::Tiny => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    }
}

fn analysis_code(mode: AnalysisMode) -> u64 {
    match mode {
        AnalysisMode::InRam => 0,
        AnalysisMode::Streaming => 1,
    }
}

/// Fingerprint of everything that determines a benchmark's
/// characterization — format version, workload scale, interval length,
/// per-run instruction cap, and the watchdog budget — plus the run
/// *protocol*: the analysis mode and the shard topology.
///
/// The protocol fields don't change what a benchmark computes, but they
/// change what a checkpoint is *for*: a streaming reducer consumes the
/// store as its only source of feature rows, so it must never pick up
/// outcomes written by an in-RAM run or by workers of a different shard
/// topology, where coverage assumptions differ. Folding
/// `analysis`/`shard_total` into the fingerprint makes such mixtures
/// structurally impossible — a mismatched store just looks empty.
///
/// Deliberately excludes sampling, clustering, and GA settings — two
/// studies differing only in those share characterizations. The
/// execution engine is excluded too: both engines are bit-identical, so
/// a study checkpointed under one engine resumes exactly under the
/// other.
pub fn characterization_fingerprint(cfg: &StudyConfig) -> u64 {
    let mut h = Fnv::new();
    h.u64(VERSION as u64)
        .u64(scale_code(cfg.scale))
        .u64(cfg.interval_len)
        .u64(cfg.max_instructions_per_run);
    match cfg.max_inst_per_bench {
        None => h.u64(0),
        Some(b) => h.u64(1).u64(b),
    };
    h.u64(analysis_code(cfg.analysis))
        .u64(cfg.shard_total as u64);
    h.0
}

/// Fingerprint of everything that determines one k-means restart:
/// format version, k, the iteration cap, the clustering seed, the
/// mini-batch setting, and the exact bits of the matrix being clustered.
///
/// Thread and restart counts are excluded — neither changes what
/// restart `r` computes, so a deeper-restart rerun reuses the restarts
/// it shares with a shallower one.
pub fn clustering_fingerprint(cfg: &KmeansConfig, space: &Matrix) -> u64 {
    let mut h = Fnv::new();
    h.u64(VERSION as u64)
        .u64(cfg.k as u64)
        .u64(cfg.max_iters as u64)
        .u64(cfg.seed);
    match cfg.batch {
        None => h.u64(0),
        Some(b) => h.u64(1).u64(b as u64),
    };
    h.u64(space.rows() as u64).u64(space.cols() as u64);
    for row in space.iter_rows() {
        for &v in row {
            h.u64(v.to_bits());
        }
    }
    h.0
}

// ---------------------------------------------------------------------
// Payload encoding/decoding.

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Self {
        Enc { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Exact bit pattern — the round-trip is the identity on every
    /// finite value. NaNs are rejected *before* encoding reaches here.
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(CheckpointError::Truncated)?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    fn f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.u64()?))
    }
    /// Reads a length prefix counting items of `item_size` bytes,
    /// rejecting counts the remaining buffer cannot possibly hold (so a
    /// corrupt length can never trigger a huge allocation).
    fn len(&mut self, item_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if item_size > 0 && n > remaining / item_size as u64 {
            return Err(CheckpointError::Malformed("impossible length prefix"));
        }
        Ok(n as usize)
    }
    fn str(&mut self) -> Result<String, CheckpointError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("non-UTF-8 string"))
    }
    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CheckpointError::Malformed("trailing bytes after payload"))
        }
    }
}

fn suite_code(suite: Suite) -> u8 {
    match suite {
        Suite::SpecInt2000 => 0,
        Suite::SpecFp2000 => 1,
        Suite::SpecInt2006 => 2,
        Suite::SpecFp2006 => 3,
        Suite::BioPerf => 4,
        Suite::Bmw => 5,
        Suite::MediaBench2 => 6,
    }
}

fn suite_from_code(code: u8) -> Result<Suite, CheckpointError> {
    Suite::ALL
        .into_iter()
        .find(|&s| suite_code(s) == code)
        .ok_or(CheckpointError::Malformed("unknown suite code"))
}

fn encode_vm_error(e: &VmError, enc: &mut Enc) {
    match *e {
        VmError::MemOutOfBounds { pc, addr, size } => {
            enc.u8(0);
            enc.u32(pc);
            enc.u64(addr);
            enc.u8(size);
        }
        VmError::PcOutOfRange { pc } => {
            enc.u8(1);
            enc.u32(pc);
        }
        VmError::CallStackOverflow => enc.u8(2),
        VmError::CallStackUnderflow { pc } => {
            enc.u8(3);
            enc.u32(pc);
        }
    }
}

fn decode_vm_error(dec: &mut Dec) -> Result<VmError, CheckpointError> {
    Ok(match dec.u8()? {
        0 => VmError::MemOutOfBounds {
            pc: dec.u32()?,
            addr: dec.u64()?,
            size: dec.u8()?,
        },
        1 => VmError::PcOutOfRange { pc: dec.u32()? },
        2 => VmError::CallStackOverflow,
        3 => VmError::CallStackUnderflow { pc: dec.u32()? },
        _ => return Err(CheckpointError::Malformed("unknown VM error tag")),
    })
}

fn encode_verify_error(e: &VerifyError, enc: &mut Enc) {
    match e {
        VerifyError::InvalidTarget {
            pc,
            instr,
            target,
            code_len,
        } => {
            enc.u8(0);
            enc.u32(*pc);
            enc.str(instr);
            enc.u32(*target);
            enc.u32(*code_len);
        }
        VerifyError::NoIndirectTargets { pc, instr } => {
            enc.u8(1);
            enc.u32(*pc);
            enc.str(instr);
        }
        VerifyError::FallsOffEnd { pc, instr } => {
            enc.u8(2);
            enc.u32(*pc);
            enc.str(instr);
        }
        VerifyError::OutOfBoundsAccess {
            pc,
            instr,
            addr,
            size,
            mem_size,
        } => {
            enc.u8(3);
            enc.u32(*pc);
            enc.str(instr);
            enc.u64(*addr);
            enc.u8(*size);
            enc.u64(*mem_size);
        }
        VerifyError::UninitRead { pc, instr, reg } => {
            enc.u8(4);
            enc.u32(*pc);
            enc.str(instr);
            enc.str(reg);
        }
        VerifyError::Unreachable { pc, instr } => {
            enc.u8(5);
            enc.u32(*pc);
            enc.str(instr);
        }
        VerifyError::NoHaltReachable { pc, instr } => {
            enc.u8(6);
            enc.u32(*pc);
            enc.str(instr);
        }
        VerifyError::RetWithoutCall { pc, instr } => {
            enc.u8(7);
            enc.u32(*pc);
            enc.str(instr);
        }
        VerifyError::CallDepthExceeded {
            pc,
            instr,
            depth,
            limit,
        } => {
            enc.u8(8);
            enc.u32(*pc);
            enc.str(instr);
            enc.u64(*depth);
            enc.u64(*limit);
        }
    }
}

fn decode_verify_error(dec: &mut Dec) -> Result<VerifyError, CheckpointError> {
    let tag = dec.u8()?;
    let pc = dec.u32()?;
    let instr = dec.str()?;
    Ok(match tag {
        0 => VerifyError::InvalidTarget {
            pc,
            instr,
            target: dec.u32()?,
            code_len: dec.u32()?,
        },
        1 => VerifyError::NoIndirectTargets { pc, instr },
        2 => VerifyError::FallsOffEnd { pc, instr },
        3 => VerifyError::OutOfBoundsAccess {
            pc,
            instr,
            addr: dec.u64()?,
            size: dec.u8()?,
            mem_size: dec.u64()?,
        },
        4 => VerifyError::UninitRead {
            pc,
            instr,
            reg: dec.str()?,
        },
        5 => VerifyError::Unreachable { pc, instr },
        6 => VerifyError::NoHaltReachable { pc, instr },
        7 => VerifyError::RetWithoutCall { pc, instr },
        8 => VerifyError::CallDepthExceeded {
            pc,
            instr,
            depth: dec.u64()?,
            limit: dec.u64()?,
        },
        _ => return Err(CheckpointError::Malformed("unknown verify error tag")),
    })
}

fn encode_bench_outcome(outcome: &BenchOutcome) -> Result<Vec<u8>, CheckpointError> {
    let mut enc = Enc::new();
    match outcome {
        BenchOutcome::Characterized(c) => {
            enc.u8(0);
            enc.u64(c.per_input.len() as u64);
            for input in &c.per_input {
                enc.u64(input.len() as u64);
                for fv in input {
                    for &v in fv.as_slice() {
                        if v.is_nan() {
                            return Err(CheckpointError::Malformed(
                                "NaN in characterization matrix",
                            ));
                        }
                        enc.f64(v);
                    }
                }
            }
            enc.u64(c.total_instructions);
        }
        BenchOutcome::Quarantined(q) => {
            enc.u8(1);
            enc.str(&q.name);
            enc.u8(suite_code(q.suite));
            enc.u64(q.input as u64);
            enc.str(&q.input_name);
            match &q.cause {
                QuarantineCause::Fault(e) => {
                    enc.u8(0);
                    encode_vm_error(e, &mut enc);
                }
                QuarantineCause::Runaway { budget } => {
                    enc.u8(1);
                    enc.u64(*budget);
                }
                QuarantineCause::StaticallyInvalid(e) => {
                    enc.u8(2);
                    encode_verify_error(e, &mut enc);
                }
            }
        }
    }
    Ok(enc.buf)
}

fn decode_bench_outcome(payload: &[u8]) -> Result<BenchOutcome, CheckpointError> {
    let mut dec = Dec::new(payload);
    let outcome = match dec.u8()? {
        0 => {
            let n_inputs = dec.len(8)?;
            let mut per_input = Vec::with_capacity(n_inputs);
            for _ in 0..n_inputs {
                let n_intervals = dec.len(NUM_FEATURES * 8)?;
                let mut features = Vec::with_capacity(n_intervals);
                let mut values = [0.0f64; NUM_FEATURES];
                for _ in 0..n_intervals {
                    for v in &mut values {
                        *v = dec.f64()?;
                        if v.is_nan() {
                            return Err(CheckpointError::Malformed(
                                "NaN in characterization matrix",
                            ));
                        }
                    }
                    features.push(FeatureVector::from_slice(&values));
                }
                per_input.push(features);
            }
            let total_instructions = dec.u64()?;
            BenchOutcome::Characterized(BenchCharacterization {
                per_input,
                total_instructions,
            })
        }
        1 => {
            let name = dec.str()?;
            let suite = suite_from_code(dec.u8()?)?;
            let input = dec.u64()? as usize;
            let input_name = dec.str()?;
            let cause = match dec.u8()? {
                0 => QuarantineCause::Fault(decode_vm_error(&mut dec)?),
                1 => QuarantineCause::Runaway { budget: dec.u64()? },
                2 => QuarantineCause::StaticallyInvalid(decode_verify_error(&mut dec)?),
                _ => return Err(CheckpointError::Malformed("unknown quarantine cause tag")),
            };
            BenchOutcome::Quarantined(QuarantinedBenchmark {
                name,
                suite,
                input,
                input_name,
                cause,
            })
        }
        _ => return Err(CheckpointError::Malformed("unknown outcome tag")),
    };
    dec.finish()?;
    Ok(outcome)
}

fn encode_clustering(c: &Clustering) -> Result<Vec<u8>, CheckpointError> {
    let mut enc = Enc::new();
    enc.u64(c.assignments.len() as u64);
    for &a in &c.assignments {
        enc.u64(a as u64);
    }
    enc.u64(c.centroids.rows() as u64);
    enc.u64(c.centroids.cols() as u64);
    for row in c.centroids.iter_rows() {
        for &v in row {
            if v.is_nan() {
                return Err(CheckpointError::Malformed("NaN in centroid"));
            }
            enc.f64(v);
        }
    }
    enc.u64(c.sizes.len() as u64);
    for &s in &c.sizes {
        enc.u64(s as u64);
    }
    if c.inertia.is_nan() || c.bic.is_nan() {
        return Err(CheckpointError::Malformed("NaN clustering score"));
    }
    enc.f64(c.inertia);
    enc.f64(c.bic);
    Ok(enc.buf)
}

fn decode_clustering(payload: &[u8]) -> Result<Clustering, CheckpointError> {
    let mut dec = Dec::new(payload);
    let n = dec.len(8)?;
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        assignments.push(dec.u64()? as usize);
    }
    let rows = dec.len(0)?;
    let cols = dec.len(0)?;
    let cells = rows
        .checked_mul(cols)
        .filter(|&c| c * 8 <= payload.len())
        .ok_or(CheckpointError::Malformed("impossible centroid shape"))?;
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        let v = dec.f64()?;
        if v.is_nan() {
            return Err(CheckpointError::Malformed("NaN in centroid"));
        }
        data.push(v);
    }
    let centroids = Matrix::from_vec(rows, cols, data);
    let k = dec.len(8)?;
    if k != rows {
        return Err(CheckpointError::Malformed("cluster count != centroid rows"));
    }
    let mut sizes = Vec::with_capacity(k);
    for _ in 0..k {
        sizes.push(dec.u64()? as usize);
    }
    let inertia = dec.f64()?;
    let bic = dec.f64()?;
    if inertia.is_nan() || bic.is_nan() {
        return Err(CheckpointError::Malformed("NaN clustering score"));
    }
    dec.finish()?;
    Ok(Clustering {
        assignments,
        centroids,
        sizes,
        inertia,
        bic,
    })
}

// ---------------------------------------------------------------------
// Framing.

fn frame(kind: u8, fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

fn unframe(bytes: &[u8], kind: u8, fingerprint: u64) -> Result<&[u8], CheckpointError> {
    let mut dec = Dec::new(bytes);
    if dec.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = dec.u32()?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion { found: version });
    }
    let found_kind = dec.u8()?;
    if found_kind != kind {
        return Err(CheckpointError::WrongKind { found: found_kind });
    }
    let found_fp = dec.u64()?;
    if found_fp != fingerprint {
        return Err(CheckpointError::FingerprintMismatch {
            expected: fingerprint,
            found: found_fp,
        });
    }
    let len = dec.len(1)?;
    let payload = dec.take(len)?;
    let crc = dec.u32()?;
    dec.finish()?;
    if crc32(payload) != crc {
        return Err(CheckpointError::CrcMismatch);
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// The store.

/// Keeps only filename-safe characters so benchmark names map to
/// predictable paths on every filesystem.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// A directory of checkpoint files (see the [module docs](self) for the
/// format, fingerprinting, and failure policy).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        // Any process that touches a store (including spawned shard
        // workers) arms chaos injection from the environment here.
        faults::arm_from_env();
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint for one benchmark's characterization
    /// under the given configuration fingerprint.
    pub fn benchmark_path(&self, fingerprint: u64, suite: Suite, name: &str) -> PathBuf {
        self.dir.join(format!("c{fingerprint:016x}")).join(format!(
            "bench-{}-{}.ckpt",
            suite_code(suite),
            sanitize(name)
        ))
    }

    /// Path of the checkpoint for one completed k-means restart under
    /// the given clustering fingerprint.
    pub fn clustering_path(&self, fingerprint: u64, restart: usize) -> PathBuf {
        self.dir
            .join(format!("k{fingerprint:016x}"))
            .join(format!("restart-{restart}.ckpt"))
    }

    fn write(path: &Path, kind: u8, fingerprint: u64, payload: &[u8]) {
        let result: io::Result<()> = (|| {
            let parent = path.parent().expect("checkpoint paths have a parent");
            fs::create_dir_all(parent)?;
            let tmp = path.with_extension("ckpt.tmp");
            faults::fs_write(&tmp, &frame(kind, fingerprint, payload))?;
            faults::fs_rename(&tmp, path)
        })();
        if let Err(e) = result {
            phaselab_obs::counter_add("checkpoint.write_errors", phaselab_obs::Class::Timing, 1);
            eprintln!(
                "[phaselab] warning: could not write checkpoint {}: {e}",
                path.display()
            );
        }
    }

    /// How many times a transient-looking read failure (`EINTR`, or a
    /// frame that arrives truncated — possibly a short read) is retried
    /// before the file is classified as corruption-and-recompute.
    const READ_RETRIES: u32 = 3;

    fn read(path: &Path, kind: u8, fingerprint: u64) -> Option<Vec<u8>> {
        let mut last_err: Option<CheckpointError> = None;
        for attempt in 0..=Self::READ_RETRIES {
            if attempt > 0 {
                phaselab_obs::counter_add(
                    "checkpoint.read_retries",
                    phaselab_obs::Class::Timing,
                    1,
                );
            }
            let bytes = match faults::fs_read(path) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // The canonical transient failure: retry, bounded.
                    last_err = Some(CheckpointError::Io(e));
                    continue;
                }
                Err(e) => {
                    warn_skip(path, &CheckpointError::Io(e));
                    return None;
                }
            };
            match unframe(&bytes, kind, fingerprint) {
                Ok(payload) => return Some(payload.to_vec()),
                Err(e @ (CheckpointError::Truncated | CheckpointError::CrcMismatch)) => {
                    // A truncated or CRC-failing frame may be a short
                    // read rather than rot on disk; re-read before
                    // giving up on the file.
                    last_err = Some(e);
                }
                Err(e) => {
                    warn_skip(path, &e);
                    return None;
                }
            }
        }
        warn_skip(
            path,
            &last_err.expect("retry loop only exits with an error recorded"),
        );
        None
    }

    /// Persists the outcome of characterizing one benchmark.
    ///
    /// Best-effort: a write failure (or an outcome violating the
    /// NaN-free invariant) warns and leaves the previous state intact.
    pub fn store_benchmark(
        &self,
        fingerprint: u64,
        suite: Suite,
        name: &str,
        outcome: &BenchOutcome,
    ) {
        let path = self.benchmark_path(fingerprint, suite, name);
        match encode_bench_outcome(outcome) {
            Ok(payload) => Self::write(&path, KIND_BENCH, fingerprint, &payload),
            Err(e) => warn_skip(&path, &e),
        }
    }

    /// Loads a benchmark's persisted outcome, or `None` if absent or
    /// unusable (warned, never fatal).
    pub fn load_benchmark(
        &self,
        fingerprint: u64,
        suite: Suite,
        name: &str,
    ) -> Option<BenchOutcome> {
        let path = self.benchmark_path(fingerprint, suite, name);
        let Some(payload) = Self::read(&path, KIND_BENCH, fingerprint) else {
            record_lookup(false);
            return None;
        };
        match decode_bench_outcome(&payload) {
            Ok(outcome) => {
                record_lookup(true);
                touch(&path);
                Some(outcome)
            }
            Err(e) => {
                warn_skip(&path, &e);
                record_lookup(false);
                None
            }
        }
    }

    /// Persists one completed k-means restart. Best-effort, like
    /// [`store_benchmark`](CheckpointStore::store_benchmark).
    pub fn store_clustering(&self, fingerprint: u64, restart: usize, clustering: &Clustering) {
        let path = self.clustering_path(fingerprint, restart);
        match encode_clustering(clustering) {
            Ok(payload) => Self::write(&path, KIND_CLUSTERING, fingerprint, &payload),
            Err(e) => warn_skip(&path, &e),
        }
    }

    /// Loads one persisted k-means restart, or `None` if absent or
    /// unusable (warned, never fatal).
    pub fn load_clustering(&self, fingerprint: u64, restart: usize) -> Option<Clustering> {
        let path = self.clustering_path(fingerprint, restart);
        let Some(payload) = Self::read(&path, KIND_CLUSTERING, fingerprint) else {
            record_lookup(false);
            return None;
        };
        match decode_clustering(&payload) {
            Ok(c) => {
                record_lookup(true);
                touch(&path);
                Some(c)
            }
            Err(e) => {
                warn_skip(&path, &e);
                record_lookup(false);
                None
            }
        }
    }
}

/// Counts one cache lookup. Timing-class by contract: warmth is
/// operational luck (a resumed run hits where a fresh one misses), so
/// the tallies live under `timings.counters` and never perturb the
/// structural manifest.
fn record_lookup(hit: bool) {
    let name = if hit { "cache.hit" } else { "cache.miss" };
    phaselab_obs::counter_add(name, phaselab_obs::Class::Timing, 1);
}

/// Best-effort LRU bookkeeping: bumps the entry's modification time so
/// size-budget eviction (`ResultCache::gc`) evicts least-recently-*used*
/// entries, not merely least-recently-written ones. Failure is ignored —
/// recency decay only makes eviction slightly less fair.
fn touch(path: &Path) {
    if let Ok(f) = fs::File::options().append(true).open(path) {
        let now = std::time::SystemTime::now();
        let _ = f.set_times(fs::FileTimes::new().set_accessed(now).set_modified(now));
    }
}

fn warn_skip(path: &Path, err: &CheckpointError) {
    phaselab_obs::counter_add("checkpoint.invalid", phaselab_obs::Class::Timing, 1);
    eprintln!(
        "[phaselab] warning: ignoring checkpoint {}: {err}",
        path.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("phaselab-ckpt-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::open(&dir).expect("temp store")
    }

    fn sample_characterization() -> BenchCharacterization {
        let mut v = [0.0f64; NUM_FEATURES];
        for (i, x) in v.iter_mut().enumerate() {
            *x = (i as f64 + 0.5) * 0.125 - 2.0;
        }
        BenchCharacterization {
            per_input: vec![
                vec![FeatureVector::from_slice(&v); 3],
                vec![FeatureVector::zeros(); 1],
            ],
            total_instructions: 123_456,
        }
    }

    #[test]
    fn benchmark_outcome_roundtrips() {
        let store = temp_store("bench-roundtrip");
        let c = sample_characterization();
        store.store_benchmark(
            7,
            Suite::Bmw,
            "probe",
            &BenchOutcome::Characterized(c.clone()),
        );
        let loaded = store
            .load_benchmark(7, Suite::Bmw, "probe")
            .expect("present");
        let BenchOutcome::Characterized(l) = loaded else {
            panic!("wrong variant");
        };
        assert_eq!(l.per_input, c.per_input);
        assert_eq!(l.total_instructions, c.total_instructions);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn quarantine_outcome_roundtrips() {
        let store = temp_store("quarantine-roundtrip");
        let q = QuarantinedBenchmark {
            name: "bad/one".into(),
            suite: Suite::SpecFp2006,
            input: 2,
            input_name: "ref".into(),
            cause: QuarantineCause::Runaway { budget: 99 },
        };
        store.store_benchmark(1, q.suite, &q.name, &BenchOutcome::Quarantined(q.clone()));
        let loaded = store.load_benchmark(1, q.suite, &q.name).expect("present");
        let BenchOutcome::Quarantined(l) = loaded else {
            panic!("wrong variant");
        };
        assert_eq!(l, q);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn vm_fault_cause_roundtrips_every_variant() {
        for err in [
            VmError::MemOutOfBounds {
                pc: 3,
                addr: 1 << 40,
                size: 8,
            },
            VmError::PcOutOfRange { pc: 17 },
            VmError::CallStackOverflow,
            VmError::CallStackUnderflow { pc: 5 },
        ] {
            let mut enc = Enc::new();
            encode_vm_error(&err, &mut enc);
            let mut dec = Dec::new(&enc.buf);
            assert_eq!(decode_vm_error(&mut dec).expect("decodes"), err);
        }
    }

    #[test]
    fn verify_error_cause_roundtrips_every_variant() {
        let variants = [
            VerifyError::InvalidTarget {
                pc: 3,
                instr: "j @99".into(),
                target: 99,
                code_len: 10,
            },
            VerifyError::NoIndirectTargets {
                pc: 1,
                instr: "jr r5".into(),
            },
            VerifyError::FallsOffEnd {
                pc: 9,
                instr: "nop".into(),
            },
            VerifyError::OutOfBoundsAccess {
                pc: 4,
                instr: "ld r1, 0(r2)".into(),
                addr: 1 << 40,
                size: 8,
                mem_size: 4096,
            },
            VerifyError::UninitRead {
                pc: 0,
                instr: "mv r1, r2".into(),
                reg: "r2".into(),
            },
            VerifyError::Unreachable {
                pc: 7,
                instr: "halt".into(),
            },
            VerifyError::NoHaltReachable {
                pc: 0,
                instr: "li r1, 0".into(),
            },
            VerifyError::RetWithoutCall {
                pc: 2,
                instr: "ret".into(),
            },
            VerifyError::CallDepthExceeded {
                pc: 1,
                instr: "call @8".into(),
                depth: 65537,
                limit: 65536,
            },
        ];
        for err in variants {
            let mut enc = Enc::new();
            encode_verify_error(&err, &mut enc);
            let mut dec = Dec::new(&enc.buf);
            assert_eq!(decode_verify_error(&mut dec).expect("decodes"), err);
        }
    }

    #[test]
    fn statically_invalid_quarantine_roundtrips_through_the_store() {
        let store = temp_store("static-invalid-roundtrip");
        let q = QuarantinedBenchmark {
            name: "bad-static".into(),
            suite: Suite::Bmw,
            input: 0,
            input_name: "default".into(),
            cause: QuarantineCause::StaticallyInvalid(VerifyError::NoHaltReachable {
                pc: 0,
                instr: "li r1, 0".into(),
            }),
        };
        store.store_benchmark(7, q.suite, &q.name, &BenchOutcome::Quarantined(q.clone()));
        let loaded = store.load_benchmark(7, q.suite, &q.name).expect("present");
        let BenchOutcome::Quarantined(l) = loaded else {
            panic!("wrong variant");
        };
        assert_eq!(l, q);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn absent_checkpoint_is_silent_none() {
        let store = temp_store("absent");
        assert!(store.load_benchmark(0, Suite::Bmw, "ghost").is_none());
        assert!(store.load_clustering(0, 3).is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn nan_payload_is_rejected_not_stored() {
        let store = temp_store("nan");
        let mut c = sample_characterization();
        c.per_input[0][0][1] = f64::NAN;
        store.store_benchmark(9, Suite::Bmw, "nan", &BenchOutcome::Characterized(c));
        assert!(!store.benchmark_path(9, Suite::Bmw, "nan").exists());
        assert!(store.load_benchmark(9, Suite::Bmw, "nan").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn version_bump_invalidates_without_crashing() {
        let store = temp_store("version");
        store.store_benchmark(
            4,
            Suite::BioPerf,
            "old",
            &BenchOutcome::Characterized(sample_characterization()),
        );
        let path = store.benchmark_path(4, Suite::BioPerf, "old");
        let mut bytes = fs::read(&path).expect("written");
        bytes[4] = 0xFE; // version field, not covered by the payload CRC
        fs::write(&path, bytes).expect("rewritten");
        assert!(store.load_benchmark(4, Suite::BioPerf, "old").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fingerprint_mismatch_is_skipped() {
        let store = temp_store("fingerprint");
        store.store_benchmark(
            10,
            Suite::Bmw,
            "moved",
            &BenchOutcome::Characterized(sample_characterization()),
        );
        // Simulate a file copied into the wrong fingerprint directory.
        let wrong = store.benchmark_path(11, Suite::Bmw, "moved");
        fs::create_dir_all(wrong.parent().unwrap()).unwrap();
        fs::copy(store.benchmark_path(10, Suite::Bmw, "moved"), &wrong).unwrap();
        assert!(store.load_benchmark(11, Suite::Bmw, "moved").is_none());
        assert!(store.load_benchmark(10, Suite::Bmw, "moved").is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn clustering_roundtrips_bit_exactly() {
        let store = temp_store("clustering");
        let c = Clustering {
            assignments: vec![0, 1, 1, 0],
            centroids: Matrix::from_rows(&[vec![0.25, -1.5], vec![3.75, 0.0625]]),
            sizes: vec![2, 2],
            inertia: 0.123456789,
            bic: -42.75,
        };
        store.store_clustering(77, 3, &c);
        let l = store.load_clustering(77, 3).expect("present");
        assert_eq!(l, c);
        assert_eq!(l.bic.to_bits(), c.bic.to_bits());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fingerprints_separate_configurations() {
        let a = StudyConfig::smoke();
        let mut b = a.clone();
        b.interval_len += 1;
        assert_ne!(
            characterization_fingerprint(&a),
            characterization_fingerprint(&b)
        );
        let mut c = a.clone();
        c.max_inst_per_bench = Some(1_000_000);
        assert_ne!(
            characterization_fingerprint(&a),
            characterization_fingerprint(&c)
        );
        // Sampling/clustering settings do not invalidate characterizations.
        let mut d = a.clone();
        d.k += 1;
        d.seed ^= 0x55;
        d.samples_per_benchmark += 1;
        assert_eq!(
            characterization_fingerprint(&a),
            characterization_fingerprint(&d)
        );
        // Neither does the execution engine: both produce bit-identical
        // characterizations, so a checkpoint resumes across engines.
        let mut e = a.clone();
        e.engine = crate::Engine::Inst;
        assert_eq!(
            characterization_fingerprint(&a),
            characterization_fingerprint(&e)
        );

        let m1 = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let mut m2 = m1.clone();
        m2.set(1, 1, 4.0 + 1e-12);
        let kcfg = KmeansConfig::new(2);
        assert_ne!(
            clustering_fingerprint(&kcfg, &m1),
            clustering_fingerprint(&kcfg, &m2)
        );
        assert_ne!(
            clustering_fingerprint(&kcfg, &m1),
            clustering_fingerprint(&kcfg.clone().with_seed(1), &m1)
        );
    }
}
