//! Study configuration.

use phaselab_ga::GaConfig;
use phaselab_mica::NUM_FEATURES;
use phaselab_workloads::{Scale, Suite};

use crate::error::ConfigError;

/// How intervals are sampled from the characterized executions (§2.4 of
/// the paper discusses this as an experimental design choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingPolicy {
    /// A fixed number of intervals per benchmark (the paper's choice):
    /// every benchmark gets equal weight regardless of its execution
    /// length or input count.
    EqualPerBenchmark,
    /// Sample proportionally to each benchmark's interval count, up to
    /// the same total budget: long-running benchmarks dominate, which is
    /// the bias the paper's policy avoids.
    Proportional,
}

/// How the analysis stage (normalization, PCA, clustering input) gets at
/// the sampled feature rows.
///
/// Both modes run the same one-pass accumulators over the same rows in
/// the same order, so for a given configuration they produce
/// **bit-identical** results; only memory behavior differs. Because a
/// checkpoint written by one mode carries the features the other would
/// drop (or vice versa), the mode **is** part of the characterization
/// fingerprint — a reducer can never mix outcomes across modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Materialize the sampled interval-by-feature matrix in RAM (the
    /// default). Required by the experiments that read raw feature rows
    /// after the study (kiviat plots, per-feature figures).
    #[default]
    InRam,
    /// Stream rows out of the checkpoint store one benchmark at a time;
    /// peak analysis memory is O(features²) + O(rows × retained
    /// components), never O(rows × features). Requires a checkpoint
    /// store; [`StudyResult::features`](crate::StudyResult) stays empty.
    Streaming,
}

/// Which VM execution engine drives characterization.
///
/// Both engines produce bit-identical observation streams, features,
/// fault positions and quarantine decisions for every program; the
/// selector only trades dispatch strategy (and therefore throughput)
/// against implementation simplicity. Because results are identical, the
/// engine is **not** part of the checkpoint fingerprint: a study resumed
/// under the other engine continues bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Basic-block-compiled dispatch with fused block-level observation
    /// (the default): programs are pre-decoded into straight-line
    /// superinstructions and budgets are checked once per block.
    #[default]
    Block,
    /// The per-instruction reference interpreter — the differential
    /// testing oracle.
    Inst,
}

impl Engine {
    /// Parses a CLI engine name (`"block"` or `"inst"`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "block" => Some(Engine::Block),
            "inst" => Some(Engine::Inst),
            _ => None,
        }
    }

    /// The CLI name of this engine.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Block => "block",
            Engine::Inst => "inst",
        }
    }
}

/// Configuration of a phase-level workload characterization study.
///
/// The paper's setup uses 100M-instruction intervals, 1,000 sampled
/// intervals per benchmark, k = 300 clusters, 100 prominent phases, a
/// PCA retention threshold of 1.0 and 12 GA-selected key
/// characteristics. [`StudyConfig::paper_scaled`] keeps every ratio and
/// threshold but shrinks the interval length and sample count so the
/// study runs on one machine in minutes; [`StudyConfig::smoke`] shrinks
/// further for tests.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyConfig {
    /// Workload scale (execution length multiplier).
    pub scale: Scale,
    /// Interval length in dynamic instructions (paper: 100M).
    pub interval_len: u64,
    /// Intervals sampled per benchmark across all inputs (paper: 1,000).
    pub samples_per_benchmark: usize,
    /// Sampling policy (paper: equal weight per benchmark).
    pub sampling: SamplingPolicy,
    /// Number of k-means clusters (paper: 300).
    pub k: usize,
    /// Number of prominent phases kept for visualization (paper: 100).
    pub n_prominent: usize,
    /// PCA retention threshold on component standard deviation
    /// (paper: 1.0, the Kaiser criterion).
    pub pca_sd_threshold: f64,
    /// k-means restarts (highest BIC wins).
    pub kmeans_restarts: usize,
    /// k-means Lloyd iteration cap.
    pub kmeans_max_iters: usize,
    /// Genetic-algorithm configuration for key-characteristic selection.
    pub ga: GaConfig,
    /// Number of key characteristics the GA retains (paper: 12).
    pub n_key_characteristics: usize,
    /// Restrict the study to these suites (`None` = all 77 benchmarks).
    pub suites: Option<Vec<Suite>>,
    /// Instruction budget per benchmark execution (a safety net; all
    /// bundled benchmarks halt well before it).
    pub max_instructions_per_run: u64,
    /// Runaway watchdog: total instruction budget across all inputs of
    /// one benchmark. A benchmark that exhausts it without halting is
    /// quarantined with
    /// [`QuarantineCause::Runaway`](crate::QuarantineCause::Runaway)
    /// instead of wedging the study. `None` (the default) disables the
    /// watchdog; unlike `max_instructions_per_run`, which silently
    /// truncates, exceeding this budget is treated as a failure.
    pub max_inst_per_bench: Option<u64>,
    /// VM execution engine (default: block-compiled). Results are
    /// bit-identical for both engines; only throughput differs.
    pub engine: Engine,
    /// Worker threads for every parallel stage — benchmark
    /// characterization, k-means clustering, and GA fitness evaluation
    /// (0 = all cores). Results are identical for every value.
    pub threads: usize,
    /// Master seed; every stochastic stage derives its own seed from it.
    pub seed: u64,
    /// Analysis memory mode (default: in-RAM). Results are bit-identical
    /// for both modes; see [`AnalysisMode`].
    pub analysis: AnalysisMode,
    /// Total number of shard workers this study's checkpoint store is
    /// divided across (default: 1, an unsharded study). Part of the
    /// checkpoint fingerprint so a reducer only ever consumes outcomes
    /// produced under the same topology.
    pub shard_total: u32,
    /// Mini-batch size for k-means (`None`, the default, keeps the exact
    /// bounded-Lloyd algorithm). An approximation — see
    /// [`KmeansConfig::batch`](phaselab_stats::KmeansConfig).
    pub kmeans_batch: Option<usize>,
    /// Run the abstract-interpretation pre-flight
    /// (`Program::analyze`) over every benchmark before executing it
    /// (default: on). The pre-flight records a `static_analysis`
    /// manifest section, derives a default watchdog budget from the
    /// static instruction maxima when `max_inst_per_bench` is absent,
    /// lets the block compiler skip statically dead code, and orders
    /// shard work longest-first. The static bounds are sound, so study
    /// results are **bit-identical** with the pre-flight on or off;
    /// like [`Engine`], the flag is therefore not part of the
    /// checkpoint fingerprint.
    pub static_analysis: bool,
}

impl StudyConfig {
    /// The full reproduction study: every paper parameter ratio, scaled
    /// to a single machine (100 K-instruction intervals, 200 samples per
    /// benchmark, k = 300, 100 prominent phases, 12 key
    /// characteristics).
    pub fn paper_scaled() -> Self {
        StudyConfig {
            scale: Scale::Full,
            interval_len: 100_000,
            samples_per_benchmark: 200,
            sampling: SamplingPolicy::EqualPerBenchmark,
            k: 300,
            n_prominent: 100,
            pca_sd_threshold: 1.0,
            kmeans_restarts: 2,
            kmeans_max_iters: 40,
            ga: GaConfig::study(0),
            n_key_characteristics: 12,
            suites: None,
            max_instructions_per_run: 500_000_000,
            max_inst_per_bench: None,
            engine: Engine::Block,
            threads: 0,
            seed: 0,
            analysis: AnalysisMode::InRam,
            shard_total: 1,
            kmeans_batch: None,
            static_analysis: true,
        }
    }

    /// A fast configuration for tests: tiny workloads, short intervals,
    /// small k.
    pub fn smoke() -> Self {
        StudyConfig {
            scale: Scale::Tiny,
            interval_len: 20_000,
            samples_per_benchmark: 8,
            sampling: SamplingPolicy::EqualPerBenchmark,
            k: 24,
            n_prominent: 10,
            pca_sd_threshold: 1.0,
            kmeans_restarts: 2,
            kmeans_max_iters: 20,
            ga: GaConfig::fast(0),
            n_key_characteristics: 6,
            suites: None,
            max_instructions_per_run: 50_000_000,
            max_inst_per_bench: None,
            engine: Engine::Block,
            threads: 0,
            seed: 0,
            analysis: AnalysisMode::InRam,
            shard_total: 1,
            kmeans_batch: None,
            static_analysis: true,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first contradictory
    /// setting (e.g. more prominent phases than clusters, or an invalid
    /// GA sub-configuration).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.interval_len == 0 {
            return Err(ConfigError::ZeroIntervalLength);
        }
        if self.samples_per_benchmark == 0 {
            return Err(ConfigError::ZeroSamples);
        }
        if self.k == 0 {
            return Err(ConfigError::ZeroClusters);
        }
        if self.n_prominent > self.k {
            return Err(ConfigError::ProminentExceedsClusters {
                n_prominent: self.n_prominent,
                k: self.k,
            });
        }
        if self.n_key_characteristics == 0 {
            return Err(ConfigError::ZeroKeyCharacteristics);
        }
        if self.n_key_characteristics > NUM_FEATURES {
            return Err(ConfigError::TooManyKeyCharacteristics {
                requested: self.n_key_characteristics,
                available: NUM_FEATURES,
            });
        }
        if let Some(suites) = &self.suites {
            if suites.is_empty() {
                return Err(ConfigError::EmptySuiteFilter);
            }
        }
        if self.max_inst_per_bench == Some(0) {
            return Err(ConfigError::ZeroBenchBudget);
        }
        if self.shard_total == 0 {
            return Err(ConfigError::ZeroShards);
        }
        if self.kmeans_batch == Some(0) {
            return Err(ConfigError::ZeroKmeansBatch);
        }
        self.ga.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert_eq!(StudyConfig::paper_scaled().validate(), Ok(()));
        assert_eq!(StudyConfig::smoke().validate(), Ok(()));
    }

    #[test]
    fn paper_scaled_preserves_paper_ratios() {
        let cfg = StudyConfig::paper_scaled();
        assert_eq!(cfg.k, 300);
        assert_eq!(cfg.n_prominent, 100);
        assert_eq!(cfg.n_key_characteristics, 12);
        assert_eq!(cfg.pca_sd_threshold, 1.0);
    }

    #[test]
    fn validate_rejects_prominent_above_k() {
        let mut cfg = StudyConfig::smoke();
        cfg.n_prominent = cfg.k + 1;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::ProminentExceedsClusters {
                n_prominent: cfg.n_prominent,
                k: cfg.k,
            })
        );
    }

    #[test]
    fn validate_rejects_each_degenerate_setting() {
        let mut cfg = StudyConfig::smoke();
        cfg.interval_len = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroIntervalLength));

        let mut cfg = StudyConfig::smoke();
        cfg.samples_per_benchmark = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroSamples));

        let mut cfg = StudyConfig::smoke();
        cfg.k = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroClusters));

        let mut cfg = StudyConfig::smoke();
        cfg.n_key_characteristics = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroKeyCharacteristics));

        let mut cfg = StudyConfig::smoke();
        cfg.n_key_characteristics = NUM_FEATURES + 1;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TooManyKeyCharacteristics {
                requested: NUM_FEATURES + 1,
                available: NUM_FEATURES,
            })
        );

        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![]);
        assert_eq!(cfg.validate(), Err(ConfigError::EmptySuiteFilter));

        let mut cfg = StudyConfig::smoke();
        cfg.max_inst_per_bench = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroBenchBudget));

        let mut cfg = StudyConfig::smoke();
        cfg.max_inst_per_bench = Some(1);
        assert_eq!(cfg.validate(), Ok(()));

        let mut cfg = StudyConfig::smoke();
        cfg.shard_total = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroShards));

        let mut cfg = StudyConfig::smoke();
        cfg.kmeans_batch = Some(0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroKmeansBatch));

        let mut cfg = StudyConfig::smoke();
        cfg.ga.populations = 0;
        assert!(matches!(cfg.validate(), Err(ConfigError::Ga(_))));
    }
}
