//! Typed errors for the study pipeline.
//!
//! The pipeline distinguishes three failure domains, mirroring its
//! stages:
//!
//! * [`ConfigError`] — the study was mis-configured; nothing ran.
//! * Characterization faults — a workload faulted in the VM. A single
//!   faulting benchmark does **not** fail the study: it is quarantined
//!   (see [`QuarantinedBenchmark`] and
//!   [`StudyResult::quarantined`](crate::StudyResult::quarantined)) and
//!   the study completes on the survivors. Only when *every* selected
//!   benchmark faults does the study fail with
//!   [`StudyError::Characterization`].
//! * [`AnalysisError`] — the surviving data set is too degenerate to
//!   analyze.

use std::error::Error;
use std::fmt;

use phaselab_ga::GaConfigError;
use phaselab_vm::{VerifyError, VmError};
use phaselab_workloads::Suite;

/// An invalid [`StudyConfig`](crate::StudyConfig).
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `interval_len` is zero.
    ZeroIntervalLength,
    /// `samples_per_benchmark` is zero.
    ZeroSamples,
    /// `k` is zero.
    ZeroClusters,
    /// More prominent phases requested than clusters exist.
    ProminentExceedsClusters {
        /// Requested number of prominent phases.
        n_prominent: usize,
        /// Configured number of clusters.
        k: usize,
    },
    /// `n_key_characteristics` is zero.
    ZeroKeyCharacteristics,
    /// `n_key_characteristics` exceeds the number of measured
    /// characteristics.
    TooManyKeyCharacteristics {
        /// Requested number of key characteristics.
        requested: usize,
        /// Number of characteristics the suite measures.
        available: usize,
    },
    /// `suites` is `Some` but lists no suites.
    EmptySuiteFilter,
    /// `max_inst_per_bench` is `Some(0)`: a zero-instruction watchdog
    /// budget would quarantine every benchmark.
    ZeroBenchBudget,
    /// `shard_total` is zero — a study must have at least one shard.
    ZeroShards,
    /// `kmeans_batch` is `Some(0)`: a mini-batch of zero points would
    /// never move a centroid.
    ZeroKmeansBatch,
    /// A shard index at or beyond `shard_total`.
    ShardIndex {
        /// The out-of-range worker index.
        index: u32,
        /// The configured shard count.
        total: u32,
    },
    /// Streaming analysis (or a shard/reduce run) was requested without
    /// a checkpoint store to stream from.
    StreamingNeedsStore,
    /// The genetic-algorithm sub-configuration is invalid.
    Ga(GaConfigError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroIntervalLength => write!(f, "interval length must be positive"),
            ConfigError::ZeroSamples => write!(f, "need at least one sample per benchmark"),
            ConfigError::ZeroClusters => write!(f, "need at least one cluster"),
            ConfigError::ProminentExceedsClusters { n_prominent, k } => write!(
                f,
                "cannot keep more prominent phases ({n_prominent}) than clusters ({k})"
            ),
            ConfigError::ZeroKeyCharacteristics => {
                write!(f, "need at least one key characteristic")
            }
            ConfigError::TooManyKeyCharacteristics {
                requested,
                available,
            } => write!(
                f,
                "cannot select {requested} key characteristics from {available} measured ones"
            ),
            ConfigError::EmptySuiteFilter => write!(f, "empty suite filter"),
            ConfigError::ZeroBenchBudget => {
                write!(f, "per-benchmark instruction budget must be positive")
            }
            ConfigError::ZeroShards => write!(f, "shard count must be positive"),
            ConfigError::ZeroKmeansBatch => {
                write!(f, "k-means mini-batch size must be positive")
            }
            ConfigError::ShardIndex { index, total } => {
                write!(f, "shard index {index} out of range for {total} shard(s)")
            }
            ConfigError::StreamingNeedsStore => {
                write!(f, "streaming analysis requires a checkpoint store")
            }
            ConfigError::Ga(e) => write!(f, "invalid GA configuration: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Ga(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GaConfigError> for ConfigError {
    fn from(e: GaConfigError) -> Self {
        ConfigError::Ga(e)
    }
}

/// Why a benchmark was removed from a study.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineCause {
    /// One of the benchmark's inputs faulted in the VM.
    Fault(VmError),
    /// The benchmark blew through its per-benchmark instruction budget
    /// (`max_inst_per_bench`) without halting — the watchdog treats it
    /// as runaway.
    Runaway {
        /// The exceeded budget, in instructions.
        budget: u64,
    },
    /// One of the benchmark's inputs failed the static pre-flight
    /// verification ([`Program::verify`](phaselab_vm::Program::verify))
    /// and was never run.
    StaticallyInvalid(VerifyError),
}

impl fmt::Display for QuarantineCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineCause::Fault(e) => write!(f, "faulted: {e}"),
            QuarantineCause::Runaway { budget } => {
                write!(f, "ran away: exceeded the {budget}-instruction budget")
            }
            QuarantineCause::StaticallyInvalid(e) => write!(f, "statically invalid: {e}"),
        }
    }
}

/// A benchmark excluded from a study because one of its inputs faulted
/// in the VM or exceeded the runaway watchdog's instruction budget.
///
/// Quarantine is all-or-nothing per benchmark: a fault in any input
/// removes the whole benchmark from the data set, so the equal-weight
/// sampling never sees a partially characterized benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedBenchmark {
    /// The benchmark's name.
    pub name: String,
    /// The suite it belongs to.
    pub suite: Suite,
    /// Index of the offending input.
    pub input: usize,
    /// Name of the offending input.
    pub input_name: String,
    /// Why the benchmark was quarantined.
    pub cause: QuarantineCause,
}

impl QuarantinedBenchmark {
    /// The VM fault, when the cause was a fault.
    pub fn vm_error(&self) -> Option<&VmError> {
        match &self.cause {
            QuarantineCause::Fault(e) => Some(e),
            _ => None,
        }
    }

    /// Whether the benchmark was quarantined by the runaway watchdog.
    pub fn is_runaway(&self) -> bool {
        matches!(self.cause, QuarantineCause::Runaway { .. })
    }

    /// The static-verification failure, when the cause was the
    /// pre-flight verifier.
    pub fn verify_error(&self) -> Option<&VerifyError> {
        match &self.cause {
            QuarantineCause::StaticallyInvalid(e) => Some(e),
            _ => None,
        }
    }
}

impl fmt::Display for QuarantinedBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] input `{}` {}",
            self.name,
            self.suite.short_name(),
            self.input_name,
            self.cause
        )
    }
}

impl Error for QuarantinedBenchmark {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.cause {
            QuarantineCause::Fault(e) => Some(e),
            QuarantineCause::Runaway { .. } => None,
            QuarantineCause::StaticallyInvalid(e) => Some(e),
        }
    }
}

/// The surviving data set is too degenerate to analyze.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// The study was asked to run over an empty benchmark list.
    NoBenchmarksSelected,
    /// Sampling produced no intervals (every surviving benchmark
    /// characterized to nothing).
    NoIntervalsSampled,
    /// A streamed pass over the checkpoint store recomputed a benchmark
    /// whose outcome no longer matches what the study's earlier stages
    /// saw (e.g. the store was tampered with mid-run). Re-running the
    /// study from a clean store is the only safe recovery.
    InconsistentCheckpoint {
        /// The benchmark whose streamed outcome diverged.
        bench: String,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoBenchmarksSelected => {
                write!(f, "no benchmarks selected for the study")
            }
            AnalysisError::NoIntervalsSampled => write!(f, "no intervals were sampled"),
            AnalysisError::InconsistentCheckpoint { bench } => write!(
                f,
                "checkpoint store became inconsistent mid-study (benchmark `{bench}`)"
            ),
        }
    }
}

impl Error for AnalysisError {}

/// A study that could not produce a result.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The configuration is invalid (see [`ConfigError`]).
    Config(ConfigError),
    /// Every selected benchmark faulted during characterization; the
    /// quarantine list holds one record per benchmark.
    Characterization {
        /// The fault of every selected benchmark, in selection order.
        quarantined: Vec<QuarantinedBenchmark>,
    },
    /// The surviving data set could not be analyzed.
    Analysis(AnalysisError),
    /// The study was cancelled (Ctrl-C or a tripped
    /// [`CancelToken`](phaselab_par::CancelToken)) before it could
    /// finish. Checkpointed progress, if a store was attached, survives
    /// for a later resume.
    Cancelled,
    /// A shard worker could not acquire (or lost) its store lease —
    /// another live worker holds the same shard slot.
    ShardLease {
        /// The contended shard index.
        shard: u32,
        /// One-line description of the lease failure.
        detail: String,
    },
    /// A supervised shard kept failing after every restart and could
    /// not be salvaged in-process: the study has no complete data for
    /// it, so no report is produced.
    UnrecoverableShard {
        /// The shard that never completed.
        shard: u32,
        /// How many worker attempts (initial + restarts) were made.
        attempts: u32,
        /// One-line description of the last failure observed.
        last: String,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Config(e) => write!(f, "invalid study configuration: {e}"),
            StudyError::Characterization { quarantined } => {
                write!(
                    f,
                    "all {} selected benchmarks were quarantined (first: {})",
                    quarantined.len(),
                    quarantined
                        .first()
                        .map_or_else(|| "none".into(), std::string::ToString::to_string)
                )
            }
            StudyError::Analysis(e) => write!(f, "analysis failed: {e}"),
            StudyError::Cancelled => write!(f, "study cancelled before completion"),
            StudyError::ShardLease { shard, detail } => {
                write!(f, "shard {shard} lease unavailable: {detail}")
            }
            StudyError::UnrecoverableShard {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard} unrecoverable after {attempts} attempt(s) (last failure: {last})"
            ),
        }
    }
}

impl Error for StudyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StudyError::Config(e) => Some(e),
            StudyError::Characterization { quarantined } => {
                quarantined.first().map(|q| q as &(dyn Error + 'static))
            }
            StudyError::Analysis(e) => Some(e),
            StudyError::Cancelled
            | StudyError::ShardLease { .. }
            | StudyError::UnrecoverableShard { .. } => None,
        }
    }
}

impl From<ConfigError> for StudyError {
    fn from(e: ConfigError) -> Self {
        StudyError::Config(e)
    }
}

impl From<AnalysisError> for StudyError {
    fn from(e: AnalysisError) -> Self {
        StudyError::Analysis(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_one_line() {
        let q = QuarantinedBenchmark {
            name: "gcc".into(),
            suite: Suite::SpecInt2000,
            input: 1,
            input_name: "200".into(),
            cause: QuarantineCause::Fault(VmError::PcOutOfRange { pc: 99 }),
        };
        let runaway = QuarantinedBenchmark {
            name: "perl".into(),
            suite: Suite::SpecInt2006,
            input: 0,
            input_name: "ref".into(),
            cause: QuarantineCause::Runaway { budget: 1_000_000 },
        };
        for msg in [
            ConfigError::ZeroClusters.to_string(),
            ConfigError::ProminentExceedsClusters {
                n_prominent: 5,
                k: 3,
            }
            .to_string(),
            q.to_string(),
            runaway.to_string(),
            StudyError::Characterization {
                quarantined: vec![q.clone()],
            }
            .to_string(),
            StudyError::Analysis(AnalysisError::NoIntervalsSampled).to_string(),
            StudyError::Cancelled.to_string(),
            ConfigError::ZeroShards.to_string(),
            ConfigError::ZeroKmeansBatch.to_string(),
            ConfigError::ShardIndex { index: 3, total: 2 }.to_string(),
            ConfigError::StreamingNeedsStore.to_string(),
            AnalysisError::InconsistentCheckpoint {
                bench: "gcc".into(),
            }
            .to_string(),
            StudyError::ShardLease {
                shard: 2,
                detail: "held by pid 4242".into(),
            }
            .to_string(),
            StudyError::UnrecoverableShard {
                shard: 3,
                attempts: 6,
                last: "exit status: 9".into(),
            }
            .to_string(),
        ] {
            assert!(!msg.is_empty());
            assert!(!msg.contains('\n'), "multi-line: {msg}");
        }
        assert!(runaway.to_string().contains("1000000-instruction budget"));
    }

    #[test]
    fn error_sources_chain_to_the_vm_fault() {
        let q = QuarantinedBenchmark {
            name: "mcf".into(),
            suite: Suite::SpecInt2006,
            input: 0,
            input_name: "ref".into(),
            cause: QuarantineCause::Fault(VmError::CallStackOverflow),
        };
        assert_eq!(q.vm_error(), Some(&VmError::CallStackOverflow));
        assert!(!q.is_runaway());
        let e = StudyError::Characterization {
            quarantined: vec![q],
        };
        let source = e.source().expect("has source");
        let vm = source.source().expect("chains to VmError");
        assert_eq!(vm.to_string(), VmError::CallStackOverflow.to_string());
    }

    #[test]
    fn runaway_quarantine_has_no_vm_source() {
        let q = QuarantinedBenchmark {
            name: "spin".into(),
            suite: Suite::Bmw,
            input: 0,
            input_name: "default".into(),
            cause: QuarantineCause::Runaway { budget: 42 },
        };
        assert!(q.is_runaway());
        assert_eq!(q.vm_error(), None);
        assert!(q.source().is_none());
        assert!(StudyError::Cancelled.source().is_none());
    }

    #[test]
    fn statically_invalid_quarantine_chains_to_the_verify_error() {
        let verr = VerifyError::InvalidTarget {
            pc: 4,
            instr: "j @99".into(),
            target: 99,
            code_len: 10,
        };
        let q = QuarantinedBenchmark {
            name: "bad".into(),
            suite: Suite::Bmw,
            input: 0,
            input_name: "default".into(),
            cause: QuarantineCause::StaticallyInvalid(verr.clone()),
        };
        assert_eq!(q.verify_error(), Some(&verr));
        assert_eq!(q.vm_error(), None);
        assert!(!q.is_runaway());
        let msg = q.to_string();
        assert!(msg.contains("statically invalid: pc 4"), "{msg}");
        assert!(!msg.contains('\n'), "multi-line: {msg}");
        let source = q.source().expect("has source");
        assert_eq!(source.to_string(), verr.to_string());
    }

    #[test]
    fn conversions_wrap_variants() {
        let e: StudyError = ConfigError::ZeroSamples.into();
        assert!(matches!(e, StudyError::Config(ConfigError::ZeroSamples)));
        let e: StudyError = AnalysisError::NoBenchmarksSelected.into();
        assert!(matches!(e, StudyError::Analysis(_)));
        let e: ConfigError = GaConfigError::NoPopulations.into();
        assert!(matches!(e, ConfigError::Ga(GaConfigError::NoPopulations)));
    }
}
