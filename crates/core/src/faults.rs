//! Deterministic fault injection for the checkpoint store's filesystem
//! I/O.
//!
//! Every recovery path in [`checkpoint`](crate::checkpoint) — torn
//! frames, short reads, transient `EINTR`s, full disks, failed renames —
//! exists because real filesystems misbehave. This module makes those
//! misbehaviors *injectable on purpose*: a seeded [`FaultPlan`] names
//! per-operation probabilities for each fault kind, and once armed
//! (programmatically via [`arm`], or from the `PHASELAB_FAULTS`
//! environment variable) the store's reads, writes, and renames are
//! routed through the injector. Chaos tests then exercise exactly the
//! code paths that mangle-scripts only hit by luck.
//!
//! # Determinism
//!
//! Fault decisions hash (seed, per-process draw sequence number, fault
//! lane, path) through FNV-1a — no wall clock, no OS entropy. Two runs
//! of the same single-threaded test with the same plan inject the same
//! faults at the same operations. Multi-process chaos runs are
//! *seeded* rather than replayable (each process draws its own
//! sequence), which is what a chaos harness needs: varied but
//! reproducible-in-distribution havoc.
//!
//! # Cost when disabled
//!
//! Disarmed (the default), each wrapped operation pays one relaxed
//! atomic load before falling through to the plain `std::fs` call.
//!
//! # Spec syntax
//!
//! `PHASELAB_FAULTS="seed=42,torn=0.1,eintr=0.05,shortread=0.05,enospc=0.02,rename=0.02,stall=0.1,stall_ms=50,crash=0.01,max=100"`
//!
//! Every key is optional; unspecified probabilities are `0`. `max`
//! bounds the total number of injected faults (0 = unlimited), which
//! lets a test arm `eintr=1.0,max=2` and assert that bounded retries
//! outlast a bounded burst.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The kinds of filesystem misbehavior the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The process aborts mid-write, as if `kill -9`'d at the worst
    /// moment: a prefix of the bytes is on disk under the temporary
    /// name when the process dies.
    Crash,
    /// The write reports success but only a prefix of the bytes landed.
    TornWrite,
    /// The write fails with `ENOSPC` (storage full).
    Enospc,
    /// The write completes, but only after a configured stall.
    StalledWrite,
    /// The rename into place fails.
    FailedRename,
    /// The read fails with `EINTR` (interrupted system call) — the
    /// classic transient error a caller should retry.
    Eintr,
    /// The read returns fewer bytes than the file holds.
    ShortRead,
}

impl FaultKind {
    /// Distinct per-kind lane code folded into the decision hash, so
    /// each kind draws independently at a given operation.
    fn lane(self) -> u64 {
        match self {
            FaultKind::Crash => 1,
            FaultKind::TornWrite => 2,
            FaultKind::Enospc => 3,
            FaultKind::StalledWrite => 4,
            FaultKind::FailedRename => 5,
            FaultKind::Eintr => 6,
            FaultKind::ShortRead => 7,
        }
    }

    /// Stable label used in counter names and events.
    fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::TornWrite => "torn",
            FaultKind::Enospc => "enospc",
            FaultKind::StalledWrite => "stall",
            FaultKind::FailedRename => "rename",
            FaultKind::Eintr => "eintr",
            FaultKind::ShortRead => "shortread",
        }
    }
}

/// A seeded set of per-operation fault probabilities.
///
/// Probabilities are independent per kind and per operation; `0.0`
/// disables a kind, `1.0` triggers it at every opportunity (subject to
/// [`max_injections`](FaultPlan::max_injections)).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed folded into every fault decision.
    pub seed: u64,
    /// Probability a write lands only a prefix of its bytes yet
    /// reports success.
    pub torn: f64,
    /// Probability a write fails with `ENOSPC`.
    pub enospc: f64,
    /// Probability a rename fails.
    pub rename: f64,
    /// Probability a read fails with `EINTR`.
    pub eintr: f64,
    /// Probability a read returns fewer bytes than the file holds.
    pub short_read: f64,
    /// Probability a write stalls for [`stall_ms`](FaultPlan::stall_ms)
    /// before completing.
    pub stall: f64,
    /// How long a stalled write sleeps, in milliseconds.
    pub stall_ms: u64,
    /// Probability the process aborts mid-write (simulated `kill -9`).
    pub crash: f64,
    /// Upper bound on total injected faults; `0` means unlimited.
    pub max_injections: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            torn: 0.0,
            enospc: 0.0,
            rename: 0.0,
            eintr: 0.0,
            short_read: 0.0,
            stall: 0.0,
            stall_ms: 10,
            crash: 0.0,
            max_injections: 0,
        }
    }
}

impl FaultPlan {
    /// Parses a `key=value,key=value` spec (the `PHASELAB_FAULTS`
    /// syntax documented in the [module docs](self)).
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first unknown key,
    /// unparsable value, or out-of-range probability.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec entry `{part}` is not key=value"))?;
            let prob = |v: &str| -> Result<f64, String> {
                let p: f64 = v
                    .parse()
                    .map_err(|_| format!("fault probability `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("fault probability `{v}` is outside [0, 1]"));
                }
                Ok(p)
            };
            let int = |v: &str| -> Result<u64, String> {
                v.parse()
                    .map_err(|_| format!("fault spec value `{v}` is not an integer"))
            };
            match key.trim() {
                "seed" => plan.seed = int(value)?,
                "torn" => plan.torn = prob(value)?,
                "enospc" => plan.enospc = prob(value)?,
                "rename" => plan.rename = prob(value)?,
                "eintr" => plan.eintr = prob(value)?,
                "shortread" => plan.short_read = prob(value)?,
                "stall" => plan.stall = prob(value)?,
                "stall_ms" => plan.stall_ms = int(value)?,
                "crash" => plan.crash = prob(value)?,
                "max" => plan.max_injections = int(value)?,
                other => return Err(format!("unknown fault spec key `{other}`")),
            }
        }
        Ok(plan)
    }

    /// True when every probability is zero — arming such a plan is a
    /// no-op.
    pub fn is_noop(&self) -> bool {
        self.torn == 0.0
            && self.enospc == 0.0
            && self.rename == 0.0
            && self.eintr == 0.0
            && self.short_read == 0.0
            && self.stall == 0.0
            && self.crash == 0.0
    }
}

/// A seeded fault injector: a [`FaultPlan`] plus the per-process draw
/// sequence that makes its decisions deterministic.
///
/// Most callers arm the process-wide injector via [`arm`] /
/// [`arm_from_env`]; tests that want isolation can hold their own
/// `Injector` and call its methods directly.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    draws: AtomicU64,
    injected: AtomicU64,
}

impl Injector {
    /// Creates an injector for the given plan with a fresh draw
    /// sequence.
    pub fn new(plan: FaultPlan) -> Self {
        Injector {
            plan,
            draws: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// Total faults this injector has injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Draws the decision value for one (operation, lane) pair.
    fn draw(&self, seq: u64, kind: FaultKind, path: &Path) -> f64 {
        let mut h = FNV_OFFSET;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
            }
        };
        fold(&self.plan.seed.to_le_bytes());
        fold(&seq.to_le_bytes());
        fold(&kind.lane().to_le_bytes());
        fold(path.to_string_lossy().as_bytes());
        // 53 high-quality bits -> uniform [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides whether `kind` fires for this operation, respecting the
    /// injection budget and recording the hit.
    fn fires(&self, seq: u64, kind: FaultKind, p: f64, path: &Path) -> bool {
        if p <= 0.0 || self.draw(seq, kind, path) >= p {
            return false;
        }
        let max = self.plan.max_injections;
        if max > 0 {
            // Claim a budget slot; back out if the burst is spent.
            let prev = self.injected.fetch_add(1, Ordering::Relaxed);
            if prev >= max {
                self.injected.fetch_sub(1, Ordering::Relaxed);
                return false;
            }
        } else {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        phaselab_obs::counter_add("faults.injected", phaselab_obs::Class::Timing, 1);
        phaselab_obs::counter_add(
            &format!("faults.injected.{}", kind.label()),
            phaselab_obs::Class::Timing,
            1,
        );
        phaselab_obs::event("faults", kind.label());
        true
    }

    /// `std::fs::write` with write-lane faults applied.
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors and injects `ENOSPC` per the plan.
    pub fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let seq = self.draws.fetch_add(1, Ordering::Relaxed);
        if self.fires(seq, FaultKind::Crash, self.plan.crash, path) {
            // Land a prefix under the target name, then die like a
            // `kill -9` would: no unwinding, no destructors, no flush.
            let cut = self.torn_len(seq, bytes.len());
            let _ = std::fs::write(path, &bytes[..cut]);
            eprintln!(
                "[phaselab] fault injection: crashing mid-write of {}",
                path.display()
            );
            std::process::abort();
        }
        if self.fires(seq, FaultKind::Enospc, self.plan.enospc, path) {
            return Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected ENOSPC",
            ));
        }
        if self.fires(seq, FaultKind::TornWrite, self.plan.torn, path) {
            // The lie torn writes tell: a prefix lands, success is
            // reported anyway.
            let cut = self.torn_len(seq, bytes.len());
            return std::fs::write(path, &bytes[..cut]);
        }
        if self.fires(seq, FaultKind::StalledWrite, self.plan.stall, path) {
            std::thread::sleep(std::time::Duration::from_millis(self.plan.stall_ms));
        }
        std::fs::write(path, bytes)
    }

    /// `std::fs::rename` with rename-lane faults applied.
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors and injects failures per the plan.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let seq = self.draws.fetch_add(1, Ordering::Relaxed);
        if self.fires(seq, FaultKind::FailedRename, self.plan.rename, to) {
            return Err(io::Error::other("injected rename failure"));
        }
        std::fs::rename(from, to)
    }

    /// `std::fs::read` with read-lane faults applied.
    ///
    /// # Errors
    ///
    /// Propagates real I/O errors and injects `EINTR` per the plan.
    pub fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let seq = self.draws.fetch_add(1, Ordering::Relaxed);
        if self.fires(seq, FaultKind::Eintr, self.plan.eintr, path) {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "injected EINTR"));
        }
        let mut bytes = std::fs::read(path)?;
        if self.fires(seq, FaultKind::ShortRead, self.plan.short_read, path) {
            let cut = self.torn_len(seq, bytes.len());
            bytes.truncate(cut);
        }
        Ok(bytes)
    }

    /// A deterministic strict-prefix length for torn writes and short
    /// reads.
    fn torn_len(&self, seq: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let mut h = FNV_OFFSET ^ self.plan.seed ^ seq.rotate_left(17);
        h = h.wrapping_mul(FNV_PRIME);
        (h as usize) % len
    }
}

// ---------------------------------------------------------------------
// Process-wide arming.

static ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<Injector>>> = Mutex::new(None);

/// Arms the process-wide injector with `plan`, replacing any previous
/// one. A no-op plan (all probabilities zero) disarms instead.
pub fn arm(plan: FaultPlan) {
    if plan.is_noop() {
        disarm();
        return;
    }
    let mut global = GLOBAL.lock().expect("faults lock");
    *global = Some(Arc::new(Injector::new(plan)));
    ARMED.store(true, Ordering::Release);
}

/// Disarms the process-wide injector; wrapped I/O reverts to plain
/// `std::fs` calls.
pub fn disarm() {
    let mut global = GLOBAL.lock().expect("faults lock");
    ARMED.store(false, Ordering::Release);
    *global = None;
}

/// True when a process-wide injector is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The currently armed process-wide injector, if any.
pub fn current() -> Option<Arc<Injector>> {
    if !ARMED.load(Ordering::Acquire) {
        return None;
    }
    GLOBAL.lock().expect("faults lock").clone()
}

/// Arms from the `PHASELAB_FAULTS` environment variable, once per
/// process. An unparsable spec warns and leaves injection disarmed —
/// a chaos knob must never break a production run.
///
/// Called from [`CheckpointStore::open`](crate::CheckpointStore::open),
/// so any process that touches a store (including spawned shard
/// workers) arms automatically.
pub fn arm_from_env() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(spec) = std::env::var("PHASELAB_FAULTS") {
            match FaultPlan::parse(&spec) {
                Ok(plan) => arm(plan),
                Err(e) => {
                    eprintln!("[phaselab] warning: ignoring PHASELAB_FAULTS: {e}");
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Wrapped filesystem operations (the checkpoint store's I/O surface).

/// `std::fs::write` routed through the armed injector, if any.
///
/// # Errors
///
/// Whatever the underlying write (or the injected fault) produces.
pub fn fs_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    match current() {
        Some(inj) => inj.write(path, bytes),
        None => std::fs::write(path, bytes),
    }
}

/// `std::fs::rename` routed through the armed injector, if any.
///
/// # Errors
///
/// Whatever the underlying rename (or the injected fault) produces.
pub fn fs_rename(from: &Path, to: &Path) -> io::Result<()> {
    match current() {
        Some(inj) => inj.rename(from, to),
        None => std::fs::rename(from, to),
    }
}

/// `std::fs::read` routed through the armed injector, if any.
///
/// # Errors
///
/// Whatever the underlying read (or the injected fault) produces.
pub fn fs_read(path: &Path) -> io::Result<Vec<u8>> {
    match current() {
        Some(inj) => inj.read(path),
        None => std::fs::read(path),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "seed=42, torn=0.1, eintr=0.05, shortread=0.5, enospc=0.02, \
             rename=0.03, stall=0.25, stall_ms=7, crash=0.01, max=9",
        )
        .expect("parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.torn, 0.1);
        assert_eq!(plan.eintr, 0.05);
        assert_eq!(plan.short_read, 0.5);
        assert_eq!(plan.enospc, 0.02);
        assert_eq!(plan.rename, 0.03);
        assert_eq!(plan.stall, 0.25);
        assert_eq!(plan.stall_ms, 7);
        assert_eq!(plan.crash, 0.01);
        assert_eq!(plan.max_injections, 9);
        assert!(!plan.is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("torn").is_err());
        assert!(FaultPlan::parse("torn=maybe").is_err());
        assert!(FaultPlan::parse("torn=1.5").is_err());
        assert!(FaultPlan::parse("torn=-0.1").is_err());
        assert!(FaultPlan::parse("warp=0.5").is_err());
        assert!(FaultPlan::parse("seed=abc").is_err());
    }

    #[test]
    fn empty_spec_is_noop() {
        let plan = FaultPlan::parse("").expect("parses");
        assert!(plan.is_noop());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let plan = FaultPlan {
            eintr: 0.5,
            ..FaultPlan::default()
        };
        let path = PathBuf::from("/tmp/phaselab-faults-probe");
        let a = Injector::new(plan.clone());
        let b = Injector::new(plan.clone());
        let mut decisions_a = Vec::new();
        let mut decisions_b = Vec::new();
        for seq in 0..64 {
            decisions_a.push(a.draw(seq, FaultKind::Eintr, &path) < plan.eintr);
            decisions_b.push(b.draw(seq, FaultKind::Eintr, &path) < plan.eintr);
        }
        assert_eq!(decisions_a, decisions_b);
        assert!(decisions_a.iter().any(|&d| d));
        assert!(decisions_a.iter().any(|&d| !d));
        let other_seed = Injector::new(FaultPlan {
            seed: 99,
            ..plan.clone()
        });
        let decisions_c: Vec<bool> = (0..64)
            .map(|seq| other_seed.draw(seq, FaultKind::Eintr, &path) < plan.eintr)
            .collect();
        assert_ne!(decisions_a, decisions_c);
    }

    #[test]
    fn injection_budget_is_respected() {
        let plan = FaultPlan {
            eintr: 1.0,
            max_injections: 2,
            ..FaultPlan::default()
        };
        let inj = Injector::new(plan);
        let dir =
            std::env::temp_dir().join(format!("phaselab-faults-budget-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let file = dir.join("probe.bin");
        std::fs::write(&file, b"payload").expect("seed file");
        let mut errors = 0;
        for _ in 0..8 {
            if inj.read(&file).is_err() {
                errors += 1;
            }
        }
        assert_eq!(errors, 2, "exactly max_injections faults fire");
        assert_eq!(inj.injected(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_len_is_always_a_strict_prefix() {
        let inj = Injector::new(FaultPlan::default());
        for len in 1..200 {
            for seq in 0..16 {
                let cut = inj.torn_len(seq, len);
                assert!(cut < len, "cut {cut} not a strict prefix of {len}");
            }
        }
        assert_eq!(inj.torn_len(3, 0), 0);
    }
}
