//! Advisory per-shard leases over a shared checkpoint store.
//!
//! Concurrent shard workers (and the future `phaselab serve`) share one
//! store directory. Atomic renames already make *individual* checkpoint
//! writes safe; leases add the missing coarse coordination: at most one
//! live worker per shard slot, detection of dead workers, and an
//! ordered hand-off when a slot changes hands.
//!
//! # Protocol
//!
//! Each shard slot owns one lease file, `leases/shard-<i>.lease` under
//! the store root, holding the owner's pid, a random ownership token, a
//! monotonic **fencing counter**, and the last heartbeat timestamp. A
//! worker acquires the slot by writing its own record (guarded by an
//! `O_EXCL` mutation lock and confirmed by read-back), then heartbeats
//! the file every quarter-TTL. A lease whose heartbeat is older than
//! the TTL is **stale**: a new acquirer takes the slot over, bumping
//! the fencing counter so successive owners are totally ordered.
//!
//! # Safety model
//!
//! These are *advisory* leases built from portable filesystem
//! primitives, so mutual exclusion is convergent rather than absolute:
//! in a pathological interleaving two workers can briefly both believe
//! they own a slot, but each heartbeat re-validates ownership by token,
//! so the loser notices within one heartbeat period, trips its cancel
//! token, and stops. Correctness never rests on the lease alone —
//! checkpoint writes are idempotent, content-fingerprinted, and
//! individually atomic, so even an overlapping loser can only write
//! bytes the winner would have written.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use phaselab_par::CancelToken;

/// Default lease time-to-live, overridable via `PHASELAB_LEASE_TTL_MS`.
const DEFAULT_TTL_MS: u64 = 30_000;

/// The lease TTL for this process: `PHASELAB_LEASE_TTL_MS` if set and
/// positive, else 30 seconds. A heartbeat older than this marks the
/// lease stale and eligible for takeover.
pub fn default_ttl() -> Duration {
    let ms = std::env::var("PHASELAB_LEASE_TTL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(DEFAULT_TTL_MS);
    Duration::from_millis(ms)
}

/// Milliseconds since the UNIX epoch — the clock lease records carry.
/// Workers sharing a store share a machine, so one wall clock orders
/// their heartbeats.
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Why a shard lease could not be acquired.
#[derive(Debug)]
pub enum LeaseError {
    /// The lease directory or file could not be created or read.
    Io(io::Error),
    /// Another live worker holds the slot and kept heartbeating for
    /// the whole wait window.
    Held {
        /// The contended shard index.
        shard: u32,
        /// Pid recorded by the current holder.
        holder_pid: u32,
        /// The holder's fencing counter.
        fence: u64,
    },
    /// The caller's cancel token tripped while waiting.
    Cancelled,
}

impl fmt::Display for LeaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeaseError::Io(e) => write!(f, "lease I/O error: {e}"),
            LeaseError::Held {
                shard,
                holder_pid,
                fence,
            } => write!(
                f,
                "shard {shard} lease held by live pid {holder_pid} (fence {fence})"
            ),
            LeaseError::Cancelled => write!(f, "lease wait cancelled"),
        }
    }
}

impl std::error::Error for LeaseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LeaseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LeaseError {
    fn from(e: io::Error) -> Self {
        LeaseError::Io(e)
    }
}

/// One decoded lease record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Pid of the recorded owner.
    pub pid: u32,
    /// The owner's random ownership token.
    pub token: u64,
    /// Monotonic fencing counter, bumped on every takeover.
    pub fence: u64,
    /// Owner's last heartbeat, in milliseconds since the UNIX epoch.
    pub heartbeat_ms: u64,
}

impl LeaseInfo {
    fn encode(&self) -> String {
        format!(
            "phaselab-lease v1\npid={}\ntoken={:016x}\nfence={}\nheartbeat_ms={}\n",
            self.pid, self.token, self.fence, self.heartbeat_ms
        )
    }

    /// Decodes a lease record; a malformed record returns `None` and is
    /// treated like a stale lease (safe to take over).
    fn decode(text: &str) -> Option<LeaseInfo> {
        let mut lines = text.lines();
        if lines.next()? != "phaselab-lease v1" {
            return None;
        }
        let mut pid = None;
        let mut token = None;
        let mut fence = None;
        let mut heartbeat_ms = None;
        for line in lines {
            let (key, value) = line.split_once('=')?;
            match key {
                "pid" => pid = value.parse().ok(),
                "token" => token = u64::from_str_radix(value, 16).ok(),
                "fence" => fence = value.parse().ok(),
                "heartbeat_ms" => heartbeat_ms = value.parse().ok(),
                _ => return None,
            }
        }
        Some(LeaseInfo {
            pid: pid?,
            token: token?,
            fence: fence?,
            heartbeat_ms: heartbeat_ms?,
        })
    }

    /// Whether this record's heartbeat is older than `ttl`.
    pub fn is_stale(&self, ttl: Duration) -> bool {
        now_ms().saturating_sub(self.heartbeat_ms) > ttl.as_millis() as u64
    }
}

/// Path of the lease file for one shard slot under a store root.
pub fn lease_path(store_dir: &Path, shard: u32) -> PathBuf {
    store_dir
        .join("leases")
        .join(format!("shard-{shard}.lease"))
}

/// Reads and decodes a shard's lease record, if one exists and parses.
pub fn read_lease(store_dir: &Path, shard: u32) -> Option<LeaseInfo> {
    let text = fs::read_to_string(lease_path(store_dir, shard)).ok()?;
    LeaseInfo::decode(&text)
}

/// Mints an ownership token from process identity and the wall clock —
/// unique enough to distinguish two workers racing on one slot.
fn mint_token(shard: u32) -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for v in [u64::from(std::process::id()), nanos, u64::from(shard)] {
        for b in v.to_le_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Atomically replaces the lease file with `info` (unique temporary
/// sibling + rename, so readers never see a torn record).
fn write_lease(path: &Path, info: &LeaseInfo) -> io::Result<()> {
    let tmp = path.with_extension(format!("tmp-{}-{:08x}", info.pid, info.token & 0xFFFF_FFFF));
    fs::write(&tmp, info.encode())?;
    fs::rename(&tmp, path)
}

/// Runs `mutate` while holding the slot's `O_EXCL` mutation lock, so
/// two acquirers cannot interleave their read-decide-write sequences.
/// A lock file older than `ttl` is presumed abandoned by a crashed
/// acquirer and broken.
///
/// Public because the result cache reuses the same lock protocol for
/// its multi-process eviction passes: `path` names the protected
/// resource (the lock file is `path` with a `.lock` extension), and
/// any cooperating process taking the same `path` is excluded.
///
/// # Errors
///
/// `WouldBlock` when the lock stayed busy past `ttl`; otherwise
/// whatever the lock-file creation produced.
pub fn with_mutation_lock<T>(
    path: &Path,
    ttl: Duration,
    mutate: impl FnOnce() -> T,
) -> io::Result<T> {
    let lock = path.with_extension("lock");
    let deadline = Instant::now() + ttl;
    loop {
        match fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                let out = mutate();
                let _ = fs::remove_file(&lock);
                return Ok(out);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let abandoned = fs::metadata(&lock)
                    .and_then(|m| m.modified())
                    .map_or(true, |t| t.elapsed().is_ok_and(|a| a > ttl));
                if abandoned {
                    let _ = fs::remove_file(&lock);
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::WouldBlock,
                        "lease mutation lock busy",
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(e),
        }
    }
}

/// A held shard lease: heartbeats in the background until released
/// (or dropped), and trips its cancel token if displaced.
#[derive(Debug)]
pub struct ShardLease {
    path: PathBuf,
    shard: u32,
    token: u64,
    fence: u64,
    stop: Arc<AtomicBool>,
    displaced: Arc<AtomicBool>,
    heartbeat: Option<JoinHandle<()>>,
}

impl ShardLease {
    /// The shard slot this lease covers.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// This owner's fencing counter — strictly greater than every
    /// previous owner's.
    pub fn fence(&self) -> u64 {
        self.fence
    }

    /// True once another worker has taken the slot over; the cancel
    /// token passed at acquisition has been tripped.
    pub fn is_displaced(&self) -> bool {
        self.displaced.load(Ordering::Acquire)
    }

    /// Stops heartbeating and removes the lease file if still owned.
    /// Also runs on drop.
    pub fn release(mut self) {
        self.release_inner();
    }

    fn release_inner(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.heartbeat.take() {
            let _ = handle.join();
        }
        // Remove only if the record is still ours: a displaced lease
        // belongs to the new owner now.
        if let Ok(text) = fs::read_to_string(&self.path) {
            if LeaseInfo::decode(&text).is_some_and(|l| l.token == self.token) {
                let _ = fs::remove_file(&self.path);
            }
        }
    }
}

impl Drop for ShardLease {
    fn drop(&mut self) {
        self.release_inner();
    }
}

/// Whether the lease holder's process still exists. A `kill -9`'d
/// worker leaves a fresh-looking lease that would otherwise block its
/// replacement for a full TTL; on Linux the `/proc` entry settles the
/// question immediately. Where liveness cannot be checked this errs on
/// the side of "alive" and the TTL does the fencing.
fn holder_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    #[cfg(target_os = "linux")]
    {
        Path::new("/proc").join(pid.to_string()).exists()
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        true
    }
}

/// Acquires the lease for `shard` under `store_dir`, waiting up to
/// `wait` for a live holder to go away.
///
/// A stale (or absent, or malformed) lease is taken over immediately
/// with a bumped fencing counter; takeovers increment the Timing-class
/// `store.lease_takeovers` counter. While held, a background thread
/// heartbeats every quarter-TTL and — should another worker displace
/// this one — trips `cancel` so the worker stops writing.
///
/// # Errors
///
/// [`LeaseError::Held`] when a live holder outlasted `wait`,
/// [`LeaseError::Cancelled`] when `cancel` tripped while waiting, and
/// [`LeaseError::Io`] for filesystem failures.
pub fn acquire(
    store_dir: &Path,
    shard: u32,
    ttl: Duration,
    wait: Duration,
    cancel: Option<&CancelToken>,
) -> Result<ShardLease, LeaseError> {
    let path = lease_path(store_dir, shard);
    fs::create_dir_all(path.parent().expect("lease paths have a parent"))?;
    let token = mint_token(shard);
    let deadline = Instant::now() + wait;
    loop {
        if cancel.is_some_and(phaselab_par::CancelToken::is_cancelled) {
            return Err(LeaseError::Cancelled);
        }
        enum Claim {
            Won { fence: u64, takeover: bool },
            HeldBy(LeaseInfo),
        }
        let claim = with_mutation_lock(&path, ttl, || -> io::Result<Claim> {
            let existing = fs::read_to_string(&path)
                .ok()
                .and_then(|t| LeaseInfo::decode(&t));
            match existing {
                Some(l) if !l.is_stale(ttl) && holder_alive(l.pid) && l.token != token => {
                    Ok(Claim::HeldBy(l))
                }
                other => {
                    let takeover = other.is_some();
                    let fence = other.map_or(1, |l| l.fence + 1);
                    write_lease(
                        &path,
                        &LeaseInfo {
                            pid: std::process::id(),
                            token,
                            fence,
                            heartbeat_ms: now_ms(),
                        },
                    )?;
                    Ok(Claim::Won { fence, takeover })
                }
            }
        })??;
        match claim {
            Claim::Won { fence, takeover } => {
                // Confirm the claim survived any racing writer outside
                // the lock (belt and braces; the lock already orders
                // well-behaved acquirers).
                let confirmed = fs::read_to_string(&path)
                    .ok()
                    .and_then(|t| LeaseInfo::decode(&t))
                    .is_some_and(|l| l.token == token);
                if !confirmed {
                    continue;
                }
                if takeover {
                    phaselab_obs::counter_add(
                        "store.lease_takeovers",
                        phaselab_obs::Class::Timing,
                        1,
                    );
                    phaselab_obs::event("lease", &format!("takeover of shard {shard}"));
                }
                return Ok(start_heartbeat(path, shard, token, fence, ttl, cancel));
            }
            Claim::HeldBy(holder) => {
                if Instant::now() >= deadline {
                    return Err(LeaseError::Held {
                        shard,
                        holder_pid: holder.pid,
                        fence: holder.fence,
                    });
                }
                std::thread::sleep((ttl / 8).max(Duration::from_millis(5)));
            }
        }
    }
}

/// Spawns the heartbeat thread and assembles the lease guard.
fn start_heartbeat(
    path: PathBuf,
    shard: u32,
    token: u64,
    fence: u64,
    ttl: Duration,
    cancel: Option<&CancelToken>,
) -> ShardLease {
    let stop = Arc::new(AtomicBool::new(false));
    let displaced = Arc::new(AtomicBool::new(false));
    let beat_path = path.clone();
    let beat_stop = Arc::clone(&stop);
    let beat_displaced = Arc::clone(&displaced);
    let beat_cancel = cancel.cloned();
    let interval = (ttl / 4).max(Duration::from_millis(10));
    let heartbeat = std::thread::Builder::new()
        .name(format!("lease-heartbeat-{shard}"))
        .spawn(move || {
            let mut next_beat = Instant::now() + interval;
            while !beat_stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(interval.as_millis().min(25) as u64));
                if Instant::now() < next_beat {
                    continue;
                }
                next_beat = Instant::now() + interval;
                // Re-validate ownership before refreshing: a blind
                // rewrite could resurrect a lease another worker has
                // legitimately taken over.
                let current = fs::read_to_string(&beat_path)
                    .ok()
                    .and_then(|t| LeaseInfo::decode(&t));
                match current {
                    Some(l) if l.token == token => {
                        let refreshed = LeaseInfo {
                            heartbeat_ms: now_ms(),
                            ..l
                        };
                        let _ = write_lease(&beat_path, &refreshed);
                    }
                    _ => {
                        beat_displaced.store(true, Ordering::Release);
                        if let Some(t) = &beat_cancel {
                            t.cancel();
                        }
                        phaselab_obs::event("lease", &format!("shard {shard} lease displaced"));
                        return;
                    }
                }
            }
        })
        .expect("spawn lease heartbeat thread");
    ShardLease {
        path,
        shard,
        token,
        fence,
        stop,
        displaced,
        heartbeat: Some(heartbeat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("phaselab-lease-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn lease_record_roundtrips() {
        let info = LeaseInfo {
            pid: 4242,
            token: 0xDEAD_BEEF_0123_4567,
            fence: 7,
            heartbeat_ms: 1_700_000_000_000,
        };
        assert_eq!(LeaseInfo::decode(&info.encode()), Some(info));
        assert_eq!(LeaseInfo::decode("not a lease"), None);
        assert_eq!(LeaseInfo::decode("phaselab-lease v1\npid=1\n"), None);
    }

    #[test]
    fn acquire_release_cycle_leaves_no_file() {
        let dir = temp_dir("cycle");
        let ttl = Duration::from_millis(200);
        let lease = acquire(&dir, 0, ttl, Duration::from_millis(100), None).expect("acquire");
        assert_eq!(lease.fence(), 1);
        assert!(!lease.is_displaced());
        let recorded = read_lease(&dir, 0).expect("recorded");
        assert_eq!(recorded.pid, std::process::id());
        lease.release();
        assert!(read_lease(&dir, 0).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_lease_blocks_and_stale_lease_is_taken_over() {
        let dir = temp_dir("takeover");
        let ttl = Duration::from_millis(150);
        let first = acquire(&dir, 3, ttl, Duration::from_millis(50), None).expect("acquire");
        // A live, heartbeating holder: a second acquirer times out.
        let contender = acquire(&dir, 3, ttl, Duration::from_millis(30), None);
        assert!(matches!(contender, Err(LeaseError::Held { shard: 3, .. })));
        // Different slots never contend.
        let other = acquire(&dir, 4, ttl, Duration::from_millis(30), None).expect("other slot");
        other.release();
        drop(first);
        // Forge a stale record: takeover must bump the fence.
        write_lease(
            &lease_path(&dir, 3),
            &LeaseInfo {
                pid: 1,
                token: 99,
                fence: 5,
                heartbeat_ms: now_ms().saturating_sub(10_000),
            },
        )
        .expect("forge stale");
        let second = acquire(&dir, 3, ttl, Duration::from_millis(50), None).expect("takeover");
        assert_eq!(second.fence(), 6);
        second.release();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn displaced_owner_notices_and_trips_its_cancel_token() {
        let dir = temp_dir("displace");
        let ttl = Duration::from_millis(80);
        let token = CancelToken::new();
        let lease =
            acquire(&dir, 1, ttl, Duration::from_millis(50), Some(&token)).expect("acquire");
        // Simulate a fenced takeover by a new owner.
        write_lease(
            &lease_path(&dir, 1),
            &LeaseInfo {
                pid: 999_999,
                token: 0xABCD,
                fence: lease.fence() + 1,
                heartbeat_ms: now_ms(),
            },
        )
        .expect("usurp");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !lease.is_displaced() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(lease.is_displaced(), "heartbeat never noticed the usurper");
        assert!(
            token.is_cancelled(),
            "displacement must trip the cancel token"
        );
        drop(lease);
        // The usurper's record survives the displaced owner's drop.
        assert_eq!(read_lease(&dir, 1).expect("still present").pid, 999_999);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_wait_returns_cancelled() {
        let dir = temp_dir("cancelled");
        let token = CancelToken::new();
        token.cancel();
        let r = acquire(
            &dir,
            0,
            Duration::from_millis(100),
            Duration::from_millis(100),
            Some(&token),
        );
        assert!(matches!(r, Err(LeaseError::Cancelled)));
        let _ = fs::remove_dir_all(&dir);
    }
}
