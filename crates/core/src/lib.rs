//! `phaselab-core`: the phase-level workload characterization methodology
//! of Hoste & Eeckhout (ISPASS 2008), end to end.
//!
//! The pipeline ([`run_study`]) performs the paper's six steps:
//!
//! 1. **Characterize** every instruction interval of every benchmark with
//!    the 69 microarchitecture-independent characteristics
//!    (`phaselab-mica` over `phaselab-vm` executions of the
//!    `phaselab-workloads` suites).
//! 2. **Sample** a fixed number of intervals per benchmark across all of
//!    its inputs, so every benchmark gets equal weight.
//! 3. **PCA**: normalize, project, retain components with standard
//!    deviation above the threshold, and re-normalize (the rescaled PCA
//!    space).
//! 4. **Cluster** with k-means (restarts scored by BIC) and rank
//!    clusters by weight; the top clusters are the *prominent phases*.
//! 5. **Select key characteristics** with the genetic algorithm
//!    (`phaselab-ga`) so the prominent phases can be visualized.
//! 6. **Analyze**: per-suite workload-space [`coverage`], [`diversity`]
//!    curves and [`uniqueness`] fractions — the paper's Figures 4, 5
//!    and 6.
//!
//! # Error model
//!
//! [`run_study`] returns `Result<StudyResult, StudyError>`. Invalid
//! configurations fail fast with [`ConfigError`]; a *faulting workload*
//! does not fail the study — the benchmark is quarantined into
//! [`StudyResult::quarantined`] and the study completes on the
//! survivors. Only when every selected benchmark faults (or the
//! surviving data set is degenerate) does the study return an error.
//!
//! # Examples
//!
//! A smoke-scale study over two suites:
//!
//! ```no_run
//! use phaselab_core::{run_study, StudyConfig};
//! use phaselab_workloads::Suite;
//!
//! let mut cfg = StudyConfig::smoke();
//! cfg.suites = Some(vec![Suite::BioPerf, Suite::MediaBench2]);
//! let result = run_study(&cfg).expect("valid config, bundled workloads never fault");
//! println!("{} prominent phases", result.prominent.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
/// Size accounting, LRU eviction, and pinning over the checkpoint
/// store.
pub mod cache;
mod characterize;
mod checkpoint;
mod config;
mod error;
/// Deterministic fault injection for the checkpoint store's I/O.
pub mod faults;
/// Advisory per-shard leases over a shared checkpoint store.
pub mod lease;
mod phases;
mod pipeline;
mod report;
mod sampling;
mod simpoints;
mod temporal;

pub use analysis::{
    benchmark_stats, coverage, diversity, uniqueness, BenchmarkStats, SuiteCoverage, SuiteCurve,
    SuiteUniqueness,
};
pub use cache::{CacheStats, GcReport, PinGuard, ResultCache};
pub use characterize::{
    analyze_benchmark, characterize_benchmark, characterize_benchmark_watched,
    characterize_program, characterize_program_with_engine, BenchCharacterization, BenchFailure,
    BenchStaticReport,
};
pub use checkpoint::{
    characterization_fingerprint, clustering_fingerprint, BenchOutcome, CheckpointError,
    CheckpointStore,
};
pub use config::{AnalysisMode, Engine, SamplingPolicy, StudyConfig};
pub use error::{AnalysisError, ConfigError, QuarantineCause, QuarantinedBenchmark, StudyError};
pub use phases::{KiviatAxis, PhaseKind, PhaseShare, ProminentPhase};
pub use pipeline::{
    run_shard, run_shard_with, run_study, run_study_resumable, run_study_with,
    run_study_with_resumable, BenchmarkRun, SampledInterval, ShardSummary, StudyResult,
};

// Cancellation primitives, re-exported so pipeline callers need not
// depend on `phaselab-par` directly.
pub use phaselab_par::{CancelToken, Cancelled};
pub use report::{format_table, write_csv};
pub use sampling::{sample_intervals, sample_with_policy};
pub use simpoints::{reconstruction_error, simulation_points, weighted_estimate, SimPoint};
pub use temporal::{phase_timeline, PhaseTimeline};
