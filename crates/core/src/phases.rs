//! Prominent phases and their visualization data.

use phaselab_workloads::Suite;

/// How a prominent phase's members distribute over benchmarks and suites
/// (the grouping of Figures 2–3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// All member intervals come from a single benchmark: behavior unique
    /// to that benchmark.
    BenchmarkSpecific,
    /// Members come from several benchmarks of one suite.
    SuiteSpecific,
    /// Members span multiple suites.
    Mixed,
}

impl PhaseKind {
    /// Display name matching the paper's figure grouping.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::BenchmarkSpecific => "benchmark-specific",
            PhaseKind::SuiteSpecific => "suite-specific",
            PhaseKind::Mixed => "mixed",
        }
    }
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark's share of a prominent phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseShare {
    /// Index into [`StudyResult::benchmarks`](crate::StudyResult).
    pub bench: usize,
    /// Fraction of the cluster's members from this benchmark (the pie
    /// chart slice).
    pub cluster_share: f64,
    /// Fraction of this benchmark's sampled execution represented by the
    /// cluster (the percentage printed next to each benchmark name in
    /// the paper's figures).
    pub benchmark_fraction: f64,
}

/// A prominent phase: one of the heaviest clusters of the k-means
/// clustering, with its representative interval and benchmark
/// composition.
#[derive(Debug, Clone, PartialEq)]
pub struct ProminentPhase {
    /// Cluster index in the full clustering.
    pub cluster: usize,
    /// Fraction of all sampled intervals in this cluster (the paper's
    /// cluster weight).
    pub weight: f64,
    /// Row index (into the sampled set) of the interval closest to the
    /// cluster centroid.
    pub representative_row: usize,
    /// Kind: benchmark-specific, suite-specific or mixed.
    pub kind: PhaseKind,
    /// Per-benchmark composition, heaviest first.
    pub composition: Vec<PhaseShare>,
    /// Suites contributing at least one member.
    pub suites: Vec<Suite>,
}

/// One axis of a kiviat plot: a key characteristic with the population
/// statistics that define the plot's rings (mean ± one standard
/// deviation, min, max) and the phase's own value.
#[derive(Debug, Clone, PartialEq)]
pub struct KiviatAxis {
    /// Feature index in the 69-characteristic layout.
    pub feature: usize,
    /// Feature name.
    pub name: &'static str,
    /// Minimum over all sampled intervals.
    pub min: f64,
    /// Mean over all sampled intervals.
    pub mean: f64,
    /// Standard deviation over all sampled intervals.
    pub sd: f64,
    /// Maximum over all sampled intervals.
    pub max: f64,
    /// The phase representative's value.
    pub value: f64,
}

impl KiviatAxis {
    /// The phase value normalized to `[0, 1]` between the population min
    /// and max (0.5 when the axis is constant).
    pub fn normalized_value(&self) -> f64 {
        if self.max > self.min {
            ((self.value - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
        } else {
            0.5
        }
    }

    /// Ring positions for mean − sd, mean, mean + sd, normalized like
    /// [`normalized_value`](Self::normalized_value) and clamped into the
    /// min/max span (the paper notes the mean ± sd rings can exceed the
    /// observed extremes).
    pub fn normalized_rings(&self) -> [f64; 3] {
        let norm = |v: f64| {
            if self.max > self.min {
                ((v - self.min) / (self.max - self.min)).clamp(0.0, 1.0)
            } else {
                0.5
            }
        };
        [
            norm(self.mean - self.sd),
            norm(self.mean),
            norm(self.mean + self.sd),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(PhaseKind::BenchmarkSpecific.name(), "benchmark-specific");
        assert_eq!(PhaseKind::Mixed.to_string(), "mixed");
    }

    #[test]
    fn kiviat_normalization() {
        let axis = KiviatAxis {
            feature: 0,
            name: "x",
            min: 0.0,
            mean: 2.0,
            sd: 1.0,
            max: 4.0,
            value: 3.0,
        };
        assert_eq!(axis.normalized_value(), 0.75);
        assert_eq!(axis.normalized_rings(), [0.25, 0.5, 0.75]);
    }

    #[test]
    fn constant_axis_centers() {
        let axis = KiviatAxis {
            feature: 0,
            name: "x",
            min: 1.0,
            mean: 1.0,
            sd: 0.0,
            max: 1.0,
            value: 1.0,
        };
        assert_eq!(axis.normalized_value(), 0.5);
    }

    #[test]
    fn rings_clamp_to_span() {
        let axis = KiviatAxis {
            feature: 0,
            name: "x",
            min: 0.0,
            mean: 0.5,
            sd: 2.0,
            max: 1.0,
            value: 0.2,
        };
        let rings = axis.normalized_rings();
        assert_eq!(rings[0], 0.0);
        assert_eq!(rings[2], 1.0);
    }
}
