//! Steps 2–5: the study pipeline.
//!
//! The analysis stage (normalization → PCA → clustering input) runs in
//! one of two memory modes (see [`AnalysisMode`]): the default in-RAM
//! mode materializes the sampled interval-by-feature matrix, while the
//! streaming mode replays feature rows out of the checkpoint store
//! through one-pass accumulators and never holds the matrix at all.
//! Both modes execute the same accumulator arithmetic over the same
//! rows in the same order, so their results are **bit-identical**.
//!
//! On top of the streaming mode sits a multi-process protocol:
//! [`run_shard`] workers characterize disjoint slices of the benchmark
//! list into one shared [`CheckpointStore`], and a subsequent streaming
//! [`run_study_resumable`] call (the *reducer*) finds every outcome
//! already checkpointed and runs the analysis without executing a
//! single VM instruction.

use phaselab_ga::{select_features, DistanceCorrelationFitness};
use phaselab_mica::{feature_names, NUM_FEATURES};
use phaselab_par::{effective_threads, parallel_map_cancellable, CancelToken};
use phaselab_stats::{
    distance_sq, kmeans_restart, normalize_columns, pick_best_clustering, Clustering, ColumnStats,
    KmeansConfig, Matrix, Pca, RunningColumnStats, RunningCovariance,
};
use phaselab_workloads::{catalog, Benchmark, Suite};

use crate::characterize::{
    analyze_benchmark, characterize_benchmark_watched, BenchCharacterization, BenchFailure,
};
use crate::checkpoint::{
    characterization_fingerprint, clustering_fingerprint, BenchOutcome, CheckpointStore,
};
use crate::config::{AnalysisMode, StudyConfig};
use crate::error::{AnalysisError, ConfigError, QuarantinedBenchmark, StudyError};
use crate::lease;
use crate::phases::{KiviatAxis, PhaseKind, PhaseShare, ProminentPhase};
use crate::sampling::sample_with_policy;

/// Execution metadata of one characterized benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Input names.
    pub input_names: Vec<String>,
    /// Characterized intervals per input.
    pub intervals_per_input: Vec<usize>,
    /// Total dynamic instructions executed.
    pub total_instructions: u64,
}

impl BenchmarkRun {
    /// Total characterized intervals across inputs.
    pub fn total_intervals(&self) -> usize {
        self.intervals_per_input.iter().sum()
    }
}

/// One sampled interval: a row of the study's data matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampledInterval {
    /// Index into [`StudyResult::benchmarks`].
    pub bench: usize,
    /// Input index within the benchmark.
    pub input: usize,
    /// Interval index within the input's execution.
    pub interval: usize,
}

/// Everything a study produces: the characterized and sampled data set,
/// the clustering, the prominent phases and the GA-selected key
/// characteristics.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// The configuration the study ran with.
    pub config: StudyConfig,
    /// Characterized benchmarks, in catalog order (filtered by suite),
    /// excluding quarantined ones.
    pub benchmarks: Vec<BenchmarkRun>,
    /// Benchmarks excluded because a workload input faulted, in
    /// selection order, each with the fault that removed it. Empty in a
    /// healthy study.
    pub quarantined: Vec<QuarantinedBenchmark>,
    /// The sampled intervals, one per data-matrix row.
    pub sampled: Vec<SampledInterval>,
    /// Raw 69-characteristic features of the sampled intervals.
    ///
    /// **Empty (zero rows) when the study ran with
    /// [`AnalysisMode::Streaming`]** — not materializing this matrix is
    /// the whole point of that mode. Everything derived from it
    /// ([`space`](Self::space), the clustering, the key
    /// characteristics) is still present and bit-identical to the
    /// in-RAM run's.
    pub features: Matrix,
    /// The rescaled PCA space of the sampled intervals (what the
    /// clustering ran on).
    pub space: Matrix,
    /// Number of principal components retained.
    pub pcs_retained: usize,
    /// Fraction of total variance the retained components explain.
    pub variance_explained: f64,
    /// The full k-means clustering.
    pub clustering: Clustering,
    /// The top-weight clusters (paper: the 100 prominent phases).
    pub prominent: Vec<ProminentPhase>,
    /// Combined weight of the prominent phases (the paper's 87.8 %).
    pub prominent_coverage: f64,
    /// GA-selected key characteristic indices (paper's Table 2).
    pub key_characteristics: Vec<usize>,
    /// Fitness (distance correlation) of the key-characteristic set.
    pub ga_fitness: f64,
    /// Column statistics of the raw feature matrix (first normalization).
    feature_norm: ColumnStats,
    /// The fitted PCA model.
    pca: Pca,
    /// Column statistics of the retained PC scores (the rescaling).
    score_norm: ColumnStats,
}

impl StudyResult {
    /// The suite owning data-matrix row `row`.
    pub fn suite_of_row(&self, row: usize) -> Suite {
        self.benchmarks[self.sampled[row].bench].suite
    }

    /// The benchmark index owning data-matrix row `row`.
    pub fn bench_of_row(&self, row: usize) -> usize {
        self.sampled[row].bench
    }

    /// Kiviat axes for one prominent phase: the phase representative's
    /// key-characteristic values against population statistics.
    ///
    /// The mean and standard deviation come from [`ColumnStats::of`] —
    /// the same sample statistics (`/(n-1)`) the pipeline's
    /// normalization and PCA report — so the kiviat `sd` rings match the
    /// normalization scale of the rest of the study.
    ///
    /// # Panics
    ///
    /// Panics when the study ran with [`AnalysisMode::Streaming`]: the
    /// raw feature matrix this reads was deliberately not retained.
    pub fn kiviat_axes(&self, phase: &ProminentPhase) -> Vec<KiviatAxis> {
        assert_eq!(
            self.features.rows(),
            self.sampled.len(),
            "kiviat axes need the raw feature matrix, which streaming analysis does not retain"
        );
        let names = feature_names();
        let rep = self.features.row(phase.representative_row);
        let stats = ColumnStats::of(&self.features);
        self.key_characteristics
            .iter()
            .map(|&feat| {
                let col = self.features.column(feat);
                let min = col.iter().copied().fold(f64::INFINITY, f64::min);
                let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let (mean, sd) = stats.column(feat);
                KiviatAxis {
                    feature: feat,
                    name: names[feat],
                    min,
                    mean,
                    sd,
                    max,
                    value: rep[feat],
                }
            })
            .collect()
    }

    /// The sampled rows assigned to `cluster`.
    pub fn rows_in_cluster(&self, cluster: usize) -> Vec<usize> {
        self.clustering.members_of(cluster)
    }

    /// Projects a raw 69-characteristic feature vector into this study's
    /// rescaled PCA space, using the normalization and PCA fitted on the
    /// study's own data.
    ///
    /// Works in every analysis mode — the fitted normalization and PCA
    /// models are retained even when the raw feature matrix is not.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not have 69 entries.
    pub fn project(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), NUM_FEATURES, "expected 69 features");
        let one = Matrix::from_rows(&[features.to_vec()]);
        let normed = self.feature_norm.apply(&one);
        let scores = self.pca.transform(&normed, self.pcs_retained);
        let rescaled = self.score_norm.apply(&scores);
        rescaled.row(0).to_vec()
    }

    /// Assigns a raw feature vector to the nearest cluster of the
    /// study's clustering — classifying a *new* interval against the
    /// study's phase taxonomy (the cross-benchmark simulation-point idea
    /// of Eeckhout et al., discussed in the paper's related work).
    ///
    /// Returns the cluster index and the squared distance to its
    /// centroid in the rescaled PCA space.
    ///
    /// # Panics
    ///
    /// Panics if `features` does not have 69 entries.
    pub fn classify(&self, features: &[f64]) -> (usize, f64) {
        let point = self.project(features);
        (0..self.clustering.k())
            .map(|c| (c, distance_sq(&point, self.clustering.centroids.row(c))))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
            .expect("at least one cluster")
    }
}

/// Runs the full methodology pipeline over the (suite-filtered) catalog.
///
/// A faulting benchmark does not abort the study: it is quarantined —
/// recorded in [`StudyResult::quarantined`] with its fault — and the
/// study completes on the survivors, producing exactly the result a
/// study over the surviving benchmarks alone would produce.
///
/// # Errors
///
/// Returns [`StudyError::Config`] for an invalid configuration,
/// [`StudyError::Characterization`] when *every* selected benchmark
/// faults, and [`StudyError::Analysis`] when the surviving data set is
/// too degenerate to analyze.
pub fn run_study(cfg: &StudyConfig) -> Result<StudyResult, StudyError> {
    run_study_resumable(cfg, None, None)
}

/// [`run_study`] with crash-safe checkpointing and cooperative
/// cancellation.
///
/// With a `store`, every benchmark characterization and every completed
/// k-means restart is persisted as it finishes and reloaded on the next
/// run with a compatible configuration, so an interrupted study resumes
/// where it stopped. Resume is **bit-identical**: the result equals an
/// uninterrupted run's at every thread count. Unusable checkpoints
/// (corrupt, truncated, stale version, wrong fingerprint) are skipped
/// with a one-line warning and recomputed — they never fail the study.
///
/// With `cfg.analysis` set to [`AnalysisMode::Streaming`], a store is
/// **required** (it is the row source); this is also how a sharded
/// study reduces — see [`run_shard`].
///
/// With a `cancel` token, tripping the token stops the study at the next
/// check (between VM slices during characterization, between k-means
/// restarts, between stages) and returns [`StudyError::Cancelled`];
/// work completed before the trip is already in the store.
///
/// # Errors
///
/// As [`run_study`], plus [`StudyError::Cancelled`] when `cancel` trips
/// before the study completes, and
/// [`ConfigError::StreamingNeedsStore`] for a streaming run without a
/// store.
pub fn run_study_resumable(
    cfg: &StudyConfig,
    store: Option<&CheckpointStore>,
    cancel: Option<&CancelToken>,
) -> Result<StudyResult, StudyError> {
    cfg.validate()?;
    let benches: Vec<_> = catalog()
        .into_iter()
        .filter(|b| cfg.suites.as_ref().is_none_or(|s| s.contains(&b.suite())))
        .collect();
    run_study_with_resumable(cfg, &benches, store, cancel)
}

/// Runs the full methodology pipeline over an explicit benchmark list
/// (ignoring `cfg.suites`), with the same quarantine semantics as
/// [`run_study`].
///
/// This is the injection point for custom workloads built with
/// [`Benchmark::custom`](phaselab_workloads::Benchmark::custom).
///
/// # Errors
///
/// As [`run_study`]; additionally returns
/// [`AnalysisError::NoBenchmarksSelected`] when `benches` is empty.
pub fn run_study_with(cfg: &StudyConfig, benches: &[Benchmark]) -> Result<StudyResult, StudyError> {
    run_study_with_resumable(cfg, benches, None, None)
}

/// [`run_study_with`] with checkpointing and cancellation — the explicit
/// benchmark-list twin of [`run_study_resumable`], with the same
/// semantics and error contract.
///
/// # Errors
///
/// As [`run_study_with`], plus [`StudyError::Cancelled`] when `cancel`
/// trips before the study completes.
pub fn run_study_with_resumable(
    cfg: &StudyConfig,
    benches: &[Benchmark],
    store: Option<&CheckpointStore>,
    cancel: Option<&CancelToken>,
) -> Result<StudyResult, StudyError> {
    cfg.validate()?;
    if benches.is_empty() {
        return Err(AnalysisError::NoBenchmarksSelected.into());
    }
    let streaming = cfg.analysis == AnalysisMode::Streaming;
    if streaming && store.is_none() {
        return Err(ConfigError::StreamingNeedsStore.into());
    }
    // One token always exists; an internal never-tripped token makes the
    // uncancellable path identical code to the cancellable one.
    let own_token;
    let token = if let Some(t) = cancel {
        t
    } else {
        own_token = CancelToken::new();
        &own_token
    };

    let _study_span = phaselab_obs::span!("study");
    phaselab_obs::counter_add(
        "study.benchmarks.total",
        phaselab_obs::Class::Structural,
        benches.len() as u64,
    );

    // Step 1: characterize all benchmarks (in parallel), reloading any
    // checkpointed outcome and persisting fresh ones. Results come back
    // keyed by benchmark index, so the survivor/quarantine split is
    // identical for every thread count and for resumed vs. fresh runs.
    //
    // The in-RAM mode keeps every characterization; the streaming mode
    // projects each outcome down to its metadata the moment it arrives,
    // so full feature matrices only ever exist one-per-worker-thread —
    // the rows come back later, streamed out of the store.
    phaselab_obs::set_stage("characterize");
    let refs: Vec<&Benchmark> = benches.iter().collect();
    let mut quarantined = Vec::new();
    let mut survivor_benches: Vec<&Benchmark> = Vec::new();
    let mut benchmarks: Vec<BenchmarkRun> = Vec::new();
    let mut characterizations: Vec<BenchCharacterization> = Vec::new();
    {
        let _span = phaselab_obs::span!("characterize");
        if streaming {
            let metas = characterize_map(&refs, cfg, store, token, meta_of)?;
            for (bench, meta) in benches.iter().zip(metas) {
                match meta {
                    BenchMeta::Characterized {
                        intervals_per_input,
                        total_instructions,
                    } => {
                        benchmarks.push(benchmark_run(
                            bench,
                            intervals_per_input,
                            total_instructions,
                        ));
                        survivor_benches.push(bench);
                    }
                    BenchMeta::Quarantined(q) => quarantined.push(q),
                }
            }
        } else {
            let outcomes = characterize_map(&refs, cfg, store, token, |o| o)?;
            for (bench, outcome) in benches.iter().zip(outcomes) {
                match outcome {
                    BenchOutcome::Characterized(c) => {
                        benchmarks.push(benchmark_run(
                            bench,
                            c.per_input.iter().map(Vec::len).collect(),
                            c.total_instructions,
                        ));
                        survivor_benches.push(bench);
                        characterizations.push(c);
                    }
                    BenchOutcome::Quarantined(q) => quarantined.push(q),
                }
            }
        }
    }
    if benchmarks.is_empty() {
        return Err(StudyError::Characterization { quarantined });
    }
    if phaselab_obs::enabled() {
        use phaselab_obs::Class::Structural;
        phaselab_obs::counter_add(
            "study.benchmarks.characterized",
            Structural,
            benchmarks.len() as u64,
        );
        phaselab_obs::counter_add(
            "study.benchmarks.quarantined",
            Structural,
            quarantined.len() as u64,
        );
        let total_inst: u64 = benchmarks.iter().map(|b| b.total_instructions).sum();
        phaselab_obs::counter_add("study.instructions", Structural, total_inst);
    }

    // Step 2: equal-weight interval sampling. Benchmark indices are
    // compacted over the survivors, so a study with a quarantined
    // benchmark draws exactly as a study never given it. The sampled
    // list is grouped by ascending benchmark index, which is what lets
    // the streaming row source hold one benchmark at a time.
    phaselab_obs::set_stage("sample");
    let available: Vec<Vec<usize>> = benchmarks
        .iter()
        .map(|b| b.intervals_per_input.clone())
        .collect();
    let sampled = {
        let _span = phaselab_obs::span!("sample");
        sample_with_policy(
            &available,
            cfg.samples_per_benchmark,
            cfg.sampling,
            cfg.seed,
        )
    };
    if sampled.is_empty() {
        return Err(AnalysisError::NoIntervalsSampled.into());
    }
    phaselab_obs::gauge_set(
        "sampling.rows",
        phaselab_obs::Class::Structural,
        sampled.len() as f64,
    );

    let features = if streaming {
        Matrix::zeros(0, NUM_FEATURES)
    } else {
        let mut rows = Vec::with_capacity(sampled.len());
        for s in &sampled {
            rows.push(
                characterizations[s.bench].per_input[s.input][s.interval]
                    .as_slice()
                    .to_vec(),
            );
        }
        Matrix::from_rows(&rows)
    };

    // Step 3: normalize -> PCA (retain sd > threshold) -> normalize,
    // as three one-pass sweeps over the sampled rows. Both row sources
    // feed the identical accumulator arithmetic in the identical order,
    // which is what makes the two modes bit-identical.
    phaselab_obs::set_stage("analysis");
    let analysis_span = phaselab_obs::span!("analysis");
    let mut streamed_src = if streaming {
        Some(StreamedRows::new(
            store.expect("checked above"),
            characterization_fingerprint(cfg),
            cfg,
            token,
            &survivor_benches,
        ))
    } else {
        None
    };
    let (feature_norm, pca, pcs_retained, variance_explained, scores) =
        if let Some(src) = streamed_src.as_mut() {
            analyze_streamed(
                &mut |sink| {
                    for (r, s) in sampled.iter().enumerate() {
                        let row = src.row(s)?;
                        sink(r, row);
                    }
                    Ok(())
                },
                sampled.len(),
                cfg.pca_sd_threshold,
            )?
        } else {
            analyze_streamed(
                &mut |sink| {
                    for (r, row) in features.iter_rows().enumerate() {
                        sink(r, row);
                    }
                    Ok(())
                },
                sampled.len(),
                cfg.pca_sd_threshold,
            )?
        };
    let (space, score_norm) = normalize_columns(&scores);
    drop(analysis_span);
    if phaselab_obs::enabled() {
        use phaselab_obs::Class::{Structural, Timing};
        phaselab_obs::gauge_set("pca.pcs_retained", Structural, pcs_retained as f64);
        phaselab_obs::gauge_set("pca.variance_explained", Structural, variance_explained);
        // Peak analysis-stage matrix footprint, in f64 cells: the raw
        // feature matrix (in-RAM) or the covariance accumulator
        // (streaming), plus the retained-component scores both modes
        // keep. Timing-class: it differs across modes by design.
        let held = if streaming {
            NUM_FEATURES * NUM_FEATURES
        } else {
            sampled.len() * NUM_FEATURES
        };
        phaselab_obs::gauge_set(
            "analysis.matrix_cells_peak",
            Timing,
            (held + sampled.len() * pcs_retained) as f64,
        );
    }

    // Step 4: k-means with BIC-scored restarts; rank clusters by weight.
    // Each completed restart is checkpointed and reloadable.
    if token.is_cancelled() {
        return Err(StudyError::Cancelled);
    }
    phaselab_obs::set_stage("kmeans");
    let k = cfg.k.min(space.rows());
    let kcfg = KmeansConfig::new(k)
        .with_restarts(cfg.kmeans_restarts)
        .with_max_iters(cfg.kmeans_max_iters)
        .with_seed(cfg.seed ^ 0xC1u64)
        .with_threads(cfg.threads)
        .with_batch(cfg.kmeans_batch);
    let clustering = {
        let _span = phaselab_obs::span!("kmeans");
        cluster_resumable(&space, &kcfg, store, token)?
    };

    let (prominent, prominent_coverage) =
        prominent_phases(&clustering, &space, &sampled, &benchmarks, cfg);

    // Step 5: GA key-characteristic selection over the prominent phase
    // representatives, in the raw characteristic space. The handful of
    // representative rows is gathered from whichever source holds them;
    // both produce the same bits in the same (prominence) order.
    if token.is_cancelled() {
        return Err(StudyError::Cancelled);
    }
    phaselab_obs::set_stage("ga");
    let ga_span = phaselab_obs::span!("ga");
    let rep_rows: Vec<usize> = prominent.iter().map(|p| p.representative_row).collect();
    let (key_characteristics, ga_fitness) = if rep_rows.len() >= 3 {
        let rep_matrix = if let Some(src) = streamed_src.as_mut() {
            let mut rows = Vec::with_capacity(rep_rows.len());
            for &r in &rep_rows {
                rows.push(src.row(&sampled[r])?.to_vec());
            }
            Matrix::from_rows(&rows)
        } else {
            features.select_rows(&rep_rows)
        };
        let fitness = DistanceCorrelationFitness::new(&rep_matrix, cfg.pca_sd_threshold)
            .with_threads(cfg.threads);
        let mut ga_cfg = cfg.ga.clone();
        ga_cfg.seed ^= cfg.seed;
        ga_cfg.threads = cfg.threads;
        let score = |mask: &[bool]| fitness.score(mask);
        let result = select_features(NUM_FEATURES, cfg.n_key_characteristics, &score, &ga_cfg);
        let selected: Vec<usize> = (0..NUM_FEATURES).filter(|&i| result.genome[i]).collect();
        (selected, result.fitness)
    } else {
        // Degenerate smoke studies: fall back to the first features.
        ((0..cfg.n_key_characteristics).collect(), 0.0)
    };
    drop(ga_span);
    phaselab_obs::set_stage("done");

    Ok(StudyResult {
        config: cfg.clone(),
        benchmarks,
        quarantined,
        sampled,
        features,
        space,
        pcs_retained,
        variance_explained,
        clustering,
        prominent,
        prominent_coverage,
        key_characteristics,
        ga_fitness,
        feature_norm,
        pca,
        score_norm,
    })
}

/// Summary of one shard worker's characterization pass (see
/// [`run_shard`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSummary {
    /// This worker's index in `0..shard_total`.
    pub shard_index: u32,
    /// The topology the worker ran under (`cfg.shard_total`).
    pub shard_total: u32,
    /// Benchmarks assigned to this shard.
    pub assigned: usize,
    /// Assigned benchmarks that characterized cleanly (checkpointed).
    pub characterized: usize,
    /// Assigned benchmarks that were quarantined (also checkpointed, so
    /// the reducer neither re-runs nor forgets them).
    pub quarantined: Vec<QuarantinedBenchmark>,
}

/// Characterizes shard `shard_index` of `cfg.shard_total` over the
/// (suite-filtered) catalog into `store` — one worker of a sharded
/// study.
///
/// Benchmarks are dealt round-robin by catalog index (`index %
/// shard_total == shard_index`), so the shards partition the benchmark
/// list and every worker can be launched with the same configuration.
/// Workers write under the **streaming** fingerprint regardless of
/// `cfg.analysis`, because the only consumer of a sharded store is a
/// streaming reducer: after all workers finish, run
/// [`run_study_resumable`] with the same `cfg`,
/// `analysis = `[`AnalysisMode::Streaming`] and the same store, and the
/// reduce pass finds every outcome checkpointed. The result is
/// bit-identical to a single-process run.
///
/// # Errors
///
/// [`StudyError::Config`] for an invalid configuration or a
/// `shard_index` outside `0..cfg.shard_total`;
/// [`StudyError::Cancelled`] when `cancel` trips. A quarantined
/// benchmark is *not* an error — it is checkpointed and reported in the
/// summary, exactly as a study would record it.
pub fn run_shard(
    cfg: &StudyConfig,
    shard_index: u32,
    store: &CheckpointStore,
    cancel: Option<&CancelToken>,
) -> Result<ShardSummary, StudyError> {
    cfg.validate()?;
    let benches: Vec<_> = catalog()
        .into_iter()
        .filter(|b| cfg.suites.as_ref().is_none_or(|s| s.contains(&b.suite())))
        .collect();
    run_shard_with(cfg, &benches, shard_index, store, cancel)
}

/// [`run_shard`] over an explicit benchmark list (ignoring
/// `cfg.suites`) — the list **must** be identical, and identically
/// ordered, across all workers and the reducer for the round-robin deal
/// to partition it.
///
/// # Errors
///
/// As [`run_shard`]; additionally returns
/// [`AnalysisError::NoBenchmarksSelected`] when `benches` is empty.
pub fn run_shard_with(
    cfg: &StudyConfig,
    benches: &[Benchmark],
    shard_index: u32,
    store: &CheckpointStore,
    cancel: Option<&CancelToken>,
) -> Result<ShardSummary, StudyError> {
    cfg.validate()?;
    if shard_index >= cfg.shard_total {
        return Err(ConfigError::ShardIndex {
            index: shard_index,
            total: cfg.shard_total,
        }
        .into());
    }
    if benches.is_empty() {
        return Err(AnalysisError::NoBenchmarksSelected.into());
    }
    // Workers always checkpoint under the streaming fingerprint — that
    // is the protocol the reducer consumes.
    let mut cfg = cfg.clone();
    cfg.analysis = AnalysisMode::Streaming;

    let own_token;
    let token = if let Some(t) = cancel {
        t
    } else {
        own_token = CancelToken::new();
        &own_token
    };

    let _span = phaselab_obs::span!("shard");
    phaselab_obs::set_stage("characterize");
    let mine: Vec<&Benchmark> = benches
        .iter()
        .enumerate()
        .filter(|(i, _)| (i % cfg.shard_total as usize) as u32 == shard_index)
        .map(|(_, b)| b)
        .collect();
    if phaselab_obs::enabled() {
        use phaselab_obs::Class::Structural;
        phaselab_obs::counter_add("shard.benchmarks.assigned", Structural, mine.len() as u64);
        phaselab_obs::gauge_set("shard.index", Structural, shard_index as f64);
        phaselab_obs::gauge_set("shard.total", Structural, cfg.shard_total as f64);
    }
    let mut summary = ShardSummary {
        shard_index,
        shard_total: cfg.shard_total,
        assigned: mine.len(),
        characterized: 0,
        quarantined: Vec::new(),
    };
    // Claim this shard's slot before touching the store: at most one
    // live worker writes per slot, a crashed predecessor's stale lease
    // is fenced over, and a displacement (another worker taking the
    // slot) trips `token` so this worker stops cleanly.
    let ttl = lease::default_ttl();
    let shard_lease =
        lease::acquire(store.dir(), shard_index, ttl, ttl, Some(token)).map_err(|e| match e {
            lease::LeaseError::Cancelled => StudyError::Cancelled,
            other => StudyError::ShardLease {
                shard: shard_index,
                detail: other.to_string(),
            },
        })?;
    // An empty deal (more shards than benchmarks) is a valid no-op.
    if !mine.is_empty() {
        // Longest-first by static budget: the heavy benchmarks start
        // first, so under a supervisor stragglers surface (and can be
        // reaped) as early as possible. Unbounded (⊤) benchmarks sort
        // heaviest; ties keep deal order. Every outcome is checkpointed
        // by name and the summary is restored to deal order below, so
        // ordering never changes results.
        let order: Vec<usize> = if cfg.static_analysis {
            let mut keyed: Vec<(usize, u64)> = mine
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let key = analyze_benchmark(b, cfg.scale)
                        .ok()
                        .and_then(|s| s.total_inst_max())
                        .unwrap_or(u64::MAX);
                    (i, key)
                })
                .collect();
            keyed.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            keyed.into_iter().map(|(i, _)| i).collect()
        } else {
            (0..mine.len()).collect()
        };
        let sorted: Vec<&Benchmark> = order.iter().map(|&i| mine[i]).collect();
        let metas_sorted = characterize_map(&sorted, &cfg, Some(store), token, meta_of)?;
        let mut metas: Vec<Option<BenchMeta>> = (0..mine.len()).map(|_| None).collect();
        for (k, meta) in metas_sorted.into_iter().enumerate() {
            metas[order[k]] = Some(meta);
        }
        for meta in metas.into_iter().flatten() {
            match meta {
                BenchMeta::Characterized { .. } => summary.characterized += 1,
                BenchMeta::Quarantined(q) => summary.quarantined.push(q),
            }
        }
    }
    // A displaced worker must not report success even if it finished:
    // the new owner of the slot is the authoritative writer now.
    if shard_lease.is_displaced() {
        return Err(StudyError::Cancelled);
    }
    shard_lease.release();
    phaselab_obs::set_stage("done");
    Ok(summary)
}

/// Metadata-only projection of a benchmark outcome: everything the
/// sampling and reporting stages need, without the feature matrices.
enum BenchMeta {
    /// The benchmark characterized cleanly.
    Characterized {
        /// Characterized intervals per input.
        intervals_per_input: Vec<usize>,
        /// Total dynamic instructions executed.
        total_instructions: u64,
    },
    /// The benchmark was quarantined.
    Quarantined(QuarantinedBenchmark),
}

fn meta_of(outcome: BenchOutcome) -> BenchMeta {
    match outcome {
        BenchOutcome::Characterized(c) => BenchMeta::Characterized {
            intervals_per_input: c.per_input.iter().map(Vec::len).collect(),
            total_instructions: c.total_instructions,
        },
        BenchOutcome::Quarantined(q) => BenchMeta::Quarantined(q),
    }
}

fn benchmark_run(
    bench: &Benchmark,
    intervals_per_input: Vec<usize>,
    total_instructions: u64,
) -> BenchmarkRun {
    BenchmarkRun {
        name: bench.name().to_string(),
        suite: bench.suite(),
        input_names: bench
            .input_names()
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
        intervals_per_input,
        total_instructions,
    }
}

/// The shared three-pass streaming analysis: Welford column statistics
/// over the raw rows, a running covariance over the normalized rows,
/// and a projection pass building the retained-component scores. The
/// caller provides `for_each`, a replayable in-order sweep over the
/// sampled rows; every mode's sweep feeds these identical accumulators,
/// so every mode's output is bit-identical.
///
/// Holds O(features²) accumulator state plus the `rows × retained`
/// score matrix — never `rows × features`.
fn analyze_streamed<F>(
    for_each: &mut F,
    n_rows: usize,
    sd_threshold: f64,
) -> Result<(ColumnStats, Pca, usize, f64, Matrix), StudyError>
where
    F: FnMut(&mut dyn FnMut(usize, &[f64])) -> Result<(), StudyError>,
{
    // Pass 1: raw per-column statistics (the first normalization).
    let mut stats = RunningColumnStats::new(NUM_FEATURES);
    for_each(&mut |_, row| stats.push(row))?;
    let feature_norm = stats.finalize();

    // Pass 2: covariance of the normalized rows, one row at a time.
    let mut cov = RunningCovariance::new(NUM_FEATURES);
    let mut scratch = vec![0.0f64; NUM_FEATURES];
    for_each(&mut |_, row| {
        normalize_into(&feature_norm, row, &mut scratch);
        cov.push(&scratch);
    })?;
    let pca = Pca::from_covariance(cov.means().to_vec(), &cov.covariance());
    let pcs_retained = pca.count_above(sd_threshold).max(1);
    let variance_explained = pca.cumulative_explained(pcs_retained);

    // Pass 3: retained-component scores (the clustering's input, after
    // one more normalization by the caller).
    let mut scores = Matrix::zeros(n_rows, pcs_retained);
    let mut scratch2 = vec![0.0f64; NUM_FEATURES];
    for_each(&mut |r, row| {
        normalize_into(&feature_norm, row, &mut scratch2);
        pca.transform_row(&scratch2, scores.row_mut(r));
    })?;

    Ok((feature_norm, pca, pcs_retained, variance_explained, scores))
}

/// Z-scores one row into `out` with exactly
/// [`ColumnStats::apply`]'s arithmetic, so streamed rows normalize to
/// the same bits as materialized ones.
fn normalize_into(stats: &ColumnStats, row: &[f64], out: &mut [f64]) {
    for ((o, &v), (&mean, &std)) in out
        .iter_mut()
        .zip(row)
        .zip(stats.means.iter().zip(&stats.stds))
    {
        *o = if std == 0.0 { 0.0 } else { (v - mean) / std };
    }
}

/// Replays survivors' feature rows out of the checkpoint store, one
/// benchmark at a time — the streaming mode's row source.
///
/// Because the sampled list is grouped by ascending benchmark index,
/// holding the single most recent benchmark makes a full sweep load
/// each benchmark exactly once. A load that fails (file vanished,
/// corrupted after the characterize stage warmed it) falls back to
/// recomputing the benchmark — and repairing the store — so a damaged
/// store costs time, never correctness.
struct StreamedRows<'a> {
    store: &'a CheckpointStore,
    fingerprint: u64,
    cfg: &'a StudyConfig,
    token: &'a CancelToken,
    /// Survivor index → benchmark (the compacted post-quarantine list).
    benches: &'a [&'a Benchmark],
    cached: Option<(usize, BenchCharacterization)>,
}

impl<'a> StreamedRows<'a> {
    fn new(
        store: &'a CheckpointStore,
        fingerprint: u64,
        cfg: &'a StudyConfig,
        token: &'a CancelToken,
        benches: &'a [&'a Benchmark],
    ) -> Self {
        StreamedRows {
            store,
            fingerprint,
            cfg,
            token,
            benches,
            cached: None,
        }
    }

    /// The feature row of one sampled interval.
    fn row(&mut self, s: &SampledInterval) -> Result<&[f64], StudyError> {
        let c = self.characterization(s.bench)?;
        Ok(c.per_input[s.input][s.interval].as_slice())
    }

    fn characterization(&mut self, bench: usize) -> Result<&BenchCharacterization, StudyError> {
        if self.cached.as_ref().map(|(b, _)| *b) != Some(bench) {
            let c = self.load_or_recompute(self.benches[bench])?;
            self.cached = Some((bench, c));
        }
        Ok(&self.cached.as_ref().expect("just cached").1)
    }

    fn load_or_recompute(&self, b: &Benchmark) -> Result<BenchCharacterization, StudyError> {
        if let Some(BenchOutcome::Characterized(c)) =
            self.store
                .load_benchmark(self.fingerprint, b.suite(), b.name())
        {
            if c.per_input.len() == b.num_inputs() {
                return Ok(c);
            }
        }
        // The store lost or mangled this outcome *after* the
        // characterize stage saw it. Recompute and repair the store.
        phaselab_obs::counter_add(
            "checkpoint.stream.recomputes",
            phaselab_obs::Class::Timing,
            1,
        );
        match characterize_benchmark_watched(b, self.cfg, Some(self.token)) {
            Ok(c) => {
                self.store.store_benchmark(
                    self.fingerprint,
                    b.suite(),
                    b.name(),
                    &BenchOutcome::Characterized(c.clone()),
                );
                Ok(c)
            }
            Err(BenchFailure::Cancelled) => Err(StudyError::Cancelled),
            // The recompute quarantined a benchmark the characterize
            // stage saw survive: the run's premises changed mid-study.
            Err(BenchFailure::Quarantined(_)) => Err(AnalysisError::InconsistentCheckpoint {
                bench: b.name().to_string(),
            }
            .into()),
        }
    }
}

/// Characterizes benchmarks on the shared work-stealing executor,
/// loading checkpointed outcomes and storing fresh ones, and hands each
/// outcome to `project` *inside* the worker — so a caller that only
/// needs metadata never holds more than one full outcome per thread.
///
/// Per-benchmark outcomes ride across the executor in index-keyed
/// slots, so the outcome vector — including which benchmarks fault — is
/// identical for every thread count; and because each checkpoint is the
/// exact bits of the computed outcome, loaded and recomputed benchmarks
/// are indistinguishable downstream. To keep them indistinguishable in
/// the observability manifest too, checkpoint hit/miss tallies are
/// Timing-class (store warmth is provenance, not a property of the
/// study), and a hit emits the same `characterized`/`quarantined`
/// events the compute path would.
fn characterize_map<T: Send>(
    benches: &[&Benchmark],
    cfg: &StudyConfig,
    store: Option<&CheckpointStore>,
    token: &CancelToken,
    project: impl Fn(BenchOutcome) -> T + Sync,
) -> Result<Vec<T>, StudyError> {
    let threads = effective_threads(cfg.threads);
    let fingerprint = characterization_fingerprint(cfg);
    let outcomes = parallel_map_cancellable(benches, threads, token, |&b| {
        use phaselab_obs::Class::{Structural, Timing};
        let obs_on = phaselab_obs::enabled();
        if let Some(s) = store {
            if let Some(o) = s.load_benchmark(fingerprint, b.suite(), b.name()) {
                if outcome_matches(&o, b) {
                    if obs_on {
                        let scope = format!("{}/{}", b.suite().short_name(), b.name());
                        phaselab_obs::counter_add("checkpoint.bench.hits", Timing, 1);
                        record_outcome_event(&scope, &o);
                        record_outcome_obs(&scope, &o, cfg);
                        record_static_obs(&scope, b, cfg);
                        phaselab_obs::counter_add("study.benchmarks.done", Structural, 1);
                    }
                    return Ok(project(o));
                }
            }
            phaselab_obs::counter_add("checkpoint.bench.misses", Timing, 1);
        }
        let _span = phaselab_obs::span!("characterize.bench");
        let started = obs_on.then(std::time::Instant::now);
        let outcome = match characterize_benchmark_watched(b, cfg, Some(token)) {
            Ok(c) => BenchOutcome::Characterized(c),
            Err(BenchFailure::Quarantined(q)) => BenchOutcome::Quarantined(q),
            Err(BenchFailure::Cancelled) => return Err(()),
        };
        if let Some(s) = store {
            s.store_benchmark(fingerprint, b.suite(), b.name(), &outcome);
        }
        if let Some(t0) = started {
            let scope = format!("{}/{}", b.suite().short_name(), b.name());
            phaselab_obs::gauge_set(
                &format!("bench.time_ms[{scope}]"),
                phaselab_obs::Class::Timing,
                t0.elapsed().as_secs_f64() * 1e3,
            );
            record_outcome_event(&scope, &outcome);
            record_outcome_obs(&scope, &outcome, cfg);
            record_static_obs(&scope, b, cfg);
            phaselab_obs::counter_add("study.benchmarks.done", Structural, 1);
        }
        Ok(project(outcome))
    })
    .map_err(|_| StudyError::Cancelled)?;
    outcomes
        .into_iter()
        .collect::<Result<Vec<_>, ()>>()
        .map_err(|()| StudyError::Cancelled)
}

/// Emits the outcome event (`characterized` or `quarantined: <cause>`)
/// for one benchmark. Shared by the checkpoint-hit and compute paths so
/// the event stream is identical either way.
fn record_outcome_event(scope: &str, outcome: &BenchOutcome) {
    match outcome {
        BenchOutcome::Characterized(_) => phaselab_obs::event(scope, "characterized"),
        BenchOutcome::Quarantined(q) => {
            phaselab_obs::event(scope, &format!("quarantined: {}", q.cause));
        }
    }
}

/// Publishes one benchmark outcome's structural metrics: instruction
/// counts (gauge + histogram) and, when the watchdog budget is armed,
/// the fraction of the budget consumed. Runaway quarantines consumed
/// the whole budget by definition.
fn record_outcome_obs(scope: &str, outcome: &BenchOutcome, cfg: &StudyConfig) {
    use phaselab_obs::Class::Structural;
    match outcome {
        BenchOutcome::Characterized(c) => {
            phaselab_obs::gauge_set(
                &format!("bench.instructions[{scope}]"),
                Structural,
                c.total_instructions as f64,
            );
            phaselab_obs::histogram_record("bench.instructions", Structural, c.total_instructions);
            if let Some(budget) = cfg.max_inst_per_bench {
                phaselab_obs::gauge_set(
                    &format!("bench.budget_used_frac[{scope}]"),
                    Structural,
                    c.total_instructions as f64 / budget as f64,
                );
            }
        }
        BenchOutcome::Quarantined(q) => {
            if q.is_runaway() && cfg.max_inst_per_bench.is_some() {
                phaselab_obs::gauge_set(
                    &format!("bench.budget_used_frac[{scope}]"),
                    Structural,
                    1.0,
                );
            }
        }
    }
}

/// Publishes one benchmark's static pre-flight into the manifest: a
/// `static_analysis` structural section entry (sound bounds and lint
/// tallies — deterministic, so safe in the golden-comparable prefix)
/// plus Timing-class analyzer cost metrics. Shared by the
/// checkpoint-hit and compute paths so warm and cold runs render the
/// same structural document.
fn record_static_obs(scope: &str, bench: &Benchmark, cfg: &StudyConfig) {
    use phaselab_obs::{Class, Json};
    if !cfg.static_analysis {
        return;
    }
    let t0 = std::time::Instant::now();
    let Ok(statics) = analyze_benchmark(bench, cfg.scale) else {
        // A statically invalid benchmark is already recorded by its
        // quarantine event; there are no sound bounds to publish.
        return;
    };
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
    let sum =
        |f: fn(&phaselab_vm::StaticReport) -> u64| -> u64 { statics.per_input.iter().map(f).sum() };
    // Severity derives `Ord` with `Deny` first, so the most severe
    // finding across inputs is the minimum.
    let severity = statics
        .per_input
        .iter()
        .filter_map(phaselab_vm::StaticReport::max_severity)
        .min();
    phaselab_obs::section_set(
        "static_analysis",
        scope,
        Json::Obj(vec![
            ("inst_min".into(), Json::U64(statics.total_inst_min())),
            ("inst_max".into(), opt_u64(statics.total_inst_max())),
            ("derived_budget".into(), opt_u64(statics.derived_budget())),
            ("dead_pcs".into(), Json::U64(sum(|r| r.dead.len() as u64))),
            ("mem_sites".into(), Json::U64(sum(|r| r.sites.len() as u64))),
            (
                "footprint_bytes".into(),
                Json::U64(sum(|r| r.footprint.1.saturating_sub(r.footprint.0))),
            ),
            ("lints".into(), Json::U64(sum(|r| r.lints.len() as u64))),
            (
                "max_severity".into(),
                severity.map_or(Json::Null, |s| Json::Str(s.as_str().into())),
            ),
        ]),
    );
    phaselab_obs::counter_add("static.benchmarks.analyzed", Class::Structural, 1);
    phaselab_obs::gauge_set(&format!("static.analyze_ms[{scope}]"), Class::Timing, ms);
    for r in &statics.per_input {
        for (pass, ns) in &r.pass_ns {
            phaselab_obs::counter_add(&format!("static.pass.{pass}_ns"), Class::Timing, *ns);
        }
    }
}

/// Whether a loaded checkpoint plausibly belongs to this benchmark.
/// Guards against sanitized-filename collisions and workload-definition
/// drift; a mismatch means "recompute", never "trust".
fn outcome_matches(outcome: &BenchOutcome, bench: &Benchmark) -> bool {
    match outcome {
        BenchOutcome::Characterized(c) => c.per_input.len() == bench.num_inputs(),
        BenchOutcome::Quarantined(q) => {
            q.name == bench.name() && q.suite == bench.suite() && q.input < bench.num_inputs()
        }
    }
}

/// Multi-restart k-means with per-restart checkpointing: exactly
/// [`kmeans`](phaselab_stats::kmeans) — same seeds, same outer/inner
/// thread split, same highest-BIC/earliest-restart selection — except
/// each restart is reloaded from the store when present and persisted
/// when computed.
fn cluster_resumable(
    space: &Matrix,
    kcfg: &KmeansConfig,
    store: Option<&CheckpointStore>,
    token: &CancelToken,
) -> Result<Clustering, StudyError> {
    let restarts = kcfg.restarts.max(1);
    let threads = effective_threads(kcfg.threads);
    let outer = threads.min(restarts);
    let inner = (threads / outer).max(1);
    let fingerprint = store.map(|_| clustering_fingerprint(kcfg, space));
    let indices: Vec<usize> = (0..restarts).collect();
    let candidates = parallel_map_cancellable(&indices, outer, token, |&r| {
        use phaselab_obs::Class::Timing;
        if let (Some(s), Some(fp)) = (store, fingerprint) {
            if let Some(c) = s.load_clustering(fp, r) {
                if c.assignments.len() == space.rows() && c.centroids.rows() == kcfg.k {
                    phaselab_obs::counter_add("checkpoint.clustering.hits", Timing, 1);
                    return c;
                }
            }
            phaselab_obs::counter_add("checkpoint.clustering.misses", Timing, 1);
        }
        let c = kmeans_restart(space, kcfg, r, inner);
        if let (Some(s), Some(fp)) = (store, fingerprint) {
            s.store_clustering(fp, r, &c);
        }
        c
    })
    .map_err(|_| StudyError::Cancelled)?;
    Ok(pick_best_clustering(candidates).expect("at least one restart ran"))
}

/// Ranks clusters by weight, keeps the top `n_prominent`, and describes
/// each with its representative and benchmark composition.
fn prominent_phases(
    clustering: &Clustering,
    space: &Matrix,
    sampled: &[SampledInterval],
    benchmarks: &[BenchmarkRun],
    cfg: &StudyConfig,
) -> (Vec<ProminentPhase>, f64) {
    let total = sampled.len() as f64;
    let mut order: Vec<usize> = (0..clustering.k()).collect();
    order.sort_by(|&a, &b| {
        clustering.sizes[b]
            .cmp(&clustering.sizes[a])
            .then(a.cmp(&b))
    });

    // Per-benchmark sampled totals for benchmark_fraction.
    let mut bench_totals = vec![0usize; benchmarks.len()];
    for s in sampled {
        bench_totals[s.bench] += 1;
    }

    let mut phases = Vec::new();
    let mut coverage = 0.0;
    for &cluster in order.iter().take(cfg.n_prominent) {
        if clustering.sizes[cluster] == 0 {
            continue;
        }
        let members = clustering.members_of(cluster);
        let weight = members.len() as f64 / total;
        coverage += weight;
        let representative_row = clustering
            .representative_of(space, cluster)
            .expect("non-empty cluster");

        let mut per_bench = vec![0usize; benchmarks.len()];
        for &row in &members {
            per_bench[sampled[row].bench] += 1;
        }
        let mut composition: Vec<PhaseShare> = per_bench
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(bench, &n)| PhaseShare {
                bench,
                cluster_share: n as f64 / members.len() as f64,
                benchmark_fraction: n as f64 / bench_totals[bench].max(1) as f64,
            })
            .collect();
        composition.sort_by(|a, b| {
            b.cluster_share
                .partial_cmp(&a.cluster_share)
                .expect("finite shares")
        });

        let mut suites: Vec<Suite> = composition
            .iter()
            .map(|s| benchmarks[s.bench].suite)
            .collect();
        suites.sort_unstable();
        suites.dedup();

        let kind = if composition.len() == 1 {
            PhaseKind::BenchmarkSpecific
        } else if suites.len() == 1 {
            PhaseKind::SuiteSpecific
        } else {
            PhaseKind::Mixed
        };

        phases.push(ProminentPhase {
            cluster,
            weight,
            representative_row,
            kind,
            composition,
            suites,
        });
    }
    (phases, coverage)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_result() -> StudyResult {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![Suite::Bmw, Suite::MediaBench2]);
        cfg.threads = 2;
        run_study(&cfg).expect("smoke study")
    }

    #[test]
    fn smoke_study_end_to_end() {
        let r = smoke_result();
        assert_eq!(r.benchmarks.len(), 12); // 5 BMW + 7 MediaBench II
        assert!(r.quarantined.is_empty(), "bundled workloads never fault");
        assert_eq!(r.sampled.len(), 12 * r.config.samples_per_benchmark);
        assert_eq!(r.features.rows(), r.sampled.len());
        assert_eq!(r.features.cols(), NUM_FEATURES);
        assert!(r.pcs_retained >= 1);
        assert!(r.variance_explained > 0.5);
        assert!(!r.prominent.is_empty());
        assert!(r.prominent_coverage > 0.0 && r.prominent_coverage <= 1.0 + 1e-9);
        assert_eq!(r.key_characteristics.len(), r.config.n_key_characteristics);
        assert!(r.ga_fitness > 0.0, "GA fitness {}", r.ga_fitness);
    }

    #[test]
    fn prominent_phases_sorted_by_weight_and_classified() {
        let r = smoke_result();
        for w in r.prominent.windows(2) {
            assert!(w[0].weight >= w[1].weight - 1e-12);
        }
        for p in &r.prominent {
            let share_sum: f64 = p.composition.iter().map(|s| s.cluster_share).sum();
            assert!((share_sum - 1.0).abs() < 1e-9, "shares sum to {share_sum}");
            match p.kind {
                PhaseKind::BenchmarkSpecific => assert_eq!(p.composition.len(), 1),
                PhaseKind::SuiteSpecific => {
                    assert!(p.composition.len() > 1);
                    assert_eq!(p.suites.len(), 1);
                }
                PhaseKind::Mixed => assert!(p.suites.len() > 1),
            }
        }
    }

    #[test]
    fn kiviat_axes_are_well_formed() {
        let r = smoke_result();
        let axes = r.kiviat_axes(&r.prominent[0]);
        assert_eq!(axes.len(), r.config.n_key_characteristics);
        for axis in axes {
            assert!(axis.min <= axis.mean + 1e-12);
            assert!(axis.mean <= axis.max + 1e-12);
            assert!((axis.min..=axis.max).contains(&axis.value));
            let v = axis.normalized_value();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn study_is_deterministic() {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![Suite::Bmw]);
        let a = run_study(&cfg).expect("study");
        let b = run_study(&cfg).expect("study");
        assert_eq!(a.clustering.assignments, b.clustering.assignments);
        assert_eq!(a.key_characteristics, b.key_characteristics);
    }

    #[test]
    fn empty_filter_is_a_config_error() {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![]);
        assert!(matches!(
            run_study(&cfg),
            Err(StudyError::Config(crate::ConfigError::EmptySuiteFilter))
        ));
    }

    #[test]
    fn empty_benchmark_list_is_an_analysis_error() {
        let cfg = StudyConfig::smoke();
        assert!(matches!(
            run_study_with(&cfg, &[]),
            Err(StudyError::Analysis(AnalysisError::NoBenchmarksSelected))
        ));
    }

    #[test]
    fn invalid_config_fails_before_any_characterization() {
        let mut cfg = StudyConfig::smoke();
        cfg.k = 0;
        assert!(matches!(
            run_study(&cfg),
            Err(StudyError::Config(crate::ConfigError::ZeroClusters))
        ));
    }

    #[test]
    fn streaming_without_store_is_a_config_error() {
        let mut cfg = StudyConfig::smoke();
        cfg.analysis = AnalysisMode::Streaming;
        assert!(matches!(
            run_study(&cfg),
            Err(StudyError::Config(ConfigError::StreamingNeedsStore))
        ));
    }

    #[test]
    fn shard_index_must_be_in_range() {
        let dir =
            std::env::temp_dir().join(format!("phaselab-ckpt-shardrange-{}", std::process::id()));
        let store = CheckpointStore::open(&dir).expect("store");
        let mut cfg = StudyConfig::smoke();
        cfg.shard_total = 2;
        let err = run_shard(&cfg, 2, &store, None).unwrap_err();
        assert!(matches!(
            err,
            StudyError::Config(ConfigError::ShardIndex { index: 2, total: 2 })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
