//! Plain-text and CSV reporting helpers.

use std::io::{self, Write};

/// Formats a table with aligned columns for terminal output.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
///
/// # Examples
///
/// ```
/// use phaselab_core::format_table;
///
/// let t = format_table(
///     &["suite", "clusters"],
///     &[vec!["BioPerf".into(), "17".into()]],
/// );
/// assert!(t.contains("BioPerf"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    for row in rows {
        assert_eq!(row.len(), cols, "row length mismatch");
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let emit_row = |out: &mut String, cells: &[String]| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.extend(std::iter::repeat_n(' ', w - cell.len()));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    emit_row(&mut out, &header_cells);
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.extend(std::iter::repeat_n('-', rule));
    out.push('\n');
    for row in rows {
        emit_row(&mut out, row);
    }
    out
}

/// Writes rows as CSV (comma-separated, quoting cells that contain
/// commas or quotes).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Examples
///
/// ```
/// let mut buf = Vec::new();
/// phaselab_core::write_csv(
///     &mut buf,
///     &["a", "b"],
///     &[vec!["1".into(), "x,y".into()]],
/// ).unwrap();
/// assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,\"x,y\"\n");
/// ```
pub fn write_csv<W: Write>(
    writer: &mut W,
    headers: &[&str],
    rows: &[Vec<String>],
) -> io::Result<()> {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(
        writer,
        "{}",
        headers
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            writer,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The numeric column starts at the same offset in both data rows.
        let off1 = lines[2].find('1').unwrap();
        let off2 = lines[3].find("22").unwrap();
        assert_eq!(off1, off2);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn table_validates_rows() {
        let _ = format_table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn csv_escapes_quotes() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &["x"], &[vec!["say \"hi\"".into()]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "x\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,b\n1,2\n");
    }
}
