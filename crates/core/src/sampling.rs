//! Step 2: interval sampling.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::config::SamplingPolicy;
use crate::pipeline::SampledInterval;

/// Samples a fixed number of intervals per benchmark across all of its
/// inputs (§2.4 of the paper), giving every benchmark equal weight in the
/// subsequent analysis.
///
/// `available[b][i]` is the number of characterized intervals of
/// benchmark `b`, input `i`. When a benchmark has at least
/// `samples_per_benchmark` intervals they are drawn without replacement;
/// when it has fewer, every interval is taken and the remainder is drawn
/// with replacement — "instruction intervals will appear multiple times
/// in the data set", as the paper puts it.
///
/// Sampling is deterministic in `seed` and independent per benchmark.
pub fn sample_intervals(
    available: &[Vec<usize>],
    samples_per_benchmark: usize,
    seed: u64,
) -> Vec<SampledInterval> {
    let mut out = Vec::with_capacity(available.len() * samples_per_benchmark);
    for (bench, inputs) in available.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (bench as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pool: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(input, &n)| (0..n).map(move |iv| (input, iv)))
            .collect();
        if pool.is_empty() {
            continue;
        }
        pool.shuffle(&mut rng);
        if pool.len() >= samples_per_benchmark {
            pool.truncate(samples_per_benchmark);
        } else {
            // Top-up draws index into the original pool only: drawing
            // from the growing pool would make already-duplicated
            // intervals ever more likely to be duplicated again.
            let base = pool.len();
            let deficit = samples_per_benchmark - base;
            for _ in 0..deficit {
                let pick = pool[rng.random_range(0..base)];
                pool.push(pick);
            }
        }
        out.extend(pool.into_iter().map(|(input, interval)| SampledInterval {
            bench,
            input,
            interval,
        }));
    }
    out
}

/// Samples with the given policy.
///
/// [`SamplingPolicy::EqualPerBenchmark`] delegates to
/// [`sample_intervals`]. [`SamplingPolicy::Proportional`] draws the same
/// *total* number of intervals, but allocates them to benchmarks in
/// proportion to their characterized interval counts — the bias the
/// paper's equal-weight policy is designed to avoid (ablation A3). The
/// allocation uses the largest-remainder method, so the total is exactly
/// `samples_per_benchmark * available.len()` whenever any benchmark has
/// intervals.
pub fn sample_with_policy(
    available: &[Vec<usize>],
    samples_per_benchmark: usize,
    policy: SamplingPolicy,
    seed: u64,
) -> Vec<SampledInterval> {
    match policy {
        SamplingPolicy::EqualPerBenchmark => {
            sample_intervals(available, samples_per_benchmark, seed)
        }
        SamplingPolicy::Proportional => {
            let totals: Vec<usize> = available.iter().map(|v| v.iter().sum()).collect();
            let grand_total: usize = totals.iter().sum();
            if grand_total == 0 {
                return Vec::new();
            }
            let budget = samples_per_benchmark * available.len();
            let shares = largest_remainder_shares(&totals, grand_total, budget);
            let mut out = Vec::with_capacity(budget);
            for (bench, inputs) in available.iter().enumerate() {
                let share = shares[bench];
                if share == 0 {
                    continue;
                }
                let one = sample_intervals(
                    std::slice::from_ref(inputs),
                    share,
                    seed ^ (bench as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                out.extend(one.into_iter().map(|s| SampledInterval { bench, ..s }));
            }
            out
        }
    }
}

/// Allocates `budget` samples to benchmarks in proportion to `totals`
/// by the largest-remainder (Hamilton) method, so the shares sum to
/// exactly `budget` — independent per-benchmark rounding can drift by
/// up to one sample per benchmark.
///
/// Every benchmark with a non-zero interval count is guaranteed at
/// least one sample when the budget allows it (a unit is taken from the
/// largest share), so nothing disappears from the study entirely. All
/// tie-breaks are by benchmark index, keeping the allocation
/// deterministic.
fn largest_remainder_shares(totals: &[usize], grand_total: usize, budget: usize) -> Vec<usize> {
    let mut shares = vec![0usize; totals.len()];
    let mut remainders: Vec<(usize, f64)> = Vec::new();
    let mut assigned = 0usize;
    for (bench, &total) in totals.iter().enumerate() {
        if total == 0 {
            continue;
        }
        let exact = budget as f64 * total as f64 / grand_total as f64;
        let floor = exact.floor() as usize;
        shares[bench] = floor;
        assigned += floor;
        remainders.push((bench, exact - floor as f64));
    }
    remainders.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite remainders")
            .then(a.0.cmp(&b.0))
    });
    for &(bench, _) in remainders.iter().take(budget.saturating_sub(assigned)) {
        shares[bench] += 1;
    }
    // Nothing disappears: give shut-out non-empty benchmarks one sample
    // from the current largest share, preserving the exact total.
    for bench in 0..totals.len() {
        if totals[bench] == 0 || shares[bench] > 0 {
            continue;
        }
        let donor = (0..shares.len()).max_by_key(|&i| (shares[i], usize::MAX - i));
        match donor {
            Some(d) if shares[d] > 1 => {
                shares[d] -= 1;
                shares[bench] = 1;
            }
            _ => break, // budget too small for everyone; leave the rest at 0
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weight_per_benchmark() {
        let available = vec![vec![100], vec![3], vec![10, 10]];
        let sampled = sample_intervals(&available, 20, 1);
        for b in 0..3 {
            let n = sampled.iter().filter(|s| s.bench == b).count();
            assert_eq!(n, 20, "benchmark {b} got {n} samples");
        }
    }

    #[test]
    fn oversampled_benchmark_draws_without_replacement() {
        let available = vec![vec![100]];
        let sampled = sample_intervals(&available, 50, 2);
        let mut seen: Vec<usize> = sampled.iter().map(|s| s.interval).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "duplicates despite sufficient pool");
    }

    #[test]
    fn undersampled_benchmark_repeats_intervals() {
        let available = vec![vec![3]];
        let sampled = sample_intervals(&available, 10, 3);
        assert_eq!(sampled.len(), 10);
        // All three distinct intervals are present at least once.
        for iv in 0..3 {
            assert!(sampled.iter().any(|s| s.interval == iv));
        }
    }

    #[test]
    fn spans_all_inputs() {
        let available = vec![vec![50, 50]];
        let sampled = sample_intervals(&available, 60, 4);
        assert!(sampled.iter().any(|s| s.input == 0));
        assert!(sampled.iter().any(|s| s.input == 1));
    }

    #[test]
    fn deterministic_and_benchmark_independent() {
        let a = sample_intervals(&[vec![30], vec![30]], 10, 7);
        let b = sample_intervals(&[vec![30], vec![30]], 10, 7);
        assert_eq!(a, b);
        // Removing benchmark 1 does not change benchmark 0's draw.
        let c = sample_intervals(&[vec![30]], 10, 7);
        let a0: Vec<_> = a.iter().filter(|s| s.bench == 0).collect();
        let c0: Vec<_> = c.iter().collect();
        assert_eq!(a0, c0);
    }

    #[test]
    fn empty_benchmark_is_skipped() {
        let sampled = sample_intervals(&[vec![0], vec![5]], 4, 5);
        assert!(sampled.iter().all(|s| s.bench == 1));
    }

    #[test]
    fn proportional_policy_weights_by_interval_count() {
        // Benchmark 0 has 9x the intervals of benchmark 1.
        let available = vec![vec![900], vec![100]];
        let sampled = sample_with_policy(&available, 50, SamplingPolicy::Proportional, 6);
        let n0 = sampled.iter().filter(|s| s.bench == 0).count();
        let n1 = sampled.iter().filter(|s| s.bench == 1).count();
        assert_eq!(n0 + n1, 100);
        assert_eq!(n0, 90);
        assert_eq!(n1, 10);
    }

    #[test]
    fn proportional_policy_keeps_benchmark_indices() {
        let available = vec![vec![10], vec![10], vec![10]];
        let sampled = sample_with_policy(&available, 6, SamplingPolicy::Proportional, 7);
        for b in 0..3 {
            assert!(sampled.iter().any(|s| s.bench == b));
        }
    }

    #[test]
    fn topup_draws_are_uniform_over_the_original_pool() {
        // With the growing-pool bug, top-up duplication is a Pólya urn:
        // early duplicates snowball and the split between the two
        // intervals is wildly variable. Unbiased top-up draws are
        // Binomial(100, 1/2), so each interval lands well inside
        // [30, 72] with overwhelming probability.
        for seed in 0..20 {
            let sampled = sample_intervals(&[vec![2]], 102, seed);
            assert_eq!(sampled.len(), 102);
            let n0 = sampled.iter().filter(|s| s.interval == 0).count();
            assert!(
                (30..=72).contains(&n0),
                "seed {seed}: interval 0 drawn {n0}/102 times"
            );
        }
    }

    #[test]
    fn proportional_totals_are_exact_under_adversarial_rounding() {
        // Independent rounding would give 2 + 1 + 1 + 1 = 5 samples on a
        // budget of 4; largest-remainder allocation stays exact.
        let available = vec![vec![3], vec![1], vec![1], vec![1]];
        let sampled = sample_with_policy(&available, 1, SamplingPolicy::Proportional, 9);
        assert_eq!(sampled.len(), 4, "total must equal the budget");
        for b in 0..4 {
            assert!(
                sampled.iter().any(|s| s.bench == b),
                "benchmark {b} disappeared"
            );
        }
    }

    #[test]
    fn proportional_allocation_is_exact_across_shapes() {
        for (available, spb) in [
            (vec![vec![7], vec![13], vec![17], vec![23], vec![100]], 10),
            (vec![vec![1], vec![1], vec![1000]], 5),
            (vec![vec![0], vec![9], vec![9]], 4),
        ] {
            let n = available.len();
            let sampled = sample_with_policy(&available, spb, SamplingPolicy::Proportional, 11);
            assert_eq!(sampled.len(), spb * n, "budget drifted for {available:?}");
        }
    }

    #[test]
    fn equal_policy_matches_sample_intervals() {
        let available = vec![vec![30], vec![40]];
        let a = sample_with_policy(&available, 10, SamplingPolicy::EqualPerBenchmark, 8);
        let b = sample_intervals(&available, 10, 8);
        assert_eq!(a, b);
    }
}
