//! Step 2: interval sampling.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::config::SamplingPolicy;
use crate::pipeline::SampledInterval;

/// Samples a fixed number of intervals per benchmark across all of its
/// inputs (§2.4 of the paper), giving every benchmark equal weight in the
/// subsequent analysis.
///
/// `available[b][i]` is the number of characterized intervals of
/// benchmark `b`, input `i`. When a benchmark has at least
/// `samples_per_benchmark` intervals they are drawn without replacement;
/// when it has fewer, every interval is taken and the remainder is drawn
/// with replacement — "instruction intervals will appear multiple times
/// in the data set", as the paper puts it.
///
/// Sampling is deterministic in `seed` and independent per benchmark.
pub fn sample_intervals(
    available: &[Vec<usize>],
    samples_per_benchmark: usize,
    seed: u64,
) -> Vec<SampledInterval> {
    let mut out = Vec::with_capacity(available.len() * samples_per_benchmark);
    for (bench, inputs) in available.iter().enumerate() {
        let mut rng =
            StdRng::seed_from_u64(seed ^ (bench as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pool: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(input, &n)| (0..n).map(move |iv| (input, iv)))
            .collect();
        if pool.is_empty() {
            continue;
        }
        pool.shuffle(&mut rng);
        if pool.len() >= samples_per_benchmark {
            pool.truncate(samples_per_benchmark);
        } else {
            let deficit = samples_per_benchmark - pool.len();
            for _ in 0..deficit {
                let pick = pool[rng.random_range(0..pool.len())];
                pool.push(pick);
            }
        }
        out.extend(pool.into_iter().map(|(input, interval)| SampledInterval {
            bench,
            input,
            interval,
        }));
    }
    out
}

/// Samples with the given policy.
///
/// [`SamplingPolicy::EqualPerBenchmark`] delegates to
/// [`sample_intervals`]. [`SamplingPolicy::Proportional`] draws the same
/// *total* number of intervals, but allocates them to benchmarks in
/// proportion to their characterized interval counts — the bias the
/// paper's equal-weight policy is designed to avoid (ablation A3).
pub fn sample_with_policy(
    available: &[Vec<usize>],
    samples_per_benchmark: usize,
    policy: SamplingPolicy,
    seed: u64,
) -> Vec<SampledInterval> {
    match policy {
        SamplingPolicy::EqualPerBenchmark => {
            sample_intervals(available, samples_per_benchmark, seed)
        }
        SamplingPolicy::Proportional => {
            let totals: Vec<usize> = available.iter().map(|v| v.iter().sum()).collect();
            let grand_total: usize = totals.iter().sum();
            if grand_total == 0 {
                return Vec::new();
            }
            let budget = samples_per_benchmark * available.len();
            let mut out = Vec::with_capacity(budget);
            for (bench, inputs) in available.iter().enumerate() {
                // Round to the nearest share; at least 1 for non-empty
                // benchmarks so nothing disappears entirely.
                let share =
                    (budget as f64 * totals[bench] as f64 / grand_total as f64).round() as usize;
                let share = if totals[bench] > 0 { share.max(1) } else { 0 };
                if share == 0 {
                    continue;
                }
                let one = sample_intervals(
                    std::slice::from_ref(inputs),
                    share,
                    seed ^ (bench as u64).wrapping_mul(0xA24B_AED4_963E_E407),
                );
                out.extend(one.into_iter().map(|s| SampledInterval { bench, ..s }));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_weight_per_benchmark() {
        let available = vec![vec![100], vec![3], vec![10, 10]];
        let sampled = sample_intervals(&available, 20, 1);
        for b in 0..3 {
            let n = sampled.iter().filter(|s| s.bench == b).count();
            assert_eq!(n, 20, "benchmark {b} got {n} samples");
        }
    }

    #[test]
    fn oversampled_benchmark_draws_without_replacement() {
        let available = vec![vec![100]];
        let sampled = sample_intervals(&available, 50, 2);
        let mut seen: Vec<usize> = sampled.iter().map(|s| s.interval).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "duplicates despite sufficient pool");
    }

    #[test]
    fn undersampled_benchmark_repeats_intervals() {
        let available = vec![vec![3]];
        let sampled = sample_intervals(&available, 10, 3);
        assert_eq!(sampled.len(), 10);
        // All three distinct intervals are present at least once.
        for iv in 0..3 {
            assert!(sampled.iter().any(|s| s.interval == iv));
        }
    }

    #[test]
    fn spans_all_inputs() {
        let available = vec![vec![50, 50]];
        let sampled = sample_intervals(&available, 60, 4);
        assert!(sampled.iter().any(|s| s.input == 0));
        assert!(sampled.iter().any(|s| s.input == 1));
    }

    #[test]
    fn deterministic_and_benchmark_independent() {
        let a = sample_intervals(&[vec![30], vec![30]], 10, 7);
        let b = sample_intervals(&[vec![30], vec![30]], 10, 7);
        assert_eq!(a, b);
        // Removing benchmark 1 does not change benchmark 0's draw.
        let c = sample_intervals(&[vec![30]], 10, 7);
        let a0: Vec<_> = a.iter().filter(|s| s.bench == 0).collect();
        let c0: Vec<_> = c.iter().collect();
        assert_eq!(a0, c0);
    }

    #[test]
    fn empty_benchmark_is_skipped() {
        let sampled = sample_intervals(&[vec![0], vec![5]], 4, 5);
        assert!(sampled.iter().all(|s| s.bench == 1));
    }

    #[test]
    fn proportional_policy_weights_by_interval_count() {
        // Benchmark 0 has 9x the intervals of benchmark 1.
        let available = vec![vec![900], vec![100]];
        let sampled = sample_with_policy(&available, 50, SamplingPolicy::Proportional, 6);
        let n0 = sampled.iter().filter(|s| s.bench == 0).count();
        let n1 = sampled.iter().filter(|s| s.bench == 1).count();
        assert_eq!(n0 + n1, 100);
        assert_eq!(n0, 90);
        assert_eq!(n1, 10);
    }

    #[test]
    fn proportional_policy_keeps_benchmark_indices() {
        let available = vec![vec![10], vec![10], vec![10]];
        let sampled = sample_with_policy(&available, 6, SamplingPolicy::Proportional, 7);
        for b in 0..3 {
            assert!(sampled.iter().any(|s| s.bench == b));
        }
    }

    #[test]
    fn equal_policy_matches_sample_intervals() {
        let available = vec![vec![30], vec![40]];
        let a = sample_with_policy(&available, 10, SamplingPolicy::EqualPerBenchmark, 8);
        let b = sample_intervals(&available, 10, 8);
        assert_eq!(a, b);
    }
}
