//! SimPoint-style representative-interval selection.
//!
//! The paper's implications section (§5.3) and its related work (Sherwood
//! et al.'s SimPoint; Eeckhout et al.'s cross-benchmark simulation
//! points) reduce simulation time by simulating one representative
//! interval per phase and weighting it by the phase's share of the
//! execution. This module derives such simulation points for a single
//! benchmark execution from a study's phase taxonomy and quantifies how
//! well the weighted points reconstruct the execution's aggregate
//! behavior.

use phaselab_mica::{FeatureVector, NUM_FEATURES};

use crate::temporal::PhaseTimeline;

/// One simulation point: a representative interval index plus the weight
/// (execution fraction) of the phase it represents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Interval index within the benchmark execution.
    pub interval: usize,
    /// Cluster (phase) this point represents.
    pub cluster: usize,
    /// Fraction of the execution's intervals in that phase.
    pub weight: f64,
}

/// Derives one simulation point per phase visited by `timeline`: for
/// each cluster, the interval whose features are closest to the
/// per-cluster mean of this execution, weighted by the cluster's share
/// of intervals.
///
/// # Panics
///
/// Panics if `timeline` and `features` have different lengths, or are
/// empty.
pub fn simulation_points(timeline: &PhaseTimeline, features: &[FeatureVector]) -> Vec<SimPoint> {
    assert_eq!(
        timeline.len(),
        features.len(),
        "timeline/features length mismatch"
    );
    assert!(!features.is_empty(), "empty execution");

    let total = timeline.len() as f64;
    let mut points = Vec::new();
    for cluster in timeline.distinct_phases() {
        let members: Vec<usize> = (0..timeline.len())
            .filter(|&i| timeline.clusters[i] == cluster)
            .collect();
        // Per-cluster mean in raw feature space.
        let mut mean = vec![0.0; NUM_FEATURES];
        for &i in &members {
            for (m, &v) in mean.iter_mut().zip(features[i].as_slice()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= members.len() as f64;
        }
        // Closest member to the mean.
        let rep = members
            .iter()
            .copied()
            .min_by(|&a, &b| {
                let da = phaselab_stats::distance_sq(features[a].as_slice(), &mean);
                let db = phaselab_stats::distance_sq(features[b].as_slice(), &mean);
                da.partial_cmp(&db).expect("finite distances")
            })
            .expect("non-empty cluster");
        points.push(SimPoint {
            interval: rep,
            cluster,
            weight: members.len() as f64 / total,
        });
    }
    points
}

/// Reconstructs the execution's aggregate feature vector from weighted
/// simulation points: `Σ weight × features[point]`.
pub fn weighted_estimate(points: &[SimPoint], features: &[FeatureVector]) -> Vec<f64> {
    let mut est = vec![0.0; NUM_FEATURES];
    for p in points {
        for (e, &v) in est.iter_mut().zip(features[p.interval].as_slice()) {
            *e += p.weight * v;
        }
    }
    est
}

/// Mean absolute error between a weighted simulation-point estimate and
/// the true per-interval mean, over a feature subset (e.g. the
/// instruction-mix block, whose entries are commensurable fractions).
pub fn reconstruction_error(
    points: &[SimPoint],
    features: &[FeatureVector],
    feature_range: std::ops::Range<usize>,
) -> f64 {
    let est = weighted_estimate(points, features);
    let n = features.len() as f64;
    let mut truth = vec![0.0; NUM_FEATURES];
    for fv in features {
        for (t, &v) in truth.iter_mut().zip(fv.as_slice()) {
            *t += v / n;
        }
    }
    let len = feature_range.len() as f64;
    feature_range
        .map(|i| (est[i] - truth[i]).abs())
        .sum::<f64>()
        / len
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(mem: f64) -> FeatureVector {
        let mut f = FeatureVector::zeros();
        f[0] = mem; // mix_mem_read
        f[6] = 1.0 - mem; // mix_int_add
        f
    }

    fn two_phase() -> (PhaseTimeline, Vec<FeatureVector>) {
        // 6 intervals at 10% memory, then 4 at 50%.
        let timeline = PhaseTimeline {
            clusters: vec![1, 1, 1, 1, 1, 1, 2, 2, 2, 2],
        };
        let features: Vec<FeatureVector> = (0..10)
            .map(|i| if i < 6 { fv(0.1) } else { fv(0.5) })
            .collect();
        (timeline, features)
    }

    #[test]
    fn one_point_per_phase_with_correct_weights() {
        let (t, f) = two_phase();
        let pts = simulation_points(&t, &f);
        assert_eq!(pts.len(), 2);
        assert!((pts[0].weight - 0.6).abs() < 1e-12);
        assert!((pts[1].weight - 0.4).abs() < 1e-12);
        assert!(pts[0].interval < 6);
        assert!(pts[1].interval >= 6);
        let wsum: f64 = pts.iter().map(|p| p.weight).sum();
        assert!((wsum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_estimate_recovers_homogeneous_phases() {
        let (t, f) = two_phase();
        let pts = simulation_points(&t, &f);
        let est = weighted_estimate(&pts, &f);
        // True mean memory fraction: 0.6*0.1 + 0.4*0.5 = 0.26.
        assert!((est[0] - 0.26).abs() < 1e-12);
        let err = reconstruction_error(&pts, &f, 0..20);
        assert!(err < 1e-12, "perfect phases reconstruct exactly, err {err}");
    }

    #[test]
    fn noisy_phases_reconstruct_approximately() {
        // Add within-phase noise: reconstruction error stays small
        // relative to the between-phase signal.
        let timeline = PhaseTimeline {
            clusters: (0..20).map(|i| if i < 10 { 1 } else { 2 }).collect(),
        };
        let features: Vec<FeatureVector> = (0..20)
            .map(|i| {
                let base = if i < 10 { 0.1 } else { 0.5 };
                fv(base + 0.02 * ((i % 5) as f64 - 2.0) / 2.0)
            })
            .collect();
        let pts = simulation_points(&timeline, &features);
        let err = reconstruction_error(&pts, &features, 0..20);
        assert!(err < 0.02, "reconstruction error {err}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_rejected() {
        let t = PhaseTimeline { clusters: vec![0] };
        let _ = simulation_points(&t, &[]);
    }
}
