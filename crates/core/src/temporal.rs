//! Temporal phase analysis: classify every interval of one execution
//! against a study's phase taxonomy and examine the time-varying
//! structure.
//!
//! The paper's §2.1 motivates phase-level characterization with programs
//! whose behavior changes over time; its related-work section connects
//! the cluster taxonomy to SimPoint-style simulation-point selection.
//! This module provides both views: a per-execution [`PhaseTimeline`]
//! (which cluster each consecutive interval belongs to) and its run/
//! transition structure.

use phaselab_workloads::Benchmark;

use crate::characterize::characterize_program;
use crate::config::StudyConfig;
use crate::pipeline::StudyResult;

/// The phase structure of one benchmark execution: one cluster id per
/// consecutive interval, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseTimeline {
    /// Cluster assigned to each interval, in execution order.
    pub clusters: Vec<usize>,
}

impl PhaseTimeline {
    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Returns `true` for an empty timeline.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Number of phase transitions (adjacent intervals in different
    /// clusters).
    pub fn transitions(&self) -> usize {
        self.clusters.windows(2).filter(|w| w[0] != w[1]).count()
    }

    /// The distinct clusters visited, in first-appearance order.
    pub fn distinct_phases(&self) -> Vec<usize> {
        let mut seen = Vec::new();
        for &c in &self.clusters {
            if !seen.contains(&c) {
                seen.push(c);
            }
        }
        seen
    }

    /// Run-length encoding: `(cluster, consecutive intervals)` pairs.
    pub fn runs(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for &c in &self.clusters {
            match out.last_mut() {
                Some((last, n)) if *last == c => *n += 1,
                _ => out.push((c, 1)),
            }
        }
        out
    }

    /// A compact one-line rendering (`A×12 B×3 A×9 …`), mapping clusters
    /// to letters in first-appearance order.
    pub fn render(&self) -> String {
        let order = self.distinct_phases();
        let symbol = |c: usize| -> char {
            let idx = order.iter().position(|&x| x == c).expect("visited cluster");
            if idx < 26 {
                (b'A' + idx as u8) as char
            } else {
                '?'
            }
        };
        self.runs()
            .iter()
            .map(|&(c, n)| format!("{}×{n}", symbol(c)))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Characterizes one benchmark input at the study's interval length and
/// classifies every interval against the study's clustering.
///
/// # Errors
///
/// Returns a [`QuarantinedBenchmark`](crate::QuarantinedBenchmark)
/// record if the workload faults.
///
/// # Panics
///
/// Panics if `input` is out of range for the benchmark.
pub fn phase_timeline(
    result: &StudyResult,
    bench: &Benchmark,
    input: usize,
    cfg: &StudyConfig,
) -> Result<PhaseTimeline, crate::QuarantinedBenchmark> {
    let program = bench.build(cfg.scale, input);
    let (features, _) =
        characterize_program(&program, cfg.interval_len, cfg.max_instructions_per_run).map_err(
            |error| crate::QuarantinedBenchmark {
                name: bench.name().to_string(),
                suite: bench.suite(),
                input,
                input_name: bench.input_names()[input].to_string(),
                cause: crate::QuarantineCause::Fault(error),
            },
        )?;
    let clusters = features
        .iter()
        .map(|fv| result.classify(fv.as_slice()).0)
        .collect();
    Ok(PhaseTimeline { clusters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_study;
    use phaselab_workloads::{catalog, Suite};

    fn study_and_catalog() -> (StudyResult, Vec<Benchmark>) {
        let mut cfg = StudyConfig::smoke();
        cfg.suites = Some(vec![Suite::Bmw, Suite::MediaBench2]);
        (run_study(&cfg).expect("smoke study"), catalog())
    }

    #[test]
    fn timeline_structure_is_consistent() {
        let (r, all) = study_and_catalog();
        let bench = all
            .iter()
            .find(|b| b.suite() == Suite::MediaBench2 && b.name() == "jpeg")
            .unwrap();
        let t = phase_timeline(&r, bench, 0, &r.config.clone()).expect("no fault");
        assert!(!t.is_empty());
        // Runs re-assemble into the timeline.
        let total: usize = t.runs().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, t.len());
        assert_eq!(t.runs().len(), t.transitions() + 1);
        assert!(t.distinct_phases().len() <= t.len());
        // Every cluster id is valid.
        assert!(t.clusters.iter().all(|&c| c < r.clustering.k()));
    }

    #[test]
    fn multi_phase_benchmark_shows_transitions() {
        let (r, all) = study_and_catalog();
        // jpeg has three kernels (color convert / DCT / entropy): its
        // timeline must visit more than one phase.
        let bench = all
            .iter()
            .find(|b| b.suite() == Suite::MediaBench2 && b.name() == "jpeg")
            .unwrap();
        let t = phase_timeline(&r, bench, 0, &r.config.clone()).expect("no fault");
        assert!(
            t.distinct_phases().len() >= 2,
            "expected multiple phases, got {}",
            t.render()
        );
    }

    #[test]
    fn render_is_compact_and_total() {
        let t = PhaseTimeline {
            clusters: vec![3, 3, 7, 7, 7, 3],
        };
        assert_eq!(t.render(), "A×2 B×3 A×1");
        assert_eq!(t.transitions(), 2);
        assert_eq!(t.distinct_phases(), vec![3, 7]);
    }

    #[test]
    fn classification_matches_study_assignments() {
        // Projecting a study's own sampled rows must land them in their
        // own clusters.
        let (r, _) = study_and_catalog();
        for row in (0..r.features.rows()).step_by(7) {
            let (cluster, _) = r.classify(r.features.row(row));
            assert_eq!(
                cluster, r.clustering.assignments[row],
                "row {row} classified into a different cluster"
            );
        }
    }
}
