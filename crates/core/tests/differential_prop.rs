//! Property-based differential testing of the block engine against the
//! per-instruction oracle.
//!
//! Programs are generated *correct by construction* so they pass the
//! static verifier (the contract the block engine is specified against:
//! only verified programs reach either engine in the pipeline), then
//! both engines run them to completion and every observable is
//! compared: the instruction-record stream, the outcome, the faulting
//! error (if any), and final machine state. Fuzzed dimensions:
//!
//! * body shape — random straight-line ops, an if/else diamond, an
//!   optional call/ret pair, and a data-dependent memory walk;
//! * fault position — the walk can be sized to run off the end of the
//!   data segment partway through the loop (the address is loop-carried,
//!   so the verifier cannot constant-fold it and both engines must
//!   fault at the same dynamic instruction);
//! * watchdog cutoffs — the block engine is also driven in small
//!   fixed-budget slices, so pauses land mid-block and resume must be
//!   exact;
//! * interval boundaries — both engines feed `IntervalCharacterizer`s
//!   with a small fuzzed interval length, so blocks straddle interval
//!   boundaries at every offset; the feature vectors must be
//!   bit-identical.

use phaselab_mica::IntervalCharacterizer;
use phaselab_trace::{BlockSink, BlockToInstAdapter, InstRecord, VecSink};
use phaselab_vm::regs::*;
use phaselab_vm::Asm;
use phaselab_vm::{CompiledProgram, DataBuilder, Program, RunOutcome, Vm, VmError};
use proptest::prelude::*;

/// Builds a verified loop program from fuzz parameters.
///
/// Shape: a prologue initializing every register the body reads, then a
/// counted loop of `iters` iterations whose body is `ops` (each selector
/// picks one straight-line instruction), an if/else diamond, a memory
/// walk (`addr = base + i * step`, loop-carried so never statically
/// resolvable), an optional subroutine call, then `halt`. With `oob`
/// the step is sized so the walk faults partway through the loop.
fn gen_program(
    iters: u64,
    ops: &[u8],
    cond_sel: u8,
    use_call: bool,
    stride: u64,
    oob: bool,
) -> Program {
    let mut data = DataBuilder::new();
    let elems = 1 + (iters - 1) * stride;
    let base = data.alloc_u64(elems);
    // The VM pads the data segment to a 4 KiB page plus a guard page
    // (see `Program::from_parts`), so an out-of-bounds walk must step
    // far enough to clear that padding. Pick the step so the fault
    // lands at roughly the midpoint iteration — never iteration 0
    // (`i = 0` reads `base`, always in bounds) and always before the
    // loop exits.
    let step = if oob {
        let mem_size = ((elems * 8 + 4095) & !4095) + 4096;
        let fault_iter = (iters / 2).max(1);
        (mem_size - base).div_ceil(fault_iter).next_multiple_of(8)
    } else {
        8 * stride
    };

    let mut a = Asm::new();
    a.li(T0, 0); // i
    a.li(T1, iters as i64);
    a.li(T2, base as i64);
    a.li(S0, 3);
    a.li(S1, 5);
    a.li(S2, 0x5a5a);
    a.li(S3, 0);
    a.fli(FT0, 1.5);
    a.fli(FT1, -0.25);
    a.label("loop");
    // Loop-carried address: the verifier cannot constant-fold T0
    // across the backedge join, so this access is never statically
    // checked — the OOB variant faults at runtime instead.
    a.muli(T3, T0, step as i64);
    a.add(T3, T3, T2);
    a.sd(S0, T3, 0);
    for &op in ops {
        match op % 12 {
            0 => a.add(S0, S0, T0),
            1 => a.mul(S1, S1, S0),
            2 => a.xor(S2, S0, S1),
            3 => a.addi(S0, S0, 7),
            4 => a.fadd(FT0, FT0, FT1),
            5 => a.fmul(FT1, FT0, FT1),
            6 => a.ld(T4, T3, 0),
            7 => a.sltu(S3, S0, S1),
            8 => a.srli(S2, S2, 1),
            // Div/rem by a possibly-zero register: defined results in
            // this ISA, NOT faults — both engines must agree on that.
            9 => a.div(S3, S1, S0),
            10 => a.rem(S3, S0, S2),
            _ => a.nop(),
        }
    }
    match cond_sel % 4 {
        0 => a.beq(S0, S1, "then"),
        1 => a.bne(S0, S1, "then"),
        2 => a.blt(S0, S1, "then"),
        _ => a.bge(S0, S1, "then"),
    }
    a.xor(S2, S2, S0);
    a.j("join");
    a.label("then");
    a.add(S2, S2, S1);
    a.label("join");
    if use_call {
        a.call("leaf");
    }
    a.addi(T0, T0, 1);
    a.blt(T0, T1, "loop");
    a.halt();
    if use_call {
        a.label("leaf");
        a.add(S3, S3, T0);
        a.ret();
    }
    let program = a.assemble(data).expect("assembles");
    program.verify().expect("generated programs are verified");
    program
}

fn run_inst(program: &Program) -> (Result<RunOutcome, VmError>, Vec<InstRecord>, Vm<'_>) {
    let mut vm = Vm::new(program);
    let mut sink = VecSink::new();
    let out = vm.run(&mut sink, u64::MAX);
    (out, sink.into_records(), vm)
}

fn run_block(
    program: &Program,
    slice: u64,
) -> (Result<RunOutcome, VmError>, Vec<InstRecord>, Vm<'_>) {
    let compiled = CompiledProgram::compile(program);
    let mut vm = Vm::new(program);
    let mut sink = BlockToInstAdapter::new(VecSink::new());
    let mut total = RunOutcome {
        instructions: 0,
        blocks: 0,
        halted: false,
    };
    // Slice the run like the watchdog does, so cutoffs land mid-block.
    let out = loop {
        match vm.run_blocks(&compiled, &mut sink, slice) {
            Ok(o) => {
                total.instructions += o.instructions;
                total.blocks += o.blocks;
                if o.halted {
                    total.halted = true;
                    break Ok(total);
                }
            }
            Err(e) => break Err(e),
        }
    };
    sink.finish();
    (out, sink.into_inner().into_records(), vm)
}

/// Asserts every observable of the two engines agrees. Returns the
/// record stream so callers can make additional assertions.
fn assert_equivalent(program: &Program, slice: u64) -> Result<Vec<InstRecord>, String> {
    let (out_i, recs_i, vm_i) = run_inst(program);
    let (out_b, recs_b, vm_b) = run_block(program, slice);
    match (&out_i, &out_b) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert!(a.halted && b.halted);
            // `executed()` excludes a faulting call's instructions, so
            // it is only comparable between runs that completed (the
            // sliced block run and the one-shot oracle take different
            // numbers of calls). On a fault the record streams and the
            // error's pc pin the fault position instead.
            prop_assert_eq!(vm_i.executed(), vm_b.executed());
        }
        (Err(a), Err(b)) => prop_assert_eq!(a, b),
        _ => prop_assert!(false, "outcomes diverge: {:?} vs {:?}", out_i, out_b),
    }
    prop_assert_eq!(recs_i.len(), recs_b.len());
    prop_assert_eq!(&recs_i, &recs_b);
    for r in [T0, T3, S0, S1, S2, S3] {
        prop_assert_eq!(vm_i.reg(r), vm_b.reg(r));
    }
    Ok(recs_i)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn halting_programs_match_oracle(
        iters in 1u64..40,
        ops in proptest::collection::vec(0u8..12, 6),
        cond_sel in 0u8..4,
        call_sel in 0u8..2,
        stride in 1u64..4,
        slice in 1u64..23,
    ) {
        let program = gen_program(iters, &ops, cond_sel, call_sel == 1, stride, false);
        let recs = assert_equivalent(&program, slice)?;
        prop_assert!(!recs.is_empty());
    }

    #[test]
    fn faulting_programs_fault_at_the_same_instruction(
        iters in 2u64..40,
        ops in proptest::collection::vec(0u8..12, 4),
        cond_sel in 0u8..4,
        call_sel in 0u8..2,
        stride in 1u64..4,
        slice in 1u64..23,
    ) {
        let program = gen_program(iters, &ops, cond_sel, call_sel == 1, stride, true);
        let (out, _, _) = run_inst(&program);
        // The walk is sized to run off the data segment mid-loop.
        prop_assert!(
            matches!(out, Err(VmError::MemOutOfBounds { .. })),
            "expected an OOB fault, got {:?}", out
        );
        assert_equivalent(&program, slice)?;
    }

    /// The abstract interpreter's soundness contract, checked
    /// differentially against both engines: for any verified program,
    /// the dynamic instruction count of a halting run lies in
    /// `[inst_min, inst_max]` (whenever the upper bound is finite), and
    /// every dynamically touched byte lies inside the static footprint.
    /// The block engine additionally runs under adversarial watchdog
    /// slices, so the bounds must survive mid-block cutoffs and resume.
    #[test]
    fn static_bounds_contain_dynamic_behavior(
        iters in 1u64..40,
        ops in proptest::collection::vec(0u8..12, 6),
        cond_sel in 0u8..4,
        call_sel in 0u8..2,
        stride in 1u64..4,
        slice in 1u64..23,
    ) {
        let program = gen_program(iters, &ops, cond_sel, call_sel == 1, stride, false);
        let report = program.analyze().expect("generated programs verify");

        // The generated loop is counted (li bound, +1 induction), so
        // the trip solver must produce a finite budget — a `None` here
        // is a precision regression, not just imprecision.
        let max = report.inst_max.expect("counted loop must have a finite budget");
        prop_assert!(report.inst_min <= max);

        let (out_i, recs_i, _) = run_inst(&program);
        let out = out_i.expect("non-oob programs halt");
        prop_assert!(
            out.instructions >= report.inst_min,
            "halting run executed {} < static minimum {}",
            out.instructions, report.inst_min
        );
        prop_assert!(
            out.instructions <= max,
            "run executed {} > static budget {}",
            out.instructions, max
        );

        // Footprint containment: every touched byte inside [start, end).
        let (lo, hi) = report.footprint;
        for r in &recs_i {
            if let Some(m) = r.mem {
                prop_assert!(
                    m.addr >= lo && m.addr + u64::from(m.size) <= hi,
                    "access {:#x}+{} outside static footprint [{:#x}, {:#x})",
                    m.addr, m.size, lo, hi
                );
            }
        }

        // The same bounds hold when the watchdog slices the block
        // engine mid-block: pausing and resuming must not manufacture
        // instructions outside the static budget.
        let (out_b, recs_b, _) = run_block(&program, slice);
        let out_b = out_b.expect("non-oob programs halt");
        prop_assert!(out_b.instructions >= report.inst_min);
        prop_assert!(out_b.instructions <= max);
        for r in &recs_b {
            if let Some(m) = r.mem {
                prop_assert!(m.addr >= lo && m.addr + u64::from(m.size) <= hi);
            }
        }
    }

    /// Faulting runs stay within the static *upper* bound too (the
    /// budget bounds any run, not just halting ones), and the analyzer
    /// must flag the faulting walk as possibly out of segment.
    #[test]
    fn static_budget_bounds_faulting_runs(
        iters in 2u64..40,
        ops in proptest::collection::vec(0u8..12, 4),
        cond_sel in 0u8..4,
        call_sel in 0u8..2,
        stride in 1u64..4,
        slice in 1u64..23,
    ) {
        let program = gen_program(iters, &ops, cond_sel, call_sel == 1, stride, true);
        let report = program.analyze().expect("generated programs verify");
        prop_assert!(
            report.sites.iter().any(|s| s.may_exceed),
            "an out-of-bounds walk must be flagged may_exceed"
        );
        let (out_i, _, _) = run_inst(&program);
        prop_assert!(matches!(out_i, Err(VmError::MemOutOfBounds { .. })));
        if let Some(max) = report.inst_max {
            // The faulting run stopped early; its executed count still
            // respects the budget — under slicing as well.
            let (_, recs_b, _) = run_block(&program, slice);
            prop_assert!(recs_b.len() as u64 <= max);
        }
    }

    #[test]
    fn characterized_features_are_bit_identical(
        iters in 1u64..40,
        ops in proptest::collection::vec(0u8..12, 6),
        cond_sel in 0u8..4,
        stride in 1u64..4,
        // Small prime-ish intervals so block boundaries straddle
        // interval boundaries at many distinct offsets.
        interval in 3u64..41,
    ) {
        let program = gen_program(iters, &ops, cond_sel, true, stride, false);

        let mut chr_i = IntervalCharacterizer::new(interval).keep_tail(true);
        let mut vm = Vm::new(&program);
        vm.run(&mut chr_i, u64::MAX).expect("halts");
        chr_i.finish();

        let compiled = CompiledProgram::compile(&program);
        let mut chr_b = IntervalCharacterizer::new(interval).keep_tail(true);
        let mut vm = Vm::new(&program);
        vm.run_blocks(&compiled, &mut chr_b, u64::MAX).expect("halts");
        chr_b.finish();

        let fi = chr_i.into_features();
        let fb = chr_b.into_features();
        prop_assert_eq!(fi.len(), fb.len());
        for (a, b) in fi.iter().zip(&fb) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "feature bits diverge");
            }
        }
    }
}
