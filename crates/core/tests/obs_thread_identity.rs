//! Manifest determinism across thread counts, with the block-engine VM
//! counters live.
//!
//! Runs in its own process (integration test binary), so installing the
//! process-wide `phaselab-obs` registry cannot leak into unit tests.
//! Everything lives in one `#[test]` because the registry is global
//! state shared by all tests in this binary.

use phaselab_core::{run_study, StudyConfig};
use phaselab_obs::{structural_prefix, Json};
use phaselab_workloads::Suite;

fn study_manifest(threads: usize) -> String {
    let reg = phaselab_obs::install();
    reg.reset();
    let mut cfg = StudyConfig::smoke();
    cfg.suites = Some(vec![Suite::Bmw]);
    cfg.threads = threads;
    run_study(&cfg).expect("smoke study");
    // Config section mirrors what `repro` emits: deterministic inputs
    // only, never the thread count itself.
    let config = vec![
        ("seed".to_string(), Json::U64(cfg.seed)),
        ("engine".to_string(), Json::Str(cfg.engine.name().into())),
    ];
    phaselab_obs::manifest_json(reg, &config, true)
}

#[test]
fn structural_manifest_is_byte_identical_across_thread_counts() {
    let m1 = study_manifest(1);

    // The block engine dispatches whole basic blocks, so the manifest
    // must report strictly fewer dispatch units than instructions —
    // that gap is the dispatch overhead the engine amortizes away.
    let reg = phaselab_obs::registry().expect("installed");
    let inst = reg
        .counter_value("vm.instructions")
        .expect("vm.instructions");
    let blocks = reg.counter_value("vm.blocks").expect("vm.blocks");
    let slices = reg.counter_value("vm.slices").expect("vm.slices");
    assert!(inst > 0);
    assert!(blocks > 0);
    assert!(
        blocks < inst,
        "block engine must dispatch fewer units ({blocks}) than instructions ({inst})"
    );
    assert!(slices > 0 && slices <= blocks);

    // The static pre-flight contributes a named structural section: one
    // entry per benchmark with the analyzer's bounds. It must be inside
    // the structural prefix (and therefore thread-identical below).
    assert!(
        structural_prefix(&m1).contains("\"static_analysis\""),
        "static_analysis section missing from the structural prefix"
    );
    assert!(structural_prefix(&m1).contains("\"BMW/"));
    assert!(
        reg.counter_value("static.benchmarks.analyzed").unwrap_or(0) > 0,
        "static pre-flight did not run"
    );

    let m2 = study_manifest(2);
    let m4 = study_manifest(4);
    assert_eq!(
        structural_prefix(&m1),
        structural_prefix(&m2),
        "structural manifest must not depend on thread count (1 vs 2)"
    );
    assert_eq!(
        structural_prefix(&m2),
        structural_prefix(&m4),
        "structural manifest must not depend on thread count (2 vs 4)"
    );
    // Wall-clock data still renders, after the structural prefix.
    assert!(m1.contains("\"timings\""));
}
