//! The multi-population genetic algorithm.
//!
//! Fitness evaluation — by far the dominant cost — is batched and runs on
//! the shared `phaselab-par` executor: each generation first breeds every
//! child with the sequential RNG stream, then scores the whole brood in
//! parallel. Scoring never touches the RNG, so the evolution trajectory
//! (and therefore the result) is bit-identical for every thread count.

use phaselab_par::{effective_threads, parallel_map};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`select_features`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaConfig {
    /// Number of independent populations (migration moves solutions
    /// between them).
    pub populations: usize,
    /// Genomes per population.
    pub population_size: usize,
    /// Stop after this many generations without fitness improvement.
    pub patience: usize,
    /// Hard cap on generations.
    pub max_generations: usize,
    /// Per-gene mutation probability (a mutation swaps a selected gene
    /// with an unselected one, preserving the selection count).
    pub mutation_rate: f64,
    /// Fraction of each next generation produced by crossover (the rest
    /// are mutated copies of selected parents).
    pub crossover_rate: f64,
    /// Migrate the best genome between populations every this many
    /// generations.
    pub migration_interval: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for fitness evaluation (0 = all cores). Results
    /// never depend on this.
    pub threads: usize,
}

impl GaConfig {
    /// The defaults used by the full study: 4 populations × 32 genomes,
    /// patience 12, up to 120 generations.
    pub fn study(seed: u64) -> Self {
        GaConfig {
            populations: 4,
            population_size: 32,
            patience: 12,
            max_generations: 120,
            mutation_rate: 0.08,
            crossover_rate: 0.6,
            migration_interval: 8,
            seed,
            threads: 1,
        }
    }

    /// A small, fast configuration for tests and smoke runs.
    pub fn fast(seed: u64) -> Self {
        GaConfig {
            populations: 2,
            population_size: 12,
            patience: 6,
            max_generations: 30,
            mutation_rate: 0.1,
            crossover_rate: 0.6,
            migration_interval: 4,
            seed,
            threads: 1,
        }
    }

    /// Sets the worker thread count (0 = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`GaConfigError`] describing the first contradictory
    /// setting: no populations, fewer than two genomes per population, a
    /// rate outside `[0, 1]`, or a zero migration interval.
    pub fn validate(&self) -> Result<(), GaConfigError> {
        if self.populations == 0 {
            return Err(GaConfigError::NoPopulations);
        }
        if self.population_size < 2 {
            return Err(GaConfigError::PopulationTooSmall {
                population_size: self.population_size,
            });
        }
        for (name, rate) in [
            ("mutation_rate", self.mutation_rate),
            ("crossover_rate", self.crossover_rate),
        ] {
            if !(0.0..=1.0).contains(&rate) {
                return Err(GaConfigError::RateOutOfRange { name, rate });
            }
        }
        if self.migration_interval == 0 {
            return Err(GaConfigError::ZeroMigrationInterval);
        }
        Ok(())
    }
}

/// An invalid [`GaConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum GaConfigError {
    /// `populations` is zero.
    NoPopulations,
    /// `population_size` is below two (selection needs parents).
    PopulationTooSmall {
        /// The configured population size.
        population_size: usize,
    },
    /// A probability parameter lies outside `[0, 1]`.
    RateOutOfRange {
        /// Name of the offending field.
        name: &'static str,
        /// Its value.
        rate: f64,
    },
    /// `migration_interval` is zero.
    ZeroMigrationInterval,
}

impl std::fmt::Display for GaConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GaConfigError::NoPopulations => write!(f, "need at least one population"),
            GaConfigError::PopulationTooSmall { population_size } => {
                write!(f, "population size {population_size} below minimum of 2")
            }
            GaConfigError::RateOutOfRange { name, rate } => {
                write!(f, "{name} {rate} outside [0, 1]")
            }
            GaConfigError::ZeroMigrationInterval => {
                write!(f, "migration interval must be positive")
            }
        }
    }
}

impl std::error::Error for GaConfigError {}

/// The outcome of a GA run.
#[derive(Debug, Clone, PartialEq)]
pub struct GaResult {
    /// The best mask found (`true` = characteristic selected).
    pub genome: Vec<bool>,
    /// Its fitness.
    pub fitness: f64,
    /// Generations executed.
    pub generations: usize,
    /// Total fitness evaluations.
    pub evaluations: usize,
}

/// Selects exactly `k` of `num_genes` features maximizing `fitness`,
/// using a multi-population GA with mutation, crossover and migration
/// (§2.7 of the paper). Every candidate genome has exactly `k` genes set;
/// mutation and crossover preserve that invariant (offspring are
/// repaired).
///
/// Fitness calls are batched per generation and evaluated on up to
/// `cfg.threads` workers (0 = all cores); breeding stays sequential, so
/// the outcome is identical for every thread count.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `num_genes`, or if the configuration
/// has no populations or genomes.
pub fn select_features(
    num_genes: usize,
    k: usize,
    fitness: &(dyn Fn(&[bool]) -> f64 + Sync),
    cfg: &GaConfig,
) -> GaResult {
    assert!(k > 0 && k <= num_genes, "k out of range");
    assert!(
        cfg.populations > 0 && cfg.population_size > 1,
        "degenerate GA configuration"
    );

    let _span = phaselab_obs::span!("ga.select");
    let threads = effective_threads(cfg.threads);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluations = 0usize;

    // Initialize populations with random k-masks: breed every genome
    // first (sequential RNG), then score the whole batch in parallel.
    let init_masks: Vec<Vec<bool>> = (0..cfg.populations * cfg.population_size)
        .map(|_| random_mask(num_genes, k, &mut rng))
        .collect();
    let init_scores = parallel_map(&init_masks, threads, |g| fitness(g));
    evaluations += init_masks.len();
    let mut scored = init_masks.into_iter().zip(init_scores);
    let mut pops: Vec<Vec<(Vec<bool>, f64)>> = (0..cfg.populations)
        .map(|_| scored.by_ref().take(cfg.population_size).collect())
        .collect();

    let mut best: (Vec<bool>, f64) = pops
        .iter()
        .flatten()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
        .cloned()
        .expect("non-empty populations");

    let mut stale = 0usize;
    let mut generation = 0usize;
    while generation < cfg.max_generations && stale < cfg.patience {
        generation += 1;

        // Breed the next generation of every population with the
        // sequential RNG stream, deferring all fitness evaluations.
        let mut elites: Vec<(Vec<bool>, f64)> = Vec::with_capacity(cfg.populations);
        let mut brood: Vec<Vec<bool>> =
            Vec::with_capacity(cfg.populations * (cfg.population_size - 1));
        for pop in &mut pops {
            pop.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fitness"));
            let elite = pop[0].clone();
            let parents: Vec<Vec<bool>> = pop
                .iter()
                .take(pop.len() / 2)
                .map(|(g, _)| g.clone())
                .collect();
            for _ in 1..cfg.population_size {
                let a = &parents[rng.random_range(0..parents.len())];
                let mut child = if rng.random_range(0.0..1.0) < cfg.crossover_rate {
                    let b = &parents[rng.random_range(0..parents.len())];
                    crossover(a, b, k, &mut rng)
                } else {
                    a.clone()
                };
                mutate(&mut child, cfg.mutation_rate, &mut rng);
                brood.push(child);
            }
            elites.push(elite);
        }

        // Score the whole brood in one parallel batch, then reassemble
        // the populations in breeding order.
        let brood_scores = parallel_map(&brood, threads, |g| fitness(g));
        evaluations += brood.len();
        let mut scored_children = brood.into_iter().zip(brood_scores);
        for (pop, elite) in pops.iter_mut().zip(elites) {
            let mut next = vec![elite];
            next.extend(scored_children.by_ref().take(cfg.population_size - 1));
            *pop = next;
        }

        // Migration: best genome of each population replaces the worst of
        // the next.
        if cfg.populations > 1 && generation.is_multiple_of(cfg.migration_interval) {
            let champions: Vec<(Vec<bool>, f64)> = pops
                .iter()
                .map(|p| {
                    p.iter()
                        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
                        .cloned()
                        .expect("non-empty population")
                })
                .collect();
            let n = pops.len();
            for (i, pop) in pops.iter_mut().enumerate() {
                let incoming = champions[(i + 1) % n].clone();
                let worst = pop
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.1.partial_cmp(&b.1).expect("finite fitness"))
                    .map(|(idx, _)| idx)
                    .expect("non-empty population");
                pop[worst] = incoming;
            }
        }

        let gen_best = pops
            .iter()
            .flatten()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fitness"))
            .cloned()
            .expect("non-empty populations");
        if phaselab_obs::enabled() {
            use phaselab_obs::Class::Structural;
            // The sequential sum over populations in breeding order is a
            // fixed reduction order, so the mean is Structural-class.
            let (sum, count) = pops
                .iter()
                .flatten()
                .fold((0.0f64, 0u64), |(s, c), (_, f)| (s + f, c + 1));
            phaselab_obs::series_push("ga.best_fitness", Structural, gen_best.1);
            phaselab_obs::series_push("ga.mean_fitness", Structural, sum / count as f64);
        }
        if gen_best.1 > best.1 + 1e-12 {
            best = gen_best;
            stale = 0;
        } else {
            stale += 1;
        }
    }

    if phaselab_obs::enabled() {
        use phaselab_obs::Class::Structural;
        phaselab_obs::counter_add("ga.generations", Structural, generation as u64);
        phaselab_obs::counter_add("ga.evaluations", Structural, evaluations as u64);
    }

    GaResult {
        genome: best.0,
        fitness: best.1,
        generations: generation,
        evaluations,
    }
}

/// A uniformly random mask with exactly `k` bits set.
fn random_mask(n: usize, k: usize, rng: &mut StdRng) -> Vec<bool> {
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut mask = vec![false; n];
    for &i in idx.iter().take(k) {
        mask[i] = true;
    }
    mask
}

/// Uniform crossover followed by repair to exactly `k` selected genes.
fn crossover(a: &[bool], b: &[bool], k: usize, rng: &mut StdRng) -> Vec<bool> {
    let mut child: Vec<bool> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| if rng.random_range(0..2) == 0 { x } else { y })
        .collect();
    repair(&mut child, k, rng);
    child
}

/// Count-preserving mutation: each selected gene may swap places with a
/// random unselected gene.
fn mutate(genome: &mut [bool], rate: f64, rng: &mut StdRng) {
    let selected: Vec<usize> = (0..genome.len()).filter(|&i| genome[i]).collect();
    let unselected: Vec<usize> = (0..genome.len()).filter(|&i| !genome[i]).collect();
    if unselected.is_empty() {
        return;
    }
    for &i in &selected {
        if rng.random_range(0.0..1.0) < rate {
            let j = unselected[rng.random_range(0..unselected.len())];
            if !genome[j] {
                genome[i] = false;
                genome[j] = true;
            }
        }
    }
}

/// Adds or removes random genes until exactly `k` are selected.
fn repair(genome: &mut [bool], k: usize, rng: &mut StdRng) {
    loop {
        let count = genome.iter().filter(|&&g| g).count();
        match count.cmp(&k) {
            std::cmp::Ordering::Equal => return,
            std::cmp::Ordering::Less => {
                let candidates: Vec<usize> = (0..genome.len()).filter(|&i| !genome[i]).collect();
                let pick = candidates[rng.random_range(0..candidates.len())];
                genome[pick] = true;
            }
            std::cmp::Ordering::Greater => {
                let candidates: Vec<usize> = (0..genome.len()).filter(|&i| genome[i]).collect();
                let pick = candidates[rng.random_range(0..candidates.len())];
                genome[pick] = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(mask: &[bool]) -> usize {
        mask.iter().filter(|&&g| g).count()
    }

    #[test]
    fn finds_planted_optimum() {
        // Fitness strongly rewards genes 2, 5, 7.
        let target = [2usize, 5, 7];
        let fitness = move |mask: &[bool]| {
            target
                .iter()
                .map(|&t| if mask[t] { 10.0 } else { 0.0 })
                .sum::<f64>()
                - count(mask) as f64 * 0.01
        };
        let r = select_features(12, 3, &fitness, &GaConfig::study(3));
        assert_eq!(count(&r.genome), 3);
        assert!(r.genome[2] && r.genome[5] && r.genome[7], "{:?}", r.genome);
        assert!((r.fitness - 29.97).abs() < 1e-9);
    }

    #[test]
    fn respects_k_invariant_throughout() {
        let fitness = |mask: &[bool]| mask.iter().filter(|&&g| g).count() as f64;
        for k in [1, 5, 10] {
            let r = select_features(10, k, &fitness, &GaConfig::fast(1));
            assert_eq!(count(&r.genome), k);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let fitness = |mask: &[bool]| {
            mask.iter()
                .enumerate()
                .map(|(i, &g)| if g { (i as f64).sin() } else { 0.0 })
                .sum()
        };
        let a = select_features(20, 6, &fitness, &GaConfig::fast(9));
        let b = select_features(20, 6, &fitness, &GaConfig::fast(9));
        assert_eq!(a.genome, b.genome);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    fn identical_across_thread_counts() {
        let fitness = |mask: &[bool]| {
            mask.iter()
                .enumerate()
                .map(|(i, &g)| if g { ((i * i) as f64).cos() } else { 0.0 })
                .sum()
        };
        let base = select_features(16, 5, &fitness, &GaConfig::fast(4).with_threads(1));
        for threads in [2, 4, 0] {
            let other = select_features(16, 5, &fitness, &GaConfig::fast(4).with_threads(threads));
            assert_eq!(base.genome, other.genome);
            assert_eq!(base.fitness.to_bits(), other.fitness.to_bits());
            assert_eq!(base.evaluations, other.evaluations);
            assert_eq!(base.generations, other.generations);
        }
    }

    #[test]
    fn stops_on_patience() {
        // Constant fitness: should stop after `patience` stale generations.
        let fitness = |_: &[bool]| 1.0;
        let cfg = GaConfig::fast(2);
        let r = select_features(8, 3, &fitness, &cfg);
        assert!(r.generations <= cfg.patience + 1);
    }

    #[test]
    #[should_panic(expected = "k out of range")]
    fn rejects_bad_k() {
        let fitness = |_: &[bool]| 0.0;
        let _ = select_features(5, 6, &fitness, &GaConfig::fast(0));
    }

    #[test]
    fn validate_accepts_presets_and_rejects_degenerate_configs() {
        assert_eq!(GaConfig::study(0).validate(), Ok(()));
        assert_eq!(GaConfig::fast(0).validate(), Ok(()));

        let mut cfg = GaConfig::fast(0);
        cfg.populations = 0;
        assert_eq!(cfg.validate(), Err(GaConfigError::NoPopulations));

        let mut cfg = GaConfig::fast(0);
        cfg.population_size = 1;
        assert_eq!(
            cfg.validate(),
            Err(GaConfigError::PopulationTooSmall { population_size: 1 })
        );

        let mut cfg = GaConfig::fast(0);
        cfg.mutation_rate = 1.5;
        assert!(matches!(
            cfg.validate(),
            Err(GaConfigError::RateOutOfRange {
                name: "mutation_rate",
                ..
            })
        ));

        let mut cfg = GaConfig::fast(0);
        cfg.migration_interval = 0;
        assert_eq!(cfg.validate(), Err(GaConfigError::ZeroMigrationInterval));
    }

    #[test]
    fn repair_adjusts_counts() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut g = vec![true; 8];
        repair(&mut g, 3, &mut rng);
        assert_eq!(count(&g), 3);
        let mut g2 = vec![false; 8];
        repair(&mut g2, 5, &mut rng);
        assert_eq!(count(&g2), 5);
    }
}
