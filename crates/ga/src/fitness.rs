//! The paper's distance-correlation fitness function.

use phaselab_par::{effective_threads, parallel_chunks};
use phaselab_stats::{distance, pearson, rescaled_pca_space, Matrix};

/// Fitness of a characteristic mask: the Pearson correlation coefficient
/// between the pairwise distances of the prominent phases in the reduced
/// characteristic space and their distances in the full space.
///
/// Both distance sets are computed in the *rescaled PCA space* (normalize
/// → PCA, retain components with standard deviation > 1 → normalize), so
/// that correlation between characteristics does not inflate distances —
/// exactly the construction of §2.7 of the paper.
///
/// # Examples
///
/// ```
/// use phaselab_ga::DistanceCorrelationFitness;
/// use phaselab_stats::Matrix;
///
/// // Three phases described by 4 characteristics; the last two columns
/// // are pure noise copies of the first two, so half the mask suffices.
/// let m = Matrix::from_rows(&[
///     vec![0.0, 1.0, 0.0, 1.0],
///     vec![1.0, 0.0, 1.0, 0.0],
///     vec![1.0, 1.0, 1.0, 1.0],
/// ]);
/// let fit = DistanceCorrelationFitness::new(&m, 1.0);
/// let full = fit.score(&[true, true, true, true]);
/// let half = fit.score(&[true, true, false, false]);
/// assert!(full > 0.99);
/// assert!(half > 0.99);
/// ```
#[derive(Debug, Clone)]
pub struct DistanceCorrelationFitness {
    phases: Matrix,
    sd_threshold: f64,
    full_distances: Vec<f64>,
    threads: usize,
}

impl DistanceCorrelationFitness {
    /// Creates the fitness function for a phases-by-characteristics
    /// matrix, precomputing the full-space distances.
    ///
    /// # Panics
    ///
    /// Panics if `phases` has fewer than three rows (fewer than two
    /// distinct pairwise distances — correlation would be meaningless).
    pub fn new(phases: &Matrix, sd_threshold: f64) -> Self {
        assert!(
            phases.rows() >= 3,
            "need at least 3 phases for a distance correlation"
        );
        let full_space = rescaled_pca_space(phases, sd_threshold);
        let full_distances = pairwise_distances(&full_space, 1);
        DistanceCorrelationFitness {
            phases: phases.clone(),
            sd_threshold,
            full_distances,
            threads: 1,
        }
    }

    /// Sets the worker thread count for the distance kernel (0 = all
    /// cores). Scores are identical for every value; small problems run
    /// serially regardless, so a fitness shared by already-parallel GA
    /// workers does not oversubscribe the machine.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of characteristics.
    pub fn num_features(&self) -> usize {
        self.phases.cols()
    }

    /// Scores a mask (`true` = characteristic retained).
    ///
    /// Returns 0 for an empty mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the number of
    /// characteristics.
    pub fn score(&self, mask: &[bool]) -> f64 {
        assert_eq!(mask.len(), self.phases.cols(), "mask length mismatch");
        let selected: Vec<usize> = (0..mask.len()).filter(|&i| mask[i]).collect();
        if selected.is_empty() {
            return 0.0;
        }
        let reduced = self.phases.select_columns(&selected);
        let reduced_space = rescaled_pca_space(&reduced, self.sd_threshold);
        let reduced_distances = pairwise_distances(&reduced_space, self.threads);
        pearson(&self.full_distances, &reduced_distances)
    }
}

/// Below this many distance components (pairs × dimensionality) the
/// kernel stays serial: thread handoff would cost more than the math,
/// and fitness functions already scored on parallel GA workers should
/// not fan out again.
const PAIRWISE_PAR_THRESHOLD: usize = 1 << 16;

/// Rows per parallel chunk of the pairwise kernel. Fixed so the output
/// layout is a pure function of the input size.
const PAIRWISE_ROW_CHUNK: usize = 16;

/// The upper-triangle pairwise distances of the rows of `m`, in a fixed
/// (row-major) order: `(0,1), (0,2), …, (1,2), …`.
///
/// Row blocks are computed on up to `threads` workers (0 = all cores)
/// and concatenated in block order, reproducing the serial layout
/// exactly for any thread count.
pub(crate) fn pairwise_distances(m: &Matrix, threads: usize) -> Vec<f64> {
    let n = m.rows();
    if n < 2 {
        return Vec::new();
    }
    let work = n * (n - 1) / 2 * m.cols().max(1);
    let threads = if work < PAIRWISE_PAR_THRESHOLD {
        1
    } else {
        effective_threads(threads)
    };
    let row_block = |rows: std::ops::Range<usize>| -> Vec<f64> {
        let mut out = Vec::new();
        for i in rows {
            for j in (i + 1)..n {
                out.push(distance(m.row(i), m.row(j)));
            }
        }
        out
    };
    if threads <= 1 {
        return row_block(0..n);
    }
    parallel_chunks(n, PAIRWISE_ROW_CHUNK, threads, row_block)
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_phases(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<f64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.random_range(-1.0..1.0)).collect())
            .collect();
        Matrix::from_rows(&data)
    }

    #[test]
    fn full_mask_correlates_perfectly() {
        let m = random_phases(12, 6, 1);
        let fit = DistanceCorrelationFitness::new(&m, 1.0);
        let full = fit.score(&[true; 6]);
        assert!(full > 0.999, "full mask score {full}");
    }

    #[test]
    fn empty_mask_scores_zero() {
        let m = random_phases(10, 5, 2);
        let fit = DistanceCorrelationFitness::new(&m, 1.0);
        assert_eq!(fit.score(&[false; 5]), 0.0);
    }

    #[test]
    fn informative_subset_beats_noise_subset() {
        // Columns 0 and 1 are two independent signals (the full space is
        // two-dimensional); column 2 duplicates column 0 and column 3 is
        // constant. Selecting {0, 1} preserves both dimensions; selecting
        // {2, 3} loses the second one.
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|_| {
                let a: f64 = rng.random_range(-1.0..1.0);
                let b: f64 = rng.random_range(-1.0..1.0);
                vec![a, b, a, 7.0]
            })
            .collect();
        let m = Matrix::from_rows(&rows);
        // A permissive retention threshold keeps the comparison about the
        // selected columns rather than about Kaiser-criterion cutoffs on
        // weakly-correlated synthetic data.
        let fit = DistanceCorrelationFitness::new(&m, 0.5);
        let informative = fit.score(&[true, true, false, false]);
        let partial = fit.score(&[false, false, true, true]);
        assert!(informative > 0.95, "informative {informative}");
        assert!(
            informative > partial + 0.1,
            "informative {informative} vs partial {partial}"
        );
    }

    #[test]
    fn more_features_never_needed_for_duplicated_columns() {
        // Each column duplicated: half the mask preserves the geometry.
        let base = random_phases(15, 3, 4);
        let rows: Vec<Vec<f64>> = (0..15)
            .map(|r| {
                let mut v = base.row(r).to_vec();
                v.extend_from_slice(base.row(r));
                v
            })
            .collect();
        let m = Matrix::from_rows(&rows);
        let fit = DistanceCorrelationFitness::new(&m, 0.5);
        let half = fit.score(&[true, true, true, false, false, false]);
        assert!(half > 0.95, "duplicated-column half mask {half}");
    }

    #[test]
    fn pairwise_kernel_identical_across_thread_counts() {
        // Large enough to clear the parallel threshold.
        let m = random_phases(120, 24, 9);
        let serial = pairwise_distances(&m, 1);
        assert_eq!(serial.len(), 120 * 119 / 2);
        for threads in [2, 4, 0] {
            let par = pairwise_distances(&m, threads);
            let same = serial
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same && serial.len() == par.len(), "threads = {threads}");
        }
    }

    #[test]
    fn pairwise_kernel_handles_tiny_inputs() {
        assert!(pairwise_distances(&Matrix::zeros(1, 3), 4).is_empty());
        assert_eq!(pairwise_distances(&Matrix::zeros(2, 3), 4), vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn mask_length_checked() {
        let m = random_phases(5, 4, 5);
        let fit = DistanceCorrelationFitness::new(&m, 1.0);
        let _ = fit.score(&[true, true]);
    }
}
