//! Greedy forward-selection baseline.

/// Selects `k` features by greedy forward selection: starting from the
/// empty mask, repeatedly add the single feature that maximizes
/// `fitness`. A natural baseline for the genetic algorithm — greedy gets
/// trapped when characteristics are only jointly informative.
///
/// Returns the mask and its fitness.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `num_genes`.
///
/// # Examples
///
/// ```
/// use phaselab_ga::greedy_select;
///
/// let fitness = |mask: &[bool]| if mask[3] { 1.0 } else { 0.0 };
/// let (mask, fit) = greedy_select(6, 1, &fitness);
/// assert!(mask[3]);
/// assert_eq!(fit, 1.0);
/// ```
pub fn greedy_select(
    num_genes: usize,
    k: usize,
    fitness: &dyn Fn(&[bool]) -> f64,
) -> (Vec<bool>, f64) {
    assert!(k > 0 && k <= num_genes, "k out of range");
    let mut mask = vec![false; num_genes];
    let mut best_fit = f64::NEG_INFINITY;
    for _ in 0..k {
        let mut best_gene = None;
        for g in 0..num_genes {
            if mask[g] {
                continue;
            }
            mask[g] = true;
            let f = fitness(&mask);
            mask[g] = false;
            if best_gene.is_none() || f > best_fit {
                best_fit = f;
                best_gene = Some(g);
            }
        }
        mask[best_gene.expect("at least one unselected gene")] = true;
    }
    (mask, best_fit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_additively_best_genes() {
        let weights = [0.1, 5.0, 0.2, 3.0, 0.05];
        let fitness = move |mask: &[bool]| {
            mask.iter()
                .zip(&weights)
                .map(|(&m, &w)| if m { w } else { 0.0 })
                .sum()
        };
        let (mask, fit) = greedy_select(5, 2, &fitness);
        assert!(mask[1] && mask[3]);
        assert!((fit - 8.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_misses_jointly_informative_pairs() {
        // Genes 0 and 1 are only valuable together; gene 2 has a small
        // standalone value, so greedy takes it first and then can only
        // add one of the pair.
        let fitness = |mask: &[bool]| {
            let mut f = 0.0;
            if mask[0] && mask[1] {
                f += 10.0;
            }
            if mask[2] {
                f += 1.0;
            }
            f
        };
        let (mask, fit) = greedy_select(3, 2, &fitness);
        assert!(mask[2]);
        assert!(fit < 10.0, "greedy should miss the joint pair: {fit}");
        // The GA, in contrast, finds the pair.
        let ga = crate::select_features(3, 2, &fitness, &crate::GaConfig::fast(1));
        assert!((ga.fitness - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exact_k_selected() {
        let fitness = |_: &[bool]| 0.0;
        let (mask, _) = greedy_select(7, 4, &fitness);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 4);
    }
}
