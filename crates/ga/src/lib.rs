//! Genetic-algorithm feature selection for `phaselab`.
//!
//! Step 5 of the ISPASS 2008 methodology selects a small set of key
//! microarchitecture-independent characteristics for the kiviat plots. A
//! genetic algorithm searches over 69-bit masks; a mask's fitness is the
//! Pearson correlation between the pairwise distances of the prominent
//! phases in the *reduced* characteristic space and their distances in
//! the *full* space (both computed in the rescaled PCA space, to discount
//! inter-characteristic correlation).
//!
//! This crate provides:
//!
//! * [`select_features`] — the multi-population GA with mutation,
//!   crossover and migration described in the paper (§2.7),
//! * [`DistanceCorrelationFitness`] — the paper's fitness function,
//! * [`greedy_select`] — a forward-selection baseline for comparison.
//!
//! # Examples
//!
//! ```
//! use phaselab_ga::{select_features, GaConfig};
//!
//! // Toy fitness: prefer masks selecting the low-numbered genes.
//! let fitness = |mask: &[bool]| {
//!     mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| -(i as f64)).sum()
//! };
//! let result = select_features(10, 3, &fitness, &GaConfig::fast(1));
//! assert_eq!(result.genome.iter().filter(|&&g| g).count(), 3);
//! assert!(result.genome[0] && result.genome[1] && result.genome[2]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evolve;
mod fitness;
mod greedy;

pub use evolve::{select_features, GaConfig, GaConfigError, GaResult};
pub use fitness::DistanceCorrelationFitness;
pub use greedy::greedy_select;
