//! Whole-execution (aggregate) characterization.

use phaselab_trace::{InstRecord, TraceSink};

use crate::branch::BranchAnalyzer;
use crate::features::FeatureVector;
use crate::footprint::FootprintAnalyzer;
use crate::ilp::IlpAnalyzer;
use crate::mix::MixAnalyzer;
use crate::regtraffic::RegTrafficAnalyzer;
use crate::strides::StrideAnalyzer;
use crate::Analyzer;

/// Characterizes an entire execution as a *single* 69-characteristic
/// vector — the "aggregate workload characterization" the paper's §2.1
/// argues is misleading for multi-phase programs.
///
/// Provided so that aggregate-vs-phase comparisons (and prior-work
/// methodologies built on aggregate MICA data) can be reproduced against
/// the same analyzers as [`IntervalCharacterizer`](crate::IntervalCharacterizer).
///
/// # Examples
///
/// ```
/// use phaselab_mica::AggregateCharacterizer;
/// use phaselab_trace::{InstClass, InstRecord, TraceSink};
///
/// let mut agg = AggregateCharacterizer::new();
/// agg.observe(&InstRecord::new(0, InstClass::IntAdd));
/// agg.observe(&InstRecord::new(4, InstClass::MemRead));
/// let fv = agg.finish_features();
/// assert_eq!(fv[0], 0.5); // mix_mem_read
/// ```
#[derive(Debug)]
pub struct AggregateCharacterizer {
    count: u64,
    mix: MixAnalyzer,
    ilp: IlpAnalyzer,
    reg: RegTrafficAnalyzer,
    footprint: FootprintAnalyzer,
    strides: StrideAnalyzer,
    branch: BranchAnalyzer,
}

impl AggregateCharacterizer {
    /// Creates an aggregate characterizer with cold analyzer state.
    pub fn new() -> Self {
        AggregateCharacterizer {
            count: 0,
            mix: MixAnalyzer::new(),
            ilp: IlpAnalyzer::new(),
            reg: RegTrafficAnalyzer::new(),
            footprint: FootprintAnalyzer::new(),
            strides: StrideAnalyzer::new(),
            branch: BranchAnalyzer::new(),
        }
    }

    /// Instructions observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Emits the aggregate feature vector for everything observed so far.
    pub fn features(&self) -> FeatureVector {
        let mut fv = FeatureVector::zeros();
        self.mix.emit(&mut fv);
        self.ilp.emit(&mut fv);
        self.reg.emit(&mut fv);
        self.footprint.emit(&mut fv);
        self.strides.emit(&mut fv);
        self.branch.emit(&mut fv);
        fv
    }

    /// Consumes the characterizer and returns the aggregate features.
    pub fn finish_features(self) -> FeatureVector {
        self.features()
    }
}

impl Default for AggregateCharacterizer {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink for AggregateCharacterizer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        let idx = self.count;
        self.mix.observe(rec, idx);
        self.ilp.observe(rec, idx);
        self.reg.observe(rec, idx);
        self.footprint.observe(rec, idx);
        self.strides.observe(rec, idx);
        self.branch.observe(rec, idx);
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterizer::IntervalCharacterizer;
    use crate::features::FeatureCategory;
    use phaselab_trace::{ArchReg, InstClass, MemAccess};

    fn stream(n: u64) -> Vec<InstRecord> {
        let r = ArchReg::int(1);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    InstRecord::new(4 * (i % 128), InstClass::MemRead)
                        .with_reads(&[r])
                        .with_write(r)
                        .with_mem(MemAccess {
                            addr: i * 8,
                            size: 8,
                            is_store: false,
                        })
                } else {
                    InstRecord::new(4 * (i % 128), InstClass::IntAdd)
                        .with_reads(&[r])
                        .with_write(r)
                }
            })
            .collect()
    }

    #[test]
    fn aggregate_equals_single_interval_characterization() {
        // On an execution shorter than one interval, aggregate and
        // interval characterization must agree exactly.
        let recs = stream(500);
        let mut agg = AggregateCharacterizer::new();
        let mut chr = IntervalCharacterizer::new(1_000_000).keep_tail(true);
        for r in &recs {
            agg.observe(r);
            chr.observe(r);
        }
        chr.finish();
        assert_eq!(agg.finish_features(), chr.into_features()[0]);
    }

    #[test]
    fn aggregate_footprint_spans_whole_execution() {
        // Interval characterization resets footprints; the aggregate
        // view accumulates them — the defining difference.
        let recs = stream(1000);
        let mut agg = AggregateCharacterizer::new();
        let mut chr = IntervalCharacterizer::new(100);
        for r in &recs {
            agg.observe(r);
            chr.observe(r);
        }
        let agg_fp = agg.features().category(FeatureCategory::Footprint)[2];
        let max_interval_fp = chr
            .features()
            .iter()
            .map(|f| f.category(FeatureCategory::Footprint)[2])
            .fold(0.0_f64, f64::max);
        assert!(
            agg_fp > max_interval_fp * 2.0,
            "aggregate data footprint {agg_fp} vs max interval {max_interval_fp}"
        );
    }

    #[test]
    fn count_tracks_observations() {
        let mut agg = AggregateCharacterizer::new();
        for r in stream(42) {
            agg.observe(&r);
        }
        assert_eq!(agg.count(), 42);
    }
}
