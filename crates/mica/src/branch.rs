//! Branch predictability analyzer (14 features): taken/transition rates
//! and prediction-by-partial-matching (PPM) misprediction rates.

use phaselab_trace::InstRecord;

use crate::features::{FeatureVector, BRANCH_BASE};
use crate::fxhash::{mix64, FxHashMap};
use crate::Analyzer;

/// Deepest context length tracked by the PPM predictors.
const MAX_HIST: u32 = 12;

/// The three maximum history lengths of the characterization.
const DEPTHS: [u32; 3] = [4, 8, 12];

/// log2 of the number of entries in each direct-mapped PPM table.
const TABLE_BITS: u32 = 16;

/// One direct-mapped, tagged, generation-stamped PPM context table.
///
/// The theoretical PPM predictor of Chen, Coffey & Mudge keeps exact
/// per-context statistics; we approximate its storage with a large
/// direct-mapped tagged table (64-bit tags, replace-on-collision), which
/// keeps per-branch cost constant. Collisions are rare at 2^16 entries for
/// interval-sized working sets, so measured misprediction rates track the
/// exact predictor closely.
#[derive(Debug, Clone)]
struct PpmTable {
    entries: Vec<Entry>,
    gen: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    gen: u32,
    taken: u16,
    not_taken: u16,
}

impl PpmTable {
    fn new() -> Self {
        PpmTable {
            entries: vec![Entry::default(); 1 << TABLE_BITS],
            gen: 1,
        }
    }

    #[inline]
    fn slot(key: u64) -> usize {
        (key & ((1 << TABLE_BITS) - 1)) as usize
    }

    /// Returns `(taken, not_taken)` counts if the context has been seen.
    #[inline]
    fn lookup(&self, key: u64) -> Option<(u16, u16)> {
        let e = &self.entries[Self::slot(key)];
        (e.gen == self.gen && e.tag == key).then_some((e.taken, e.not_taken))
    }

    #[inline]
    fn update(&mut self, key: u64, taken: bool) {
        let gen = self.gen;
        let e = &mut self.entries[Self::slot(key)];
        if e.gen != gen || e.tag != key {
            *e = Entry {
                tag: key,
                gen,
                taken: 0,
                not_taken: 0,
            };
        }
        if taken {
            e.taken = e.taken.saturating_add(1);
        } else {
            e.not_taken = e.not_taken.saturating_add(1);
        }
    }

    fn reset(&mut self) {
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            // Generation wrapped: physically clear to avoid stale matches.
            self.entries.iter_mut().for_each(|e| *e = Entry::default());
            self.gen = 1;
        }
    }
}

/// Key for a PPM context: length, history bits, and (for per-address
/// tables) the branch PC.
#[inline]
fn context_key(len: u32, hist: u64, pc: u64) -> u64 {
    let masked = if len == 0 { 0 } else { hist & ((1 << len) - 1) };
    mix64(masked ^ ((len as u64) << 56) ^ pc.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One of the four predictor organizations: {global, local} history ×
/// {global, per-address} table.
#[derive(Debug, Clone)]
struct PpmPredictor {
    local_history: bool,
    per_address: bool,
    table: PpmTable,
    /// Misses per depth (4, 8, 12).
    misses: [u64; 3],
}

impl PpmPredictor {
    fn new(local_history: bool, per_address: bool) -> Self {
        PpmPredictor {
            local_history,
            per_address,
            table: PpmTable::new(),
            misses: [0; 3],
        }
    }

    #[inline]
    fn observe(&mut self, pc: u64, hist: u64, taken: bool) {
        let pc_key = if self.per_address { pc } else { 0 };
        // Walk contexts from longest to shortest; the first match at
        // length <= depth is the PPM prediction for that depth.
        let mut predictions: [Option<bool>; 3] = [None; 3];
        for len in (0..=MAX_HIST).rev() {
            if let Some((t, n)) = self.table.lookup(context_key(len, hist, pc_key)) {
                let predict_taken = t >= n;
                for (i, &depth) in DEPTHS.iter().enumerate() {
                    if len <= depth && predictions[i].is_none() {
                        predictions[i] = Some(predict_taken);
                    }
                }
                if predictions.iter().all(std::option::Option::is_some) {
                    break;
                }
            }
        }
        for (miss, pred) in self.misses.iter_mut().zip(predictions) {
            // An unseen branch (no context at any length) predicts
            // not-taken.
            let predicted = pred.unwrap_or(false);
            if predicted != taken {
                *miss += 1;
            }
        }
        for len in 0..=MAX_HIST {
            self.table.update(context_key(len, hist, pc_key), taken);
        }
    }

    fn reset(&mut self) {
        self.table.reset();
        self.misses = [0; 3];
    }
}

/// Computes the 14 branch-predictability characteristics of Table 1:
/// average transition rate, average taken rate, and misprediction rates of
/// the theoretical PPM predictor for global/local history, global and
/// per-address tables, and maximum history lengths 4, 8 and 12.
///
/// Only conditional branches participate; unconditional transfers are
/// perfectly predictable and excluded, as in MICA.
#[derive(Debug, Clone)]
pub struct BranchAnalyzer {
    branches: u64,
    taken: u64,
    transitions: u64,
    with_history: u64,
    last_outcome: FxHashMap<u64, bool>,
    global_hist: u64,
    local_hist: FxHashMap<u64, u64>,
    /// Order: GAg, GAp, PAg, PAp (history kind, then table kind).
    predictors: [PpmPredictor; 4],
}

impl BranchAnalyzer {
    /// Creates an analyzer with cold predictor state.
    pub fn new() -> Self {
        BranchAnalyzer {
            branches: 0,
            taken: 0,
            transitions: 0,
            with_history: 0,
            last_outcome: FxHashMap::default(),
            global_hist: 0,
            local_hist: FxHashMap::default(),
            predictors: [
                PpmPredictor::new(false, false), // GAg: global history, global table
                PpmPredictor::new(false, true),  // GAp: global history, per-address table
                PpmPredictor::new(true, false),  // PAg: local history, global table
                PpmPredictor::new(true, true),   // PAp: local history, per-address table
            ],
        }
    }
}

impl Default for BranchAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchAnalyzer {
    /// Observes one branch outcome directly — the block-path equivalent
    /// of [`Analyzer::observe`], fed from the block-exit
    /// [`BranchInfo`](phaselab_trace::BranchInfo) without materializing a
    /// record. Unconditional transfers are excluded, exactly as in the
    /// per-record path.
    #[inline]
    pub fn observe_branch(&mut self, pc: u64, branch: phaselab_trace::BranchInfo) {
        if !branch.conditional {
            return;
        }
        let taken = branch.taken;
        self.branches += 1;
        self.taken += taken as u64;

        if let Some(prev) = self.last_outcome.insert(pc, taken) {
            self.with_history += 1;
            if prev != taken {
                self.transitions += 1;
            }
        }

        let local = self.local_hist.entry(pc).or_insert(0);
        let local_before = *local;
        *local = ((*local << 1) | taken as u64) & ((1 << MAX_HIST) - 1);
        let global_before = self.global_hist;
        self.global_hist = ((self.global_hist << 1) | taken as u64) & ((1 << MAX_HIST) - 1);

        for p in &mut self.predictors {
            let hist = if p.local_history {
                local_before
            } else {
                global_before
            };
            p.observe(pc, hist, taken);
        }
    }
}

impl Analyzer for BranchAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, _index: u64) {
        let Some(branch) = rec.branch else { return };
        self.observe_branch(rec.pc, branch);
    }

    fn emit(&self, out: &mut FeatureVector) {
        out[BRANCH_BASE] = self.transitions as f64 / self.with_history.max(1) as f64;
        out[BRANCH_BASE + 1] = self.taken as f64 / self.branches.max(1) as f64;
        let denom = self.branches.max(1) as f64;
        for (pi, p) in self.predictors.iter().enumerate() {
            for (di, &m) in p.misses.iter().enumerate() {
                out[BRANCH_BASE + 2 + pi * 3 + di] = m as f64 / denom;
            }
        }
    }

    fn reset(&mut self) {
        self.branches = 0;
        self.taken = 0;
        self.transitions = 0;
        self.with_history = 0;
        self.last_outcome.clear();
        self.global_hist = 0;
        self.local_hist.clear();
        for p in &mut self.predictors {
            p.reset();
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // index loops over feature slots read clearest
mod tests {
    use super::*;
    use phaselab_trace::{BranchInfo, InstClass};

    fn branch(pc: u64, taken: bool) -> InstRecord {
        InstRecord::new(pc, InstClass::CondBranch).with_branch(BranchInfo {
            taken,
            target: 0,
            conditional: true,
        })
    }

    fn emit(a: &BranchAnalyzer) -> Vec<f64> {
        let mut out = FeatureVector::zeros();
        a.emit(&mut out);
        (0..14).map(|i| out[BRANCH_BASE + i]).collect()
    }

    #[test]
    fn taken_and_transition_rates() {
        let mut a = BranchAnalyzer::new();
        // T, T, N, T at one static branch: taken rate 3/4, transitions 2/3.
        for t in [true, true, false, true] {
            a.observe(&branch(0x40, t), 0);
        }
        let f = emit(&a);
        assert!((f[1] - 0.75).abs() < 1e-12);
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn always_taken_branch_is_nearly_perfectly_predicted() {
        let mut a = BranchAnalyzer::new();
        for i in 0..1000u64 {
            a.observe(&branch(0x40, true), i);
        }
        let f = emit(&a);
        for i in 2..14 {
            assert!(f[i] < 0.02, "PPM miss rate {i}: {}", f[i]);
        }
        assert_eq!(f[0], 0.0); // no transitions
    }

    #[test]
    fn alternating_branch_is_learned_by_ppm() {
        // T,N,T,N… is perfectly predictable from 1 bit of history once
        // warmed up.
        let mut a = BranchAnalyzer::new();
        for i in 0..2000u64 {
            a.observe(&branch(0x40, i % 2 == 0), i);
        }
        let f = emit(&a);
        assert!((f[0] - 1.0).abs() < 1e-3, "transition rate {}", f[0]);
        for i in 2..14 {
            assert!(f[i] < 0.05, "PPM should learn alternation, miss {}", f[i]);
        }
    }

    #[test]
    fn periodic_pattern_needs_enough_history() {
        // Period-10 pattern with one taken per period: 9 not-taken then 1
        // taken. Hist-4 cannot distinguish position inside the run of
        // not-takens; hist-12 can.
        let mut a = BranchAnalyzer::new();
        for i in 0..20_000u64 {
            a.observe(&branch(0x40, i % 10 == 9), i);
        }
        let f = emit(&a);
        let gag4 = f[2];
        let gag12 = f[4];
        assert!(
            gag12 < gag4 * 0.5 + 1e-9,
            "longer history should help: h4={gag4} h12={gag12}"
        );
        assert!(gag12 < 0.02);
    }

    #[test]
    fn random_branches_are_unpredictable() {
        // A pseudo-random direction stream: every predictor should miss
        // roughly half the time.
        let mut a = BranchAnalyzer::new();
        let mut x = 0x12345678u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            a.observe(&branch(0x40, (x >> 40) & 1 == 1), i);
        }
        let f = emit(&a);
        for i in 2..14 {
            assert!(
                (f[i] - 0.5).abs() < 0.1,
                "random stream miss rate {i}: {}",
                f[i]
            );
        }
    }

    #[test]
    fn per_address_tables_separate_conflicting_branches() {
        // Two branches with opposite constant directions, interleaved. A
        // per-address table keyed on PC predicts both perfectly even at
        // history length 0 contexts; the analyzer must keep them separate.
        let mut a = BranchAnalyzer::new();
        for i in 0..4000u64 {
            a.observe(&branch(0x40, true), i);
            a.observe(&branch(0x80, false), i);
        }
        let f = emit(&a);
        // GAp (global history, per-address) should be near perfect.
        assert!(f[5] < 0.02, "GAp hist4 {}", f[5]);
        // PAp too.
        assert!(f[11] < 0.02, "PAp hist4 {}", f[11]);
    }

    #[test]
    fn unconditional_branches_ignored() {
        let mut a = BranchAnalyzer::new();
        let rec = InstRecord::new(0, InstClass::Jump).with_branch(BranchInfo {
            taken: true,
            target: 0,
            conditional: false,
        });
        a.observe(&rec, 0);
        let f = emit(&a);
        assert_eq!(f[1], 0.0);
    }

    #[test]
    fn reset_forgets_learned_patterns() {
        let mut a = BranchAnalyzer::new();
        for i in 0..1000u64 {
            a.observe(&branch(0x40, true), i);
        }
        a.reset();
        assert_eq!(emit(&a), vec![0.0; 14]);
        // After reset, the first branch is again mispredicted (cold).
        a.observe(&branch(0x40, true), 0);
        let f = emit(&a);
        assert!(f[2] > 0.99, "cold predictor should miss the first branch");
    }

    #[test]
    fn ppm_table_generation_reset() {
        let mut t = PpmTable::new();
        t.update(42, true);
        assert_eq!(t.lookup(42), Some((1, 0)));
        t.reset();
        assert_eq!(t.lookup(42), None);
        t.update(42, false);
        assert_eq!(t.lookup(42), Some((0, 1)));
    }
}
