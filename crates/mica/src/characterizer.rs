//! The per-interval characterization driver.

use phaselab_trace::{BlockRecord, BlockSink, InstRecord, TraceSink};

use crate::branch::BranchAnalyzer;
use crate::features::FeatureVector;
use crate::footprint::FootprintAnalyzer;
use crate::ilp::IlpAnalyzer;
use crate::mix::MixAnalyzer;
use crate::regtraffic::RegTrafficAnalyzer;
use crate::strides::StrideAnalyzer;
use crate::Analyzer;

/// Drives all six MICA analyzers over a dynamic instruction stream and
/// emits one [`FeatureVector`] per instruction interval.
///
/// The characterizer is a [`TraceSink`]: attach it to a `phaselab-vm`
/// execution (or any other record producer). Analyzer state is reset at
/// every interval boundary, so each interval is characterized
/// independently — exactly how the paper treats its 100M-instruction
/// intervals.
///
/// By default a trailing partial interval is discarded (the paper only
/// considers full intervals); [`keep_tail`](Self::keep_tail) retains it,
/// which is convenient for short test programs.
///
/// # Examples
///
/// ```
/// use phaselab_mica::IntervalCharacterizer;
/// use phaselab_trace::{InstClass, InstRecord, TraceSink};
///
/// let mut chr = IntervalCharacterizer::new(50).keep_tail(true);
/// for i in 0..120 {
///     chr.observe(&InstRecord::new(4 * i, InstClass::IntAdd));
/// }
/// chr.finish();
/// assert_eq!(chr.features().len(), 3); // 50 + 50 + 20 (kept tail)
/// ```
#[derive(Debug)]
pub struct IntervalCharacterizer {
    interval_len: u64,
    keep_tail: bool,
    in_interval: u64,
    mix: MixAnalyzer,
    ilp: IlpAnalyzer,
    reg: RegTrafficAnalyzer,
    footprint: FootprintAnalyzer,
    strides: StrideAnalyzer,
    branch: BranchAnalyzer,
    features: Vec<FeatureVector>,
}

impl IntervalCharacterizer {
    /// Creates a characterizer with the given interval length (in dynamic
    /// instructions).
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: u64) -> Self {
        assert!(interval_len > 0, "interval length must be positive");
        IntervalCharacterizer {
            interval_len,
            keep_tail: false,
            in_interval: 0,
            mix: MixAnalyzer::new(),
            ilp: IlpAnalyzer::new(),
            reg: RegTrafficAnalyzer::new(),
            footprint: FootprintAnalyzer::new(),
            strides: StrideAnalyzer::new(),
            branch: BranchAnalyzer::new(),
            features: Vec::new(),
        }
    }

    /// Whether to emit a trailing partial interval on
    /// [`finish`](TraceSink::finish) (default: `false`).
    pub fn keep_tail(mut self, keep: bool) -> Self {
        self.keep_tail = keep;
        self
    }

    /// The interval length in dynamic instructions.
    pub fn interval_len(&self) -> u64 {
        self.interval_len
    }

    /// The feature vectors of all completed intervals so far.
    pub fn features(&self) -> &[FeatureVector] {
        &self.features
    }

    /// Consumes the characterizer and returns the interval feature
    /// vectors.
    pub fn into_features(self) -> Vec<FeatureVector> {
        self.features
    }

    /// Flushes the trailing partial interval if `keep_tail` is set.
    ///
    /// Both [`TraceSink::finish`] and [`BlockSink::finish`] delegate here;
    /// the inherent method keeps `chr.finish()` unambiguous for callers
    /// that use the characterizer through either interface.
    pub fn finish(&mut self) {
        if self.keep_tail && self.in_interval > 0 {
            self.emit_interval();
        }
    }

    fn emit_interval(&mut self) {
        let mut fv = FeatureVector::zeros();
        self.mix.emit(&mut fv);
        self.ilp.emit(&mut fv);
        self.reg.emit(&mut fv);
        self.footprint.emit(&mut fv);
        self.strides.emit(&mut fv);
        self.branch.emit(&mut fv);
        self.features.push(fv);

        self.mix.reset();
        self.ilp.reset();
        self.reg.reset();
        self.footprint.reset();
        self.strides.reset();
        self.branch.reset();
        self.in_interval = 0;
    }
}

impl TraceSink for IntervalCharacterizer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        let idx = self.in_interval;
        self.mix.observe(rec, idx);
        self.ilp.observe(rec, idx);
        self.reg.observe(rec, idx);
        self.footprint.observe(rec, idx);
        self.strides.observe(rec, idx);
        self.branch.observe(rec, idx);
        self.in_interval += 1;
        if self.in_interval == self.interval_len {
            self.emit_interval();
        }
    }

    fn finish(&mut self) {
        IntervalCharacterizer::finish(self);
    }
}

impl BlockSink for IntervalCharacterizer {
    /// Consumes one executed block as a bulk update without materializing
    /// per-instruction records.
    ///
    /// The common case — the whole block lands inside the current interval
    /// — feeds every analyzer from the block's static data and its dynamic
    /// batch directly: the class histogram folds into the mix analyzer in
    /// one step, the contiguous pc span folds into the instruction
    /// footprint in `O(span/64)` set inserts, ILP and register traffic
    /// read the static operand lists straight from the templates, strides
    /// and the data footprint zip the per-execution address batch with the
    /// static access shapes, and the at-most-one branch outcome goes to
    /// the branch analyzer once per block. A block that straddles an
    /// interval boundary falls back to the exact per-record path, so
    /// intervals split at precisely the same instruction as under the
    /// per-instruction engine: features are bit-identical between the two
    /// paths.
    fn observe_block(&mut self, block: &BlockRecord<'_>) {
        let n = block.len() as u64;
        if n == 0 {
            return;
        }
        if self.interval_len - self.in_interval >= n {
            self.mix.observe_bulk(block.class_counts(), n);
            self.footprint.observe_instr_span(block.insts[0].pc, n);
            let mut addrs = block.mem_addrs.iter();
            for (idx, inst) in (self.in_interval..).zip(block.insts) {
                self.ilp.observe_ops(inst.reads, inst.write, idx);
                self.reg.observe_ops(inst.reads, inst.write, idx);
                if let Some(m) = inst.mem {
                    let addr = *addrs.next().expect("one address per memory access");
                    self.footprint.observe_data(addr, m.size);
                    self.strides.observe_access(inst.pc, addr, m.is_store);
                }
            }
            if let Some(branch) = block.branch {
                self.branch
                    .observe_branch(block.insts[n as usize - 1].pc, branch);
            }
            self.in_interval += n;
            if self.in_interval == self.interval_len {
                self.emit_interval();
            }
        } else {
            for rec in block.records() {
                self.observe(&rec);
            }
        }
    }

    fn finish(&mut self) {
        IntervalCharacterizer::finish(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{feature_index, FeatureCategory};
    use phaselab_trace::{ArchReg, BranchInfo, InstClass, MemAccess};

    fn synthetic_stream(chr: &mut IntervalCharacterizer, n: u64) {
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        for i in 0..n {
            let rec = match i % 4 {
                0 => InstRecord::new(4 * (i % 64), InstClass::MemRead)
                    .with_reads(&[r1])
                    .with_write(r2)
                    .with_mem(MemAccess {
                        addr: (i * 8) % 4096,
                        size: 8,
                        is_store: false,
                    }),
                1 => InstRecord::new(4 * (i % 64), InstClass::IntAdd)
                    .with_reads(&[r1, r2])
                    .with_write(r1),
                2 => InstRecord::new(4 * (i % 64), InstClass::CondBranch)
                    .with_reads(&[r1, r2])
                    .with_branch(BranchInfo {
                        taken: i % 8 < 4,
                        target: 0,
                        conditional: true,
                    }),
                _ => InstRecord::new(4 * (i % 64), InstClass::FpMul),
            };
            chr.observe(&rec);
        }
    }

    #[test]
    fn interval_boundaries_are_exact() {
        let mut chr = IntervalCharacterizer::new(100);
        synthetic_stream(&mut chr, 350);
        chr.finish();
        assert_eq!(chr.features().len(), 3);
    }

    #[test]
    fn keep_tail_emits_partial_interval() {
        let mut chr = IntervalCharacterizer::new(100).keep_tail(true);
        synthetic_stream(&mut chr, 350);
        chr.finish();
        assert_eq!(chr.features().len(), 4);
    }

    #[test]
    fn identical_intervals_have_identical_features() {
        // The synthetic stream's control/PC pattern has period 64, which
        // divides the interval length, and analyzers reset at boundaries,
        // so both intervals see behaviorally identical streams.
        let mut chr = IntervalCharacterizer::new(128);
        synthetic_stream(&mut chr, 256);
        chr.finish();
        let f = chr.into_features();
        assert_eq!(f[0], f[1]);
    }

    #[test]
    fn all_categories_populated_for_rich_stream() {
        let mut chr = IntervalCharacterizer::new(200);
        synthetic_stream(&mut chr, 200);
        chr.finish();
        let f = chr.features()[0];
        assert!(f.category(FeatureCategory::Mix).iter().sum::<f64>() > 0.99);
        assert!(f.category(FeatureCategory::Ilp)[0] > 0.0);
        assert!(f[feature_index("reg_avg_input_operands").unwrap()] > 0.0);
        assert!(f[feature_index("footprint_instr_64b_blocks").unwrap()] > 0.0);
        // Each static load recurs after 64 instructions, i.e. a 512-byte
        // local stride.
        assert!(f[feature_index("stride_local_load_le512").unwrap()] > 0.0);
        assert!(f[feature_index("branch_taken_rate").unwrap()] > 0.0);
    }

    #[test]
    fn mix_fractions_sum_to_one_per_interval() {
        let mut chr = IntervalCharacterizer::new(128);
        synthetic_stream(&mut chr, 128 * 3);
        chr.finish();
        for f in chr.features() {
            let sum: f64 = f.category(FeatureCategory::Mix).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = IntervalCharacterizer::new(0);
    }

    #[test]
    fn block_path_is_bit_identical_to_record_path() {
        use phaselab_trace::{BlockInst, BlockRecord, BlockSink, BlockSummary, MemRef};

        // Build a 7-instruction block (coprime to the interval length, so
        // repeated blocks straddle every boundary offset) mirroring the
        // synthetic stream's shapes.
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        let insts = [
            BlockInst::new(0x40, InstClass::MemRead)
                .with_reads(&[r1])
                .with_write(r2)
                .with_mem(MemRef {
                    size: 8,
                    is_store: false,
                }),
            BlockInst::new(0x44, InstClass::IntAdd)
                .with_reads(&[r1, r2])
                .with_write(r1),
            BlockInst::new(0x48, InstClass::FpMul),
            BlockInst::new(0x4c, InstClass::MemWrite)
                .with_reads(&[r1, r2])
                .with_mem(MemRef {
                    size: 4,
                    is_store: true,
                }),
            BlockInst::new(0x50, InstClass::IntMul)
                .with_reads(&[r2])
                .with_write(r2),
            BlockInst::new(0x54, InstClass::Nop),
            BlockInst::new(0x58, InstClass::CondBranch).with_reads(&[r1, r2]),
        ];
        let summary = BlockSummary::of(&insts);

        let mut blk_chr = IntervalCharacterizer::new(25).keep_tail(true);
        let mut rec_chr = IntervalCharacterizer::new(25).keep_tail(true);
        for i in 0u64..40 {
            let addrs = [i * 64, 4096 - i * 32];
            let branch = Some(BranchInfo {
                taken: i % 3 != 0,
                target: 0x40,
                conditional: true,
            });
            let block = BlockRecord::new(&insts, &addrs, &summary, branch);
            blk_chr.observe_block(&block);
            for rec in block.records() {
                rec_chr.observe(&rec);
            }
        }
        blk_chr.finish();
        rec_chr.finish();

        let blk = blk_chr.into_features();
        let rec = rec_chr.into_features();
        assert_eq!(blk.len(), rec.len());
        for (b, r) in blk.iter().zip(&rec) {
            assert_eq!(b, r);
        }
    }
}
