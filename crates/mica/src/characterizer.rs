//! The per-interval characterization driver.

use phaselab_trace::{InstRecord, TraceSink};

use crate::branch::BranchAnalyzer;
use crate::features::FeatureVector;
use crate::footprint::FootprintAnalyzer;
use crate::ilp::IlpAnalyzer;
use crate::mix::MixAnalyzer;
use crate::regtraffic::RegTrafficAnalyzer;
use crate::strides::StrideAnalyzer;
use crate::Analyzer;

/// Drives all six MICA analyzers over a dynamic instruction stream and
/// emits one [`FeatureVector`] per instruction interval.
///
/// The characterizer is a [`TraceSink`]: attach it to a `phaselab-vm`
/// execution (or any other record producer). Analyzer state is reset at
/// every interval boundary, so each interval is characterized
/// independently — exactly how the paper treats its 100M-instruction
/// intervals.
///
/// By default a trailing partial interval is discarded (the paper only
/// considers full intervals); [`keep_tail`](Self::keep_tail) retains it,
/// which is convenient for short test programs.
///
/// # Examples
///
/// ```
/// use phaselab_mica::IntervalCharacterizer;
/// use phaselab_trace::{InstClass, InstRecord, TraceSink};
///
/// let mut chr = IntervalCharacterizer::new(50).keep_tail(true);
/// for i in 0..120 {
///     chr.observe(&InstRecord::new(4 * i, InstClass::IntAdd));
/// }
/// chr.finish();
/// assert_eq!(chr.features().len(), 3); // 50 + 50 + 20 (kept tail)
/// ```
#[derive(Debug)]
pub struct IntervalCharacterizer {
    interval_len: u64,
    keep_tail: bool,
    in_interval: u64,
    mix: MixAnalyzer,
    ilp: IlpAnalyzer,
    reg: RegTrafficAnalyzer,
    footprint: FootprintAnalyzer,
    strides: StrideAnalyzer,
    branch: BranchAnalyzer,
    features: Vec<FeatureVector>,
}

impl IntervalCharacterizer {
    /// Creates a characterizer with the given interval length (in dynamic
    /// instructions).
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero.
    pub fn new(interval_len: u64) -> Self {
        assert!(interval_len > 0, "interval length must be positive");
        IntervalCharacterizer {
            interval_len,
            keep_tail: false,
            in_interval: 0,
            mix: MixAnalyzer::new(),
            ilp: IlpAnalyzer::new(),
            reg: RegTrafficAnalyzer::new(),
            footprint: FootprintAnalyzer::new(),
            strides: StrideAnalyzer::new(),
            branch: BranchAnalyzer::new(),
            features: Vec::new(),
        }
    }

    /// Whether to emit a trailing partial interval on
    /// [`finish`](TraceSink::finish) (default: `false`).
    pub fn keep_tail(mut self, keep: bool) -> Self {
        self.keep_tail = keep;
        self
    }

    /// The interval length in dynamic instructions.
    pub fn interval_len(&self) -> u64 {
        self.interval_len
    }

    /// The feature vectors of all completed intervals so far.
    pub fn features(&self) -> &[FeatureVector] {
        &self.features
    }

    /// Consumes the characterizer and returns the interval feature
    /// vectors.
    pub fn into_features(self) -> Vec<FeatureVector> {
        self.features
    }

    fn emit_interval(&mut self) {
        let mut fv = FeatureVector::zeros();
        self.mix.emit(&mut fv);
        self.ilp.emit(&mut fv);
        self.reg.emit(&mut fv);
        self.footprint.emit(&mut fv);
        self.strides.emit(&mut fv);
        self.branch.emit(&mut fv);
        self.features.push(fv);

        self.mix.reset();
        self.ilp.reset();
        self.reg.reset();
        self.footprint.reset();
        self.strides.reset();
        self.branch.reset();
        self.in_interval = 0;
    }
}

impl TraceSink for IntervalCharacterizer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        let idx = self.in_interval;
        self.mix.observe(rec, idx);
        self.ilp.observe(rec, idx);
        self.reg.observe(rec, idx);
        self.footprint.observe(rec, idx);
        self.strides.observe(rec, idx);
        self.branch.observe(rec, idx);
        self.in_interval += 1;
        if self.in_interval == self.interval_len {
            self.emit_interval();
        }
    }

    fn finish(&mut self) {
        if self.keep_tail && self.in_interval > 0 {
            self.emit_interval();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{feature_index, FeatureCategory};
    use phaselab_trace::{ArchReg, BranchInfo, InstClass, MemAccess};

    fn synthetic_stream(chr: &mut IntervalCharacterizer, n: u64) {
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        for i in 0..n {
            let rec = match i % 4 {
                0 => InstRecord::new(4 * (i % 64), InstClass::MemRead)
                    .with_reads(&[r1])
                    .with_write(r2)
                    .with_mem(MemAccess {
                        addr: (i * 8) % 4096,
                        size: 8,
                        is_store: false,
                    }),
                1 => InstRecord::new(4 * (i % 64), InstClass::IntAdd)
                    .with_reads(&[r1, r2])
                    .with_write(r1),
                2 => InstRecord::new(4 * (i % 64), InstClass::CondBranch)
                    .with_reads(&[r1, r2])
                    .with_branch(BranchInfo {
                        taken: i % 8 < 4,
                        target: 0,
                        conditional: true,
                    }),
                _ => InstRecord::new(4 * (i % 64), InstClass::FpMul),
            };
            chr.observe(&rec);
        }
    }

    #[test]
    fn interval_boundaries_are_exact() {
        let mut chr = IntervalCharacterizer::new(100);
        synthetic_stream(&mut chr, 350);
        chr.finish();
        assert_eq!(chr.features().len(), 3);
    }

    #[test]
    fn keep_tail_emits_partial_interval() {
        let mut chr = IntervalCharacterizer::new(100).keep_tail(true);
        synthetic_stream(&mut chr, 350);
        chr.finish();
        assert_eq!(chr.features().len(), 4);
    }

    #[test]
    fn identical_intervals_have_identical_features() {
        // The synthetic stream's control/PC pattern has period 64, which
        // divides the interval length, and analyzers reset at boundaries,
        // so both intervals see behaviorally identical streams.
        let mut chr = IntervalCharacterizer::new(128);
        synthetic_stream(&mut chr, 256);
        chr.finish();
        let f = chr.into_features();
        assert_eq!(f[0], f[1]);
    }

    #[test]
    fn all_categories_populated_for_rich_stream() {
        let mut chr = IntervalCharacterizer::new(200);
        synthetic_stream(&mut chr, 200);
        chr.finish();
        let f = chr.features()[0];
        assert!(f.category(FeatureCategory::Mix).iter().sum::<f64>() > 0.99);
        assert!(f.category(FeatureCategory::Ilp)[0] > 0.0);
        assert!(f[feature_index("reg_avg_input_operands").unwrap()] > 0.0);
        assert!(f[feature_index("footprint_instr_64b_blocks").unwrap()] > 0.0);
        // Each static load recurs after 64 instructions, i.e. a 512-byte
        // local stride.
        assert!(f[feature_index("stride_local_load_le512").unwrap()] > 0.0);
        assert!(f[feature_index("branch_taken_rate").unwrap()] > 0.0);
    }

    #[test]
    fn mix_fractions_sum_to_one_per_interval() {
        let mut chr = IntervalCharacterizer::new(128);
        synthetic_stream(&mut chr, 128 * 3);
        chr.finish();
        for f in chr.features() {
            let sum: f64 = f.category(FeatureCategory::Mix).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        let _ = IntervalCharacterizer::new(0);
    }
}
