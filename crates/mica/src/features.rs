//! The 69-dimensional feature vector and its layout.

/// Number of microarchitecture-independent characteristics (Table 1 of the
/// paper: 20 mix + 4 ILP + 9 register traffic + 4 footprint + 18 strides +
/// 14 branch predictability).
pub const NUM_FEATURES: usize = 69;

/// First index of the instruction-mix block (20 features).
pub const MIX_BASE: usize = 0;
/// First index of the ILP block (4 features: windows 32/64/128/256).
pub const ILP_BASE: usize = 20;
/// First index of the register-traffic block (9 features).
pub const REG_BASE: usize = 24;
/// First index of the memory-footprint block (4 features).
pub const FOOTPRINT_BASE: usize = 33;
/// First index of the stride block (18 features).
pub const STRIDE_BASE: usize = 37;
/// First index of the branch-predictability block (14 features).
pub const BRANCH_BASE: usize = 55;

/// The six characteristic categories of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureCategory {
    /// Instruction mix (20 features).
    Mix,
    /// Inherent instruction-level parallelism (4 features).
    Ilp,
    /// Register traffic (9 features).
    RegTraffic,
    /// Memory footprint (4 features).
    Footprint,
    /// Data stream strides (18 features).
    Stride,
    /// Branch predictability (14 features).
    Branch,
}

impl FeatureCategory {
    /// All categories in feature-layout order.
    pub const ALL: [FeatureCategory; 6] = [
        FeatureCategory::Mix,
        FeatureCategory::Ilp,
        FeatureCategory::RegTraffic,
        FeatureCategory::Footprint,
        FeatureCategory::Stride,
        FeatureCategory::Branch,
    ];

    /// Human-readable category name, matching Table 1 of the paper.
    pub fn name(self) -> &'static str {
        match self {
            FeatureCategory::Mix => "instruction mix",
            FeatureCategory::Ilp => "ILP",
            FeatureCategory::RegTraffic => "register traffic",
            FeatureCategory::Footprint => "memory footprint",
            FeatureCategory::Stride => "data stream strides",
            FeatureCategory::Branch => "branch predictability",
        }
    }

    /// The half-open index range of this category in the feature layout.
    pub fn range(self) -> std::ops::Range<usize> {
        match self {
            FeatureCategory::Mix => MIX_BASE..ILP_BASE,
            FeatureCategory::Ilp => ILP_BASE..REG_BASE,
            FeatureCategory::RegTraffic => REG_BASE..FOOTPRINT_BASE,
            FeatureCategory::Footprint => FOOTPRINT_BASE..STRIDE_BASE,
            FeatureCategory::Stride => STRIDE_BASE..BRANCH_BASE,
            FeatureCategory::Branch => BRANCH_BASE..NUM_FEATURES,
        }
    }

    /// The category owning feature index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_FEATURES`.
    pub fn of(idx: usize) -> FeatureCategory {
        assert!(idx < NUM_FEATURES, "feature index out of range");
        Self::ALL
            .into_iter()
            .find(|c| c.range().contains(&idx))
            .expect("categories cover the layout")
    }
}

/// The names of all 69 features, in layout order.
pub fn feature_names() -> &'static [&'static str; NUM_FEATURES] {
    &[
        // instruction mix (fractions of the dynamic instruction stream)
        "mix_mem_read",
        "mix_mem_write",
        "mix_cond_branch",
        "mix_jump",
        "mix_call",
        "mix_ret",
        "mix_int_add",
        "mix_int_mul",
        "mix_int_div",
        "mix_logical",
        "mix_shift",
        "mix_compare",
        "mix_mov",
        "mix_convert",
        "mix_fp_add",
        "mix_fp_mul",
        "mix_fp_div",
        "mix_fp_other",
        "mix_nop",
        "mix_other",
        // ILP (idealized IPC per window size)
        "ilp_win32",
        "ilp_win64",
        "ilp_win128",
        "ilp_win256",
        // register traffic
        "reg_avg_input_operands",
        "reg_avg_degree_of_use",
        "reg_dep_dist_le1",
        "reg_dep_dist_le2",
        "reg_dep_dist_le4",
        "reg_dep_dist_le8",
        "reg_dep_dist_le16",
        "reg_dep_dist_le32",
        "reg_dep_dist_le64",
        // memory footprint
        "footprint_instr_64b_blocks",
        "footprint_instr_4k_pages",
        "footprint_data_64b_blocks",
        "footprint_data_4k_pages",
        // data stream strides (cumulative probabilities)
        "stride_local_load_eq0",
        "stride_local_load_le8",
        "stride_local_load_le64",
        "stride_local_load_le512",
        "stride_local_load_le4096",
        "stride_local_store_eq0",
        "stride_local_store_le8",
        "stride_local_store_le64",
        "stride_local_store_le512",
        "stride_local_store_le4096",
        "stride_global_load_le64",
        "stride_global_load_le4096",
        "stride_global_load_le256k",
        "stride_global_load_le16m",
        "stride_global_store_le64",
        "stride_global_store_le4096",
        "stride_global_store_le256k",
        "stride_global_store_le16m",
        // branch predictability
        "branch_transition_rate",
        "branch_taken_rate",
        "ppm_gag_hist4",
        "ppm_gag_hist8",
        "ppm_gag_hist12",
        "ppm_gap_hist4",
        "ppm_gap_hist8",
        "ppm_gap_hist12",
        "ppm_pag_hist4",
        "ppm_pag_hist8",
        "ppm_pag_hist12",
        "ppm_pap_hist4",
        "ppm_pap_hist8",
        "ppm_pap_hist12",
    ]
}

/// Returns the layout index of a feature name.
///
/// # Examples
///
/// ```
/// use phaselab_mica::feature_index;
///
/// assert_eq!(feature_index("mix_mem_read"), Some(0));
/// assert_eq!(feature_index("no_such_feature"), None);
/// ```
pub fn feature_index(name: &str) -> Option<usize> {
    feature_names().iter().position(|&n| n == name)
}

/// One interval's 69 microarchitecture-independent characteristics.
///
/// Indexable by feature index; see [`feature_names`] for the layout.
///
/// # Examples
///
/// ```
/// use phaselab_mica::{FeatureVector, NUM_FEATURES};
///
/// let mut f = FeatureVector::zeros();
/// f[0] = 0.25;
/// assert_eq!(f.as_slice().len(), NUM_FEATURES);
/// assert_eq!(f[0], 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector {
    values: [f64; NUM_FEATURES],
}

impl FeatureVector {
    /// Creates an all-zero feature vector.
    pub fn zeros() -> Self {
        FeatureVector {
            values: [0.0; NUM_FEATURES],
        }
    }

    /// Creates a feature vector from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != NUM_FEATURES`.
    pub fn from_slice(values: &[f64]) -> Self {
        assert_eq!(values.len(), NUM_FEATURES, "expected {NUM_FEATURES} values");
        let mut v = Self::zeros();
        v.values.copy_from_slice(values);
        v
    }

    /// The features as a slice, in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// The features of one category, as a slice.
    pub fn category(&self, cat: FeatureCategory) -> &[f64] {
        &self.values[cat.range()]
    }
}

impl Default for FeatureVector {
    fn default() -> Self {
        Self::zeros()
    }
}

impl std::ops::Index<usize> for FeatureVector {
    type Output = f64;

    #[inline]
    fn index(&self, idx: usize) -> &f64 {
        &self.values[idx]
    }
}

impl std::ops::IndexMut<usize> for FeatureVector {
    #[inline]
    fn index_mut(&mut self, idx: usize) -> &mut f64 {
        &mut self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_consistent() {
        assert_eq!(feature_names().len(), NUM_FEATURES);
        // Category ranges tile the layout exactly.
        let mut covered = 0;
        for cat in FeatureCategory::ALL {
            let r = cat.range();
            assert_eq!(r.start, covered, "category {cat:?} not contiguous");
            covered = r.end;
        }
        assert_eq!(covered, NUM_FEATURES);
    }

    #[test]
    fn category_counts_match_table1() {
        assert_eq!(FeatureCategory::Mix.range().len(), 20);
        assert_eq!(FeatureCategory::Ilp.range().len(), 4);
        assert_eq!(FeatureCategory::RegTraffic.range().len(), 9);
        assert_eq!(FeatureCategory::Footprint.range().len(), 4);
        assert_eq!(FeatureCategory::Stride.range().len(), 18);
        assert_eq!(FeatureCategory::Branch.range().len(), 14);
    }

    #[test]
    fn names_are_unique() {
        let mut names = feature_names().to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_FEATURES);
    }

    #[test]
    fn category_of_resolves_every_index() {
        for i in 0..NUM_FEATURES {
            let c = FeatureCategory::of(i);
            assert!(c.range().contains(&i));
        }
    }

    #[test]
    fn feature_index_roundtrips() {
        for (i, name) in feature_names().iter().enumerate() {
            assert_eq!(feature_index(name), Some(i));
        }
    }

    #[test]
    fn vector_index_and_category_slices() {
        let mut f = FeatureVector::zeros();
        f[ILP_BASE] = 2.5;
        assert_eq!(f.category(FeatureCategory::Ilp)[0], 2.5);
    }

    #[test]
    #[should_panic(expected = "expected 69 values")]
    fn from_slice_validates_length() {
        let _ = FeatureVector::from_slice(&[1.0, 2.0]);
    }
}
