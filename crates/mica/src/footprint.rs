//! Memory footprint analyzer (4 features).

use phaselab_trace::InstRecord;

use crate::features::{FeatureVector, FOOTPRINT_BASE};
use crate::fxhash::FxHashSet;
use crate::Analyzer;

/// Counts the unique 64-byte blocks and 4 KB pages touched by the
/// instruction stream and by the data stream within an interval (Table 1,
/// "memory footprint").
///
/// # Examples
///
/// ```
/// use phaselab_mica::{Analyzer, FeatureVector, FootprintAnalyzer};
/// use phaselab_trace::{InstClass, InstRecord, MemAccess};
///
/// let mut fp = FootprintAnalyzer::new();
/// let rec = InstRecord::new(0x1000, InstClass::MemRead)
///     .with_mem(MemAccess { addr: 0x2000, size: 8, is_store: false });
/// fp.observe(&rec, 0);
/// let mut out = FeatureVector::zeros();
/// fp.emit(&mut out);
/// assert_eq!(out[33], 1.0); // one instruction block
/// assert_eq!(out[35], 1.0); // one data block
/// ```
#[derive(Debug, Clone, Default)]
pub struct FootprintAnalyzer {
    instr_blocks: FxHashSet<u64>,
    instr_pages: FxHashSet<u64>,
    data_blocks: FxHashSet<u64>,
    data_pages: FxHashSet<u64>,
}

impl FootprintAnalyzer {
    /// Creates an analyzer with empty footprints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes the instruction-stream footprint of `n` consecutive
    /// 4-byte instructions starting at byte address `base_pc` — the
    /// block-path equivalent of the per-record `rec.pc` inserts. A
    /// straight-line block covers a contiguous pc range, so the same set
    /// of 64-byte blocks and 4 KB pages is inserted with at most
    /// `n/16 + 1` set operations instead of `n`.
    #[inline]
    pub fn observe_instr_span(&mut self, base_pc: u64, n: u64) {
        if n == 0 {
            return;
        }
        let last_pc = base_pc + 4 * (n - 1);
        for block in (base_pc >> 6)..=(last_pc >> 6) {
            self.instr_blocks.insert(block);
        }
        for page in (base_pc >> 12)..=(last_pc >> 12) {
            self.instr_pages.insert(page);
        }
    }

    /// Observes one data access — the block-path equivalent of the
    /// `rec.mem` half of [`Analyzer::observe`].
    #[inline]
    pub fn observe_data(&mut self, addr: u64, size: u8) {
        self.data_blocks.insert(addr >> 6);
        self.data_pages.insert(addr >> 12);
        // A wide access may straddle a block boundary.
        let last = addr + size as u64 - 1;
        if last >> 6 != addr >> 6 {
            self.data_blocks.insert(last >> 6);
            self.data_pages.insert(last >> 12);
        }
    }
}

impl Analyzer for FootprintAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, _index: u64) {
        self.instr_blocks.insert(rec.pc >> 6);
        self.instr_pages.insert(rec.pc >> 12);
        if let Some(mem) = rec.mem {
            self.observe_data(mem.addr, mem.size);
        }
    }

    fn emit(&self, out: &mut FeatureVector) {
        out[FOOTPRINT_BASE] = self.instr_blocks.len() as f64;
        out[FOOTPRINT_BASE + 1] = self.instr_pages.len() as f64;
        out[FOOTPRINT_BASE + 2] = self.data_blocks.len() as f64;
        out[FOOTPRINT_BASE + 3] = self.data_pages.len() as f64;
    }

    fn reset(&mut self) {
        self.instr_blocks.clear();
        self.instr_pages.clear();
        self.data_blocks.clear();
        self.data_pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_trace::{InstClass, MemAccess};

    fn emit(a: &FootprintAnalyzer) -> [f64; 4] {
        let mut out = FeatureVector::zeros();
        a.emit(&mut out);
        [
            out[FOOTPRINT_BASE],
            out[FOOTPRINT_BASE + 1],
            out[FOOTPRINT_BASE + 2],
            out[FOOTPRINT_BASE + 3],
        ]
    }

    #[test]
    fn same_block_counted_once() {
        let mut a = FootprintAnalyzer::new();
        for pc in [0u64, 8, 16, 63] {
            a.observe(&InstRecord::new(pc, InstClass::Nop), 0);
        }
        assert_eq!(emit(&a), [1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn blocks_vs_pages() {
        let mut a = FootprintAnalyzer::new();
        // 64 instruction blocks, all in one 4K page.
        for i in 0..64u64 {
            a.observe(&InstRecord::new(i * 64, InstClass::Nop), 0);
        }
        assert_eq!(emit(&a), [64.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn data_footprint_tracks_accesses() {
        let mut a = FootprintAnalyzer::new();
        for i in 0..10u64 {
            let rec = InstRecord::new(0, InstClass::MemRead).with_mem(MemAccess {
                addr: i * 4096,
                size: 8,
                is_store: false,
            });
            a.observe(&rec, 0);
        }
        let [ib, ip, db, dp] = emit(&a);
        assert_eq!((ib, ip), (1.0, 1.0));
        assert_eq!((db, dp), (10.0, 10.0));
    }

    #[test]
    fn straddling_access_touches_two_blocks() {
        let mut a = FootprintAnalyzer::new();
        let rec = InstRecord::new(0, InstClass::MemRead).with_mem(MemAccess {
            addr: 60,
            size: 8,
            is_store: false,
        });
        a.observe(&rec, 0);
        assert_eq!(emit(&a)[2], 2.0);
    }

    #[test]
    fn reset_empties_footprints() {
        let mut a = FootprintAnalyzer::new();
        a.observe(&InstRecord::new(100, InstClass::Nop), 0);
        a.reset();
        assert_eq!(emit(&a), [0.0, 0.0, 0.0, 0.0]);
    }
}
