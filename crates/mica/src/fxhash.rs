//! A fast, non-cryptographic hasher for the characterization hot paths.
//!
//! This is the Fx hash function used by rustc (a multiply-rotate-xor mix),
//! reimplemented here because external hashing crates are outside this
//! project's dependency policy. Footprint sets and per-static-instruction
//! maps perform millions of operations per characterized interval; SipHash
//! would dominate the profile.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx hash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx hash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Mixes a 64-bit value into a well-distributed 64-bit hash
/// (SplitMix64 finalizer). Used for direct-mapped predictor tables.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&500], 1000);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hash_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(12345);
        b.write_u64(12345);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn mix64_spreads_sequential_values() {
        // Consecutive inputs should differ in many bits after mixing.
        let a = mix64(1);
        let b = mix64(2);
        assert!((a ^ b).count_ones() > 16);
        // mix64 is a bijection; distinct inputs give distinct outputs.
        assert_ne!(mix64(3), mix64(4));
    }

    #[test]
    fn write_bytes_covers_partial_chunks() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello worle");
        assert_ne!(a.finish(), b.finish());
    }
}
