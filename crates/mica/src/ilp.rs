//! Inherent instruction-level parallelism analyzer (4 features).

use phaselab_trace::{ArchReg, InstRecord, RegReads, NUM_ARCH_REGS};

use crate::features::{FeatureVector, ILP_BASE};
use crate::Analyzer;

/// The four idealized-processor window sizes of the characterization.
pub const ILP_WINDOWS: [usize; 4] = [32, 64, 128, 256];

/// Computes the IPC achievable on an idealized processor — perfect caches,
/// perfect branch prediction, unit-latency functional units, register
/// dependences only — for window sizes of 32, 64, 128 and 256 in-flight
/// instructions (the "ILP" row of Table 1).
///
/// An instruction may issue once (a) its register producers have
/// completed, and (b) the instruction `W` positions ahead of it has
/// completed (the in-flight window constraint). Memory dependences are
/// ignored (perfect memory disambiguation), matching MICA's
/// register-dependence ILP model.
///
/// # Examples
///
/// ```
/// use phaselab_mica::{Analyzer, FeatureVector, IlpAnalyzer};
/// use phaselab_trace::{ArchReg, InstClass, InstRecord};
///
/// // A chain of dependent adds has IPC 1 regardless of window size.
/// let mut ilp = IlpAnalyzer::new();
/// let r = ArchReg::int(1);
/// for i in 0..100 {
///     let rec = InstRecord::new(4 * i, InstClass::IntAdd)
///         .with_reads(&[r])
///         .with_write(r);
///     ilp.observe(&rec, i);
/// }
/// let mut out = FeatureVector::zeros();
/// ilp.emit(&mut out);
/// assert!((out[20] - 1.0).abs() < 0.05); // ilp_win32 ~ 1
/// ```
#[derive(Debug, Clone)]
pub struct IlpAnalyzer {
    windows: [WindowState; 4],
    count: u64,
}

#[derive(Debug, Clone)]
struct WindowState {
    size: usize,
    /// Completion cycle of each architectural register's latest producer.
    reg_ready: [u64; NUM_ARCH_REGS],
    /// Ring buffer of completion cycles of the last `size` instructions.
    ring: Vec<u64>,
    /// Maximum completion cycle seen.
    horizon: u64,
}

impl WindowState {
    fn new(size: usize) -> Self {
        WindowState {
            size,
            reg_ready: [0; NUM_ARCH_REGS],
            ring: vec![0; size],
            horizon: 0,
        }
    }

    #[inline]
    fn observe(&mut self, reads: RegReads, write: Option<ArchReg>, index: u64) {
        let slot = (index as usize) % self.size;
        // Window constraint: the instruction `size` earlier must have
        // completed before this one can occupy its slot.
        let mut start = self.ring[slot];
        for r in reads.iter() {
            let ready = self.reg_ready[r.index()];
            if ready > start {
                start = ready;
            }
        }
        let completion = start + 1;
        self.ring[slot] = completion;
        if let Some(w) = write {
            self.reg_ready[w.index()] = completion;
        }
        if completion > self.horizon {
            self.horizon = completion;
        }
    }

    fn reset(&mut self) {
        self.reg_ready = [0; NUM_ARCH_REGS];
        self.ring.iter_mut().for_each(|c| *c = 0);
        self.horizon = 0;
    }
}

impl IlpAnalyzer {
    /// Creates an analyzer for the four standard window sizes.
    pub fn new() -> Self {
        IlpAnalyzer {
            windows: [
                WindowState::new(ILP_WINDOWS[0]),
                WindowState::new(ILP_WINDOWS[1]),
                WindowState::new(ILP_WINDOWS[2]),
                WindowState::new(ILP_WINDOWS[3]),
            ],
            count: 0,
        }
    }

    /// Observes one instruction given its register operands directly — the
    /// block-path equivalent of [`Analyzer::observe`], taking the static
    /// fields a block template already holds so no
    /// [`InstRecord`] needs to be materialized. The ILP model uses only
    /// register dependences, so this is the complete input.
    #[inline]
    pub fn observe_ops(&mut self, reads: RegReads, write: Option<ArchReg>, index: u64) {
        for w in &mut self.windows {
            w.observe(reads, write, index);
        }
        self.count += 1;
    }
}

impl Default for IlpAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer for IlpAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, index: u64) {
        self.observe_ops(rec.reads, rec.write, index);
    }

    fn emit(&self, out: &mut FeatureVector) {
        for (i, w) in self.windows.iter().enumerate() {
            out[ILP_BASE + i] = if w.horizon == 0 {
                0.0
            } else {
                self.count as f64 / w.horizon as f64
            };
        }
    }

    fn reset(&mut self) {
        for w in &mut self.windows {
            w.reset();
        }
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_trace::{ArchReg, InstClass};

    fn emit(ilp: &IlpAnalyzer) -> Vec<f64> {
        let mut out = FeatureVector::zeros();
        ilp.emit(&mut out);
        (0..4).map(|i| out[ILP_BASE + i]).collect()
    }

    #[test]
    fn independent_instructions_saturate_window() {
        // Fully independent instructions: each window of W instructions can
        // retire W per cycle once warmed, so IPC approaches W.
        let mut ilp = IlpAnalyzer::new();
        for i in 0..100_000u64 {
            // Round-robin destination registers, no reads: no dependences.
            let w = ArchReg::int((i % 32) as u8);
            let rec = InstRecord::new(4 * i, InstClass::IntAdd).with_write(w);
            ilp.observe(&rec, i);
        }
        let ipc = emit(&ilp);
        assert!(ipc[0] > 28.0, "win32 IPC {}", ipc[0]);
        assert!(ipc[3] > 200.0, "win256 IPC {}", ipc[3]);
        // Larger windows expose at least as much ILP.
        assert!(ipc[1] >= ipc[0] - 1e-9);
        assert!(ipc[2] >= ipc[1] - 1e-9);
        assert!(ipc[3] >= ipc[2] - 1e-9);
    }

    #[test]
    fn dependent_chain_has_ipc_one() {
        let mut ilp = IlpAnalyzer::new();
        let r = ArchReg::int(1);
        for i in 0..10_000u64 {
            let rec = InstRecord::new(4 * i, InstClass::IntAdd)
                .with_reads(&[r])
                .with_write(r);
            ilp.observe(&rec, i);
        }
        let ipc = emit(&ilp);
        for v in ipc {
            assert!((v - 1.0).abs() < 0.01, "chain IPC {v}");
        }
    }

    #[test]
    fn two_independent_chains_have_ipc_two() {
        let mut ilp = IlpAnalyzer::new();
        let a = ArchReg::int(1);
        let b = ArchReg::int(2);
        for i in 0..10_000u64 {
            let r = if i % 2 == 0 { a } else { b };
            let rec = InstRecord::new(4 * i, InstClass::IntAdd)
                .with_reads(&[r])
                .with_write(r);
            ilp.observe(&rec, i);
        }
        let ipc = emit(&ilp);
        assert!((ipc[0] - 2.0).abs() < 0.01, "two-chain IPC {}", ipc[0]);
    }

    #[test]
    fn empty_interval_emits_zero() {
        let ilp = IlpAnalyzer::new();
        assert_eq!(emit(&ilp), vec![0.0; 4]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ilp = IlpAnalyzer::new();
        let r = ArchReg::int(3);
        for i in 0..100 {
            let rec = InstRecord::new(0, InstClass::IntAdd)
                .with_reads(&[r])
                .with_write(r);
            ilp.observe(&rec, i);
        }
        ilp.reset();
        assert_eq!(emit(&ilp), vec![0.0; 4]);
    }
}
