//! Microarchitecture-independent characterization of instruction streams:
//! `phaselab`'s substitute for the MICA Pin tool.
//!
//! Hoste & Eeckhout characterize each 100M-instruction interval of a
//! workload with 69 microarchitecture-independent characteristics across
//! six categories (Table 1 of the ISPASS 2008 paper):
//!
//! | category | count | analyzer |
//! |---|---|---|
//! | instruction mix | 20 | [`MixAnalyzer`] |
//! | inherent ILP (window 32/64/128/256) | 4 | [`IlpAnalyzer`] |
//! | register traffic | 9 | [`RegTrafficAnalyzer`] |
//! | memory footprint | 4 | [`FootprintAnalyzer`] |
//! | data stream strides | 18 | [`StrideAnalyzer`] |
//! | branch predictability (PPM) | 14 | [`BranchAnalyzer`] |
//!
//! The [`IntervalCharacterizer`] drives all six analyzers over a dynamic
//! instruction stream (any [`TraceSink`](phaselab_trace::TraceSink)
//! producer, in practice the `phaselab-vm` interpreter) and emits one
//! [`FeatureVector`] per instruction interval.
//!
//! # Examples
//!
//! ```
//! use phaselab_mica::{IntervalCharacterizer, NUM_FEATURES};
//! use phaselab_trace::{InstClass, InstRecord, TraceSink};
//!
//! let mut chr = IntervalCharacterizer::new(100);
//! for i in 0..250 {
//!     chr.observe(&InstRecord::new(4 * i, InstClass::IntAdd));
//! }
//! chr.finish();
//! let intervals = chr.into_features();
//! assert_eq!(intervals.len(), 2); // two full intervals; the tail is dropped
//! assert_eq!(intervals[0].as_slice().len(), NUM_FEATURES);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aggregate;
mod branch;
mod characterizer;
mod features;
mod footprint;
mod fxhash;
mod ilp;
mod mix;
mod regtraffic;
mod strides;

pub use aggregate::AggregateCharacterizer;
pub use branch::BranchAnalyzer;
pub use characterizer::IntervalCharacterizer;
pub use features::{feature_index, feature_names, FeatureCategory, FeatureVector, NUM_FEATURES};
pub use footprint::FootprintAnalyzer;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ilp::{IlpAnalyzer, ILP_WINDOWS};
pub use mix::MixAnalyzer;
pub use regtraffic::RegTrafficAnalyzer;
pub use strides::StrideAnalyzer;

use phaselab_trace::InstRecord;

/// A per-interval analyzer computing a fixed slice of the feature vector.
///
/// All six MICA analyzers implement this trait; the
/// [`IntervalCharacterizer`] drives them in lock-step and resets them at
/// interval boundaries.
pub trait Analyzer {
    /// Observes one instruction. `index` is the instruction's position
    /// within the current interval, starting at 0.
    fn observe(&mut self, rec: &InstRecord, index: u64);

    /// Writes this analyzer's features into its slice of `out` (indexed by
    /// the global feature layout, see [`feature_names`]).
    fn emit(&self, out: &mut FeatureVector);

    /// Clears all per-interval state.
    fn reset(&mut self);
}
