//! Instruction-mix analyzer (20 features).

use phaselab_trace::{InstRecord, NUM_INST_CLASSES};

use crate::features::{FeatureVector, MIX_BASE};
use crate::Analyzer;

/// Computes the fraction of dynamic instructions in each of the 20
/// behavioral classes (memory reads/writes, branches, arithmetic,
/// multiplies, …) — the "instruction mix" row of Table 1.
///
/// # Examples
///
/// ```
/// use phaselab_mica::{Analyzer, FeatureVector, MixAnalyzer};
/// use phaselab_trace::{InstClass, InstRecord};
///
/// let mut mix = MixAnalyzer::new();
/// mix.observe(&InstRecord::new(0, InstClass::MemRead), 0);
/// mix.observe(&InstRecord::new(4, InstClass::IntAdd), 1);
/// let mut out = FeatureVector::zeros();
/// mix.emit(&mut out);
/// assert_eq!(out[0], 0.5); // mix_mem_read
/// ```
#[derive(Debug, Clone, Default)]
pub struct MixAnalyzer {
    counts: [u64; NUM_INST_CLASSES],
    total: u64,
}

impl MixAnalyzer {
    /// Creates an analyzer with empty counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in a whole block's pre-counted classes at once.
    ///
    /// `total` must equal the sum of `counts`. Equivalent to (but much
    /// cheaper than) calling [`Analyzer::observe`] once per instruction:
    /// only integer counters are touched, so the bulk path is bit-exactly
    /// interchangeable with the per-record path.
    #[inline]
    pub fn observe_bulk(&mut self, counts: &[u32; NUM_INST_CLASSES], total: u64) {
        debug_assert_eq!(counts.iter().map(|&c| u64::from(c)).sum::<u64>(), total);
        for (acc, &c) in self.counts.iter_mut().zip(counts) {
            *acc += u64::from(c);
        }
        self.total += total;
    }
}

impl Analyzer for MixAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, _index: u64) {
        self.counts[rec.class.index()] += 1;
        self.total += 1;
    }

    fn emit(&self, out: &mut FeatureVector) {
        let total = self.total.max(1) as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            out[MIX_BASE + i] = c as f64 / total;
        }
    }

    fn reset(&mut self) {
        self.counts = [0; NUM_INST_CLASSES];
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_trace::InstClass;

    fn rec(class: InstClass) -> InstRecord {
        InstRecord::new(0, class)
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut mix = MixAnalyzer::new();
        for (i, class) in InstClass::ALL.iter().enumerate() {
            for _ in 0..=i {
                mix.observe(&rec(*class), 0);
            }
        }
        let mut out = FeatureVector::zeros();
        mix.emit(&mut out);
        let sum: f64 = (0..NUM_INST_CLASSES).map(|i| out[MIX_BASE + i]).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_emits_zeros() {
        let mix = MixAnalyzer::new();
        let mut out = FeatureVector::zeros();
        mix.emit(&mut out);
        assert!((0..NUM_INST_CLASSES).all(|i| out[MIX_BASE + i] == 0.0));
    }

    #[test]
    fn reset_clears_state() {
        let mut mix = MixAnalyzer::new();
        mix.observe(&rec(InstClass::FpDiv), 0);
        mix.reset();
        let mut out = FeatureVector::zeros();
        mix.emit(&mut out);
        assert_eq!(out[MIX_BASE + InstClass::FpDiv.index()], 0.0);
    }
}
