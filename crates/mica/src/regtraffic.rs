//! Register traffic analyzer (9 features).

use phaselab_trace::{ArchReg, InstRecord, RegReads, NUM_ARCH_REGS};

use crate::features::{FeatureVector, REG_BASE};
use crate::Analyzer;

/// Cumulative register dependency-distance bucket bounds (in dynamic
/// instructions between producer and consumer).
const DIST_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Computes the register-traffic characteristics (Table 1, "register
/// traffic"):
///
/// * average number of register input operands per instruction,
/// * average degree of use — register reads per register write,
/// * the cumulative distribution of register dependency distances, i.e.
///   the number of dynamic instructions between the production and the
///   consumption of a register instance, in buckets ≤1, ≤2, ≤4, … ≤64.
///
/// Reads whose producer lies outside the current interval are counted in
/// the operand and degree-of-use averages but excluded from the distance
/// distribution (their distance is unknown).
#[derive(Debug, Clone)]
pub struct RegTrafficAnalyzer {
    total_instrs: u64,
    total_reads: u64,
    total_writes: u64,
    /// Index (within the interval) of the last write to each register;
    /// `u64::MAX` when the register has no producer this interval.
    last_write: [u64; NUM_ARCH_REGS],
    /// Cumulative distance bucket counts.
    dist_counts: [u64; DIST_BUCKETS.len()],
    /// Reads with a known producer.
    dist_total: u64,
}

impl RegTrafficAnalyzer {
    /// Creates an analyzer with empty counts.
    pub fn new() -> Self {
        RegTrafficAnalyzer {
            total_instrs: 0,
            total_reads: 0,
            total_writes: 0,
            last_write: [u64::MAX; NUM_ARCH_REGS],
            dist_counts: [0; DIST_BUCKETS.len()],
            dist_total: 0,
        }
    }

    /// Observes one instruction given its register operands directly — the
    /// block-path equivalent of [`Analyzer::observe`]: register traffic
    /// depends only on the static operand lists, which a block template
    /// already holds.
    #[inline]
    pub fn observe_ops(&mut self, reads: RegReads, write: Option<ArchReg>, index: u64) {
        self.total_instrs += 1;
        for r in reads.iter() {
            self.total_reads += 1;
            let producer = self.last_write[r.index()];
            if producer != u64::MAX {
                let dist = index - producer;
                self.dist_total += 1;
                for (slot, &bound) in self.dist_counts.iter_mut().zip(&DIST_BUCKETS) {
                    if dist <= bound {
                        *slot += 1;
                    }
                }
            }
        }
        if let Some(w) = write {
            self.total_writes += 1;
            self.last_write[w.index()] = index;
        }
    }
}

impl Default for RegTrafficAnalyzer {
    fn default() -> Self {
        Self::new()
    }
}

impl Analyzer for RegTrafficAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, index: u64) {
        self.observe_ops(rec.reads, rec.write, index);
    }

    fn emit(&self, out: &mut FeatureVector) {
        out[REG_BASE] = self.total_reads as f64 / self.total_instrs.max(1) as f64;
        out[REG_BASE + 1] = self.total_reads as f64 / self.total_writes.max(1) as f64;
        let denom = self.dist_total.max(1) as f64;
        for (i, &c) in self.dist_counts.iter().enumerate() {
            out[REG_BASE + 2 + i] = c as f64 / denom;
        }
    }

    fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_trace::{ArchReg, InstClass};

    fn emit(a: &RegTrafficAnalyzer) -> Vec<f64> {
        let mut out = FeatureVector::zeros();
        a.emit(&mut out);
        (0..9).map(|i| out[REG_BASE + i]).collect()
    }

    #[test]
    fn average_operands() {
        let mut a = RegTrafficAnalyzer::new();
        let r1 = ArchReg::int(1);
        let r2 = ArchReg::int(2);
        // One instruction with 2 reads, one with 0 reads.
        a.observe(
            &InstRecord::new(0, InstClass::IntAdd).with_reads(&[r1, r2]),
            0,
        );
        a.observe(&InstRecord::new(4, InstClass::Nop), 1);
        assert_eq!(emit(&a)[0], 1.0);
    }

    #[test]
    fn degree_of_use_counts_reads_per_write() {
        let mut a = RegTrafficAnalyzer::new();
        let r = ArchReg::int(1);
        // 1 write, then 3 reads of it.
        a.observe(&InstRecord::new(0, InstClass::Mov).with_write(r), 0);
        for i in 1..=3 {
            a.observe(&InstRecord::new(4, InstClass::IntAdd).with_reads(&[r]), i);
        }
        assert_eq!(emit(&a)[1], 3.0);
    }

    #[test]
    fn dependency_distance_buckets_are_cumulative() {
        let mut a = RegTrafficAnalyzer::new();
        let r = ArchReg::int(1);
        a.observe(&InstRecord::new(0, InstClass::Mov).with_write(r), 0);
        // Distance 1 read.
        a.observe(&InstRecord::new(4, InstClass::IntAdd).with_reads(&[r]), 1);
        // Distance 5 read.
        a.observe(&InstRecord::new(8, InstClass::IntAdd).with_reads(&[r]), 5);
        let f = emit(&a);
        assert_eq!(f[2], 0.5); // le1: only the first read
        assert_eq!(f[3], 0.5); // le2
        assert_eq!(f[4], 0.5); // le4
        assert_eq!(f[5], 1.0); // le8: both
        assert_eq!(f[8], 1.0); // le64
    }

    #[test]
    fn reads_without_producer_are_excluded_from_distances() {
        let mut a = RegTrafficAnalyzer::new();
        let r = ArchReg::int(7);
        a.observe(&InstRecord::new(0, InstClass::IntAdd).with_reads(&[r]), 0);
        let f = emit(&a);
        assert_eq!(f[0], 1.0); // still an operand
        assert!((2..9).all(|i| f[i] == 0.0)); // no known distance
    }

    #[test]
    fn monotone_cumulative_distribution() {
        let mut a = RegTrafficAnalyzer::new();
        let r = ArchReg::int(1);
        for i in 0..1000u64 {
            let rec = InstRecord::new(0, InstClass::IntAdd)
                .with_reads(&[r])
                .with_write(r);
            a.observe(&rec, i);
        }
        let f = emit(&a);
        for i in 3..9 {
            assert!(f[i] >= f[i - 1] - 1e-12);
        }
    }

    #[test]
    fn reset_clears_producers() {
        let mut a = RegTrafficAnalyzer::new();
        let r = ArchReg::int(1);
        a.observe(&InstRecord::new(0, InstClass::Mov).with_write(r), 0);
        a.reset();
        a.observe(&InstRecord::new(4, InstClass::IntAdd).with_reads(&[r]), 0);
        let f = emit(&a);
        assert!((2..9).all(|i| f[i] == 0.0), "stale producer after reset");
    }
}
