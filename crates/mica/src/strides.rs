//! Data stream stride analyzer (18 features).

use phaselab_trace::InstRecord;

use crate::features::{FeatureVector, STRIDE_BASE};
use crate::fxhash::FxHashMap;
use crate::Analyzer;

/// Cumulative bucket bounds for *local* strides (per static instruction),
/// in bytes of absolute address delta. The first bucket is exact-zero
/// (repeated access to the same address).
const LOCAL_BOUNDS: [u64; 5] = [0, 8, 64, 512, 4096];

/// Cumulative bucket bounds for *global* strides (between consecutive
/// accesses of the whole stream).
const GLOBAL_BOUNDS: [u64; 4] = [64, 4096, 256 * 1024, 16 * 1024 * 1024];

#[derive(Debug, Clone)]
struct StrideDist<const N: usize> {
    counts: [u64; N],
    total: u64,
}

impl<const N: usize> Default for StrideDist<N> {
    fn default() -> Self {
        StrideDist {
            counts: [0; N],
            total: 0,
        }
    }
}

impl<const N: usize> StrideDist<N> {
    #[inline]
    fn record(&mut self, delta: u64, bounds: &[u64; N]) {
        self.total += 1;
        for (slot, &bound) in self.counts.iter_mut().zip(bounds) {
            if delta <= bound {
                *slot += 1;
            }
        }
    }

    fn emit(&self, out: &mut [f64]) {
        let denom = self.total.max(1) as f64;
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64 / denom;
        }
    }

    fn reset(&mut self) {
        self.counts = [0; N];
        self.total = 0;
    }
}

/// Computes the distributions of global and local memory access strides
/// (Table 1, "data stream strides").
///
/// The *global* stride is the absolute difference in memory addresses
/// between two consecutive memory accesses of the same kind (read or
/// write) anywhere in the stream; the *local* stride restricts this to two
/// consecutive accesses by the same static instruction. Both are measured
/// separately for loads and stores and reported as cumulative bucket
/// probabilities.
#[derive(Debug, Clone, Default)]
pub struct StrideAnalyzer {
    local_last_load: FxHashMap<u64, u64>,
    local_last_store: FxHashMap<u64, u64>,
    global_last_load: Option<u64>,
    global_last_store: Option<u64>,
    local_load: StrideDist<5>,
    local_store: StrideDist<5>,
    global_load: StrideDist<4>,
    global_store: StrideDist<4>,
}

impl StrideAnalyzer {
    /// Creates an analyzer with empty distributions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one memory access directly — the block-path equivalent of
    /// [`Analyzer::observe`]: strides depend only on the static
    /// instruction address (the local-stride key), the effective address,
    /// and the access direction.
    #[inline]
    pub fn observe_access(&mut self, pc: u64, addr: u64, is_store: bool) {
        if is_store {
            if let Some(prev) = self.global_last_store.replace(addr) {
                self.global_store
                    .record(prev.abs_diff(addr), &GLOBAL_BOUNDS);
            }
            if let Some(prev) = self.local_last_store.insert(pc, addr) {
                self.local_store.record(prev.abs_diff(addr), &LOCAL_BOUNDS);
            }
        } else {
            if let Some(prev) = self.global_last_load.replace(addr) {
                self.global_load.record(prev.abs_diff(addr), &GLOBAL_BOUNDS);
            }
            if let Some(prev) = self.local_last_load.insert(pc, addr) {
                self.local_load.record(prev.abs_diff(addr), &LOCAL_BOUNDS);
            }
        }
    }
}

impl Analyzer for StrideAnalyzer {
    #[inline]
    fn observe(&mut self, rec: &InstRecord, _index: u64) {
        let Some(mem) = rec.mem else { return };
        self.observe_access(rec.pc, mem.addr, mem.is_store);
    }

    fn emit(&self, out: &mut FeatureVector) {
        let mut buf = [0.0; 18];
        self.local_load.emit(&mut buf[0..5]);
        self.local_store.emit(&mut buf[5..10]);
        self.global_load.emit(&mut buf[10..14]);
        self.global_store.emit(&mut buf[14..18]);
        for (i, v) in buf.into_iter().enumerate() {
            out[STRIDE_BASE + i] = v;
        }
    }

    fn reset(&mut self) {
        self.local_last_load.clear();
        self.local_last_store.clear();
        self.global_last_load = None;
        self.global_last_store = None;
        self.local_load.reset();
        self.local_store.reset();
        self.global_load.reset();
        self.global_store.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phaselab_trace::{InstClass, MemAccess};

    fn load(pc: u64, addr: u64) -> InstRecord {
        InstRecord::new(pc, InstClass::MemRead).with_mem(MemAccess {
            addr,
            size: 8,
            is_store: false,
        })
    }

    fn store(pc: u64, addr: u64) -> InstRecord {
        InstRecord::new(pc, InstClass::MemWrite).with_mem(MemAccess {
            addr,
            size: 8,
            is_store: true,
        })
    }

    fn emit(a: &StrideAnalyzer) -> Vec<f64> {
        let mut out = FeatureVector::zeros();
        a.emit(&mut out);
        (0..18).map(|i| out[STRIDE_BASE + i]).collect()
    }

    #[test]
    fn unit_stride_loads_fall_in_small_buckets() {
        let mut a = StrideAnalyzer::new();
        for i in 0..100u64 {
            a.observe(&load(0x40, i * 8), 0);
        }
        let f = emit(&a);
        // local load: stride 8 -> eq0 = 0, le8 = 1.0
        assert_eq!(f[0], 0.0);
        assert_eq!(f[1], 1.0);
        assert_eq!(f[4], 1.0);
        // global load: stride 8 -> le64 = 1.0
        assert_eq!(f[10], 1.0);
    }

    #[test]
    fn repeated_same_address_is_zero_stride() {
        let mut a = StrideAnalyzer::new();
        for _ in 0..10 {
            a.observe(&load(0x40, 1234), 0);
        }
        let f = emit(&a);
        assert_eq!(f[0], 1.0); // local eq0
    }

    #[test]
    fn local_vs_global_distinguish_interleaving() {
        // Two static loads, each marching unit-stride through far-apart
        // regions: local strides small, global strides huge.
        let mut a = StrideAnalyzer::new();
        for i in 0..100u64 {
            a.observe(&load(0x40, i * 8), 0);
            a.observe(&load(0x44, (1 << 30) + i * 8), 0);
        }
        let f = emit(&a);
        assert!(f[1] > 0.99, "local le8 {}", f[1]);
        assert!(f[13] < 0.02, "global le16m should be tiny, got {}", f[13]);
    }

    #[test]
    fn loads_and_stores_tracked_separately() {
        let mut a = StrideAnalyzer::new();
        for i in 0..50u64 {
            a.observe(&load(0x40, i * 8), 0);
            a.observe(&store(0x44, i * 100_000), 0);
        }
        let f = emit(&a);
        assert_eq!(f[1], 1.0); // local load le8
        assert_eq!(f[6], 0.0); // local store le8
        assert_eq!(f[10], 1.0); // global load le64
        assert_eq!(f[14], 0.0); // global store le64
        assert_eq!(f[15], 0.0); // global store le4096 (stride 100000)
        assert_eq!(f[16], 1.0); // global store le256k
    }

    #[test]
    fn distributions_are_cumulative() {
        let mut a = StrideAnalyzer::new();
        let strides = [0u64, 4, 32, 256, 2048, 1 << 20];
        let mut addr = 1 << 30;
        for s in strides {
            addr += s;
            a.observe(&load(0x40, addr), 0);
        }
        let f = emit(&a);
        for i in 1..5 {
            assert!(f[i] >= f[i - 1]);
        }
        for i in 11..14 {
            assert!(f[i] >= f[i - 1]);
        }
    }

    #[test]
    fn non_memory_instructions_ignored() {
        let mut a = StrideAnalyzer::new();
        a.observe(&InstRecord::new(0, InstClass::IntAdd), 0);
        assert_eq!(emit(&a), vec![0.0; 18]);
    }

    #[test]
    fn reset_clears_history() {
        let mut a = StrideAnalyzer::new();
        a.observe(&load(0x40, 0), 0);
        a.reset();
        a.observe(&load(0x40, 8), 0);
        // Only one access since reset: no stride recorded.
        assert_eq!(emit(&a), vec![0.0; 18]);
    }
}
