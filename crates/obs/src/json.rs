//! A minimal, deterministic JSON value type and pretty-printer.
//!
//! The run manifest must be byte-identical given identical recorded
//! state, so this module avoids anything platform- or locale-dependent:
//! object keys keep the insertion order chosen by the builder, floats
//! are rendered through Rust's `Display` for `f64` (shortest exact
//! round-trip form, never exponent notation for the magnitudes we
//! produce), and non-finite floats degrade to `null`.

use std::fmt::Write as _;

/// A JSON value. Objects preserve the key order they were built with;
/// builders are expected to insert keys in a deterministic order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// The JSON `null` literal. Also the rendering of non-finite floats.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer, rendered without a fractional part.
    U64(u64),
    /// A double. `NaN` and infinities render as `null`.
    F64(f64),
    /// A string, escaped per RFC 8259 on render.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object entry list.
    pub fn obj(entries: Vec<(String, Json)>) -> Json {
        Json::Obj(entries)
    }

    /// Renders the value as pretty-printed JSON with two-space
    /// indentation and a trailing newline.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render_pretty(), "null\n");
        assert_eq!(Json::Bool(true).render_pretty(), "true\n");
        assert_eq!(Json::U64(42).render_pretty(), "42\n");
        assert_eq!(Json::F64(1.5).render_pretty(), "1.5\n");
        // Integral floats render without a fraction; this is still
        // valid JSON and deterministic, which is what we need.
        assert_eq!(Json::F64(3.0).render_pretty(), "3\n");
        assert_eq!(Json::F64(f64::NAN).render_pretty(), "null\n");
        assert_eq!(Json::F64(f64::INFINITY).render_pretty(), "null\n");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render_pretty(),
            "\"a\\\"b\\\\c\\nd\\u0001\"\n"
        );
    }

    #[test]
    fn renders_nested_structure() {
        let doc = Json::Obj(vec![
            ("empty".into(), Json::Obj(vec![])),
            ("list".into(), Json::Arr(vec![Json::U64(1), Json::U64(2)])),
        ]);
        assert_eq!(
            doc.render_pretty(),
            "{\n  \"empty\": {},\n  \"list\": [\n    1,\n    2\n  ]\n}\n"
        );
    }
}
