//! `phaselab-obs`: zero-dependency metrics, span tracing, and
//! run-manifest export for the phaselab pipeline.
//!
//! The crate is built around one process-wide [`Registry`] behind a
//! `OnceLock`, guarded by a fast-path atomic flag: until [`install`]
//! is called, every instrumentation entry point reduces to one relaxed
//! atomic load and a branch, so instrumented code costs near-nothing
//! in the default (no subscriber) configuration.
//!
//! Three recording surfaces:
//!
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s, and log-bucketed
//!   [`Histogram`]s with lock-free increments, plus append-only `f64`
//!   series and per-scope event logs.
//! * **Spans** — RAII [`SpanGuard`]s on thread-local stacks (see the
//!   [`span!`] macro) aggregating call counts, total, and self time
//!   per `parent/child` path across threads.
//! * **Manifest** — [`manifest_json`] serializes everything into one
//!   deterministic JSON document whose structural part is bit-identical
//!   across thread counts; all wall-clock data lives under the
//!   trailing `timings` key (see [`structural_prefix`]).
//!
//! Example:
//!
//! ```
//! phaselab_obs::install();
//! {
//!     let _span = phaselab_obs::span!("demo");
//!     phaselab_obs::counter_add("demo.items", phaselab_obs::Class::Structural, 3);
//! }
//! let reg = phaselab_obs::registry().expect("installed");
//! assert_eq!(reg.counter_value("demo.items"), Some(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
mod manifest;
mod registry;
mod span;

pub use json::Json;
pub use manifest::{manifest, manifest_json, structural_prefix};
pub use registry::{
    bucket_index, bucket_lower_bound, peak_rss_kb, Class, Counter, Gauge, Histogram,
    HistogramSnapshot, Registry, SpanAgg, HISTOGRAM_BUCKETS,
};
pub use span::SpanGuard;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);
static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// Installs the process-wide registry (idempotent) and enables all
/// instrumentation. Returns the registry.
pub fn install() -> &'static Registry {
    let reg = REGISTRY.get_or_init(Registry::new);
    ENABLED.store(true, Ordering::Release);
    reg
}

/// Returns `true` once a subscriber is installed. This is the fast
/// path every instrumentation site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Returns the installed registry, or `None` when no subscriber is
/// installed.
#[inline]
pub fn registry() -> Option<&'static Registry> {
    if enabled() {
        REGISTRY.get()
    } else {
        None
    }
}

/// Adds `n` to the named counter. No-op without a subscriber. Hot
/// loops should accumulate locally and flush once, or hold a
/// [`Counter`] handle, rather than calling this per iteration.
#[inline]
pub fn counter_add(name: &str, class: Class, n: u64) {
    if let Some(reg) = registry() {
        reg.counter(name, class).add(n);
    }
}

/// Sets the named gauge. No-op without a subscriber.
#[inline]
pub fn gauge_set(name: &str, class: Class, v: f64) {
    if let Some(reg) = registry() {
        reg.gauge(name, class).set(v);
    }
}

/// Records one sample into the named histogram. No-op without a
/// subscriber.
#[inline]
pub fn histogram_record(name: &str, class: Class, v: u64) {
    if let Some(reg) = registry() {
        reg.histogram(name, class).record(v);
    }
}

/// Appends `v` to the named series. No-op without a subscriber.
#[inline]
pub fn series_push(name: &str, class: Class, v: f64) {
    if let Some(reg) = registry() {
        reg.series_push(name, class, v);
    }
}

/// Records an event under `scope` (callers should gate any `format!`
/// for `what` behind [`enabled`]). No-op without a subscriber.
#[inline]
pub fn event(scope: &str, what: &str) {
    if let Some(reg) = registry() {
        reg.event(scope, what);
    }
}

/// Sets `key` within a named structural manifest section (see
/// [`Registry::section_set`]); sections render between `events` and
/// `timings`. No-op without a subscriber.
#[inline]
pub fn section_set(section: &str, key: &str, value: Json) {
    if let Some(reg) = registry() {
        reg.section_set(section, key, value);
    }
}

/// Marks the start of a pipeline stage (see [`Registry::set_stage`]).
/// No-op without a subscriber.
#[inline]
pub fn set_stage(name: &str) {
    if let Some(reg) = registry() {
        reg.set_stage(name);
    }
}

/// Opens a timing span: `span!("name")` or `span!("name", index)` for
/// an indexed label like `kmeans.restart[03]`. Bind the result to a
/// variable (`let _span = span!(...)`); the span ends when it drops.
/// Without a subscriber this is one atomic load.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
    ($name:expr, $index:expr) => {
        $crate::SpanGuard::enter_indexed($name, $index)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The global registry is process-wide state, so the entire
    /// enable/install/span/reset lifecycle lives in one test: the
    /// pre-install assertions must run before any `install()`.
    #[test]
    fn global_lifecycle() {
        // Before install: everything is a no-op.
        assert!(!enabled());
        assert!(registry().is_none());
        counter_add("pre.install", Class::Structural, 1);
        let inert = span!("pre.install");
        drop(inert);

        let reg = install();
        assert!(enabled());
        assert!(std::ptr::eq(reg, install()), "install is idempotent");
        assert_eq!(reg.counter_value("pre.install"), None);

        counter_add("post.install", Class::Structural, 2);
        assert_eq!(reg.counter_value("post.install"), Some(2));

        // Nested spans: child time is subtracted from parent self time
        // and paths join with '/'.
        {
            let _outer = span!("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span!("inner", 3);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        reg.with_inner(|snap| {
            let outer = snap.spans.get("outer").expect("outer span");
            let inner = snap.spans.get("outer/inner[03]").expect("inner span");
            assert_eq!(outer.count, 1);
            assert_eq!(inner.count, 1);
            assert!(outer.total >= inner.total);
            assert!(
                outer.self_time
                    <= outer.total.saturating_sub(inner.total) + Duration::from_millis(1),
                "inner time must be charged to the parent's child bucket"
            );
        });

        // Spans on another thread start their own root path but merge
        // into the same registry.
        std::thread::spawn(|| {
            let _worker = span!("outer");
        })
        .join()
        .unwrap();
        reg.with_inner(|snap| {
            assert_eq!(snap.spans.get("outer").expect("merged").count, 2);
        });

        reg.reset();
        assert_eq!(reg.counter_value("post.install"), None);
        assert!(enabled(), "reset clears data, not the installation");
    }
}
