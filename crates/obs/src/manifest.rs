//! Run-manifest export: one deterministic JSON document per study run.
//!
//! The manifest splits into a *structural* part and a trailing
//! `timings` object. The structural part contains only
//! [`Class::Structural`] metrics plus events and series: for a fixed
//! config and seed it is byte-identical across thread counts, which is
//! what the golden tests compare. The `timings` object holds
//! everything wall-clock or scheduling dependent (spans, per-thread
//! tallies, RSS) and is always rendered as the **last** top-level key,
//! so consumers can compare the structural prefix by truncating the
//! document at `"timings"`.

use crate::json::Json;
use crate::registry::{Class, Registry};

/// Builds the manifest document. `config` entries are emitted in the
/// order given (callers must keep that order deterministic and must
/// not include scheduling-dependent values such as the thread count).
/// With `include_timings` false the `timings` key is omitted entirely.
pub fn manifest(reg: &Registry, config: &[(String, Json)], include_timings: bool) -> Json {
    reg.with_inner(|snap| {
        let mut doc: Vec<(String, Json)> = vec![
            ("schema".into(), Json::U64(1)),
            ("config".into(), Json::Obj(config.to_vec())),
        ];

        let counters = snap
            .counters
            .iter()
            .filter(|(_, (class, _))| *class == Class::Structural)
            .map(|(name, (_, v))| (name.clone(), Json::U64(*v)))
            .collect();
        doc.push(("counters".into(), Json::Obj(counters)));

        let gauges = snap
            .gauges
            .iter()
            .filter(|(_, (class, _))| *class == Class::Structural)
            .map(|(name, (_, v))| (name.clone(), Json::F64(*v)))
            .collect();
        doc.push(("gauges".into(), Json::Obj(gauges)));

        let histograms = snap
            .histograms
            .iter()
            .filter(|(_, (class, _))| *class == Class::Structural)
            .map(|(name, (_, h))| {
                let buckets = h
                    .buckets
                    .iter()
                    .map(|(i, n)| (i.to_string(), Json::U64(*n)))
                    .collect();
                let entry = Json::Obj(vec![
                    ("count".into(), Json::U64(h.count)),
                    ("sum".into(), Json::U64(h.sum)),
                    ("buckets".into(), Json::Obj(buckets)),
                ]);
                (name.clone(), entry)
            })
            .collect();
        doc.push(("histograms".into(), Json::Obj(histograms)));

        let series = snap
            .series
            .iter()
            .filter(|(_, (class, _))| *class == Class::Structural)
            .map(|(name, (_, values))| {
                (
                    name.clone(),
                    Json::Arr(values.iter().map(|v| Json::F64(*v)).collect()),
                )
            })
            .collect();
        doc.push(("series".into(), Json::Obj(series)));

        let events = snap
            .events
            .iter()
            .map(|(scope, entries)| {
                (
                    scope.clone(),
                    Json::Arr(entries.iter().map(|e| Json::Str(e.clone())).collect()),
                )
            })
            .collect();
        doc.push(("events".into(), Json::Obj(events)));

        // Named structural sections (e.g. `static_analysis`) render as
        // top-level objects after the fixed keys, still ahead of
        // `timings` so they stay inside the golden-comparable prefix.
        for (name, entries) in &snap.sections {
            let obj = entries
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            doc.push((name.clone(), Json::Obj(obj)));
        }

        if include_timings {
            let mut timings: Vec<(String, Json)> = vec![
                ("stage".into(), Json::Str(snap.stage.clone())),
                (
                    "peak_rss_kb".into(),
                    Json::U64(crate::registry::peak_rss_kb()),
                ),
                (
                    "stage_rss_kb".into(),
                    Json::Obj(
                        snap.stage_rss
                            .iter()
                            .map(|(stage, kb)| (stage.clone(), Json::U64(*kb)))
                            .collect(),
                    ),
                ),
            ];
            let t_counters = snap
                .counters
                .iter()
                .filter(|(_, (class, _))| *class == Class::Timing)
                .map(|(name, (_, v))| (name.clone(), Json::U64(*v)))
                .collect();
            timings.push(("counters".into(), Json::Obj(t_counters)));
            let t_gauges = snap
                .gauges
                .iter()
                .filter(|(_, (class, _))| *class == Class::Timing)
                .map(|(name, (_, v))| (name.clone(), Json::F64(*v)))
                .collect();
            timings.push(("gauges".into(), Json::Obj(t_gauges)));
            let spans = snap
                .spans
                .iter()
                .map(|(path, agg)| {
                    let entry = Json::Obj(vec![
                        ("calls".into(), Json::U64(agg.count)),
                        ("total_ms".into(), Json::F64(agg.total.as_secs_f64() * 1e3)),
                        (
                            "self_ms".into(),
                            Json::F64(agg.self_time.as_secs_f64() * 1e3),
                        ),
                    ]);
                    (path.clone(), entry)
                })
                .collect();
            timings.push(("spans".into(), Json::Obj(spans)));
            doc.push(("timings".into(), Json::Obj(timings)));
        }

        Json::Obj(doc)
    })
}

/// Renders the manifest as pretty-printed JSON text.
pub fn manifest_json(reg: &Registry, config: &[(String, Json)], include_timings: bool) -> String {
    manifest(reg, config, include_timings).render_pretty()
}

/// Returns the structural prefix of a rendered manifest: everything
/// before the top-level `"timings"` key (the whole document if the key
/// is absent). Two runs agree structurally iff these prefixes are
/// byte-identical.
pub fn structural_prefix(rendered: &str) -> &str {
    match rendered.find("\n  \"timings\":") {
        Some(pos) => &rendered[..pos],
        None => rendered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_part_is_deterministic_and_timings_last() {
        let build = || {
            let reg = Registry::new();
            reg.counter("a.count", Class::Structural).add(7);
            reg.counter("z.thread", Class::Timing).add(3);
            reg.gauge("b.gauge", Class::Structural).set(0.5);
            reg.histogram("c.hist", Class::Structural).record(9);
            reg.series_push("d.series", Class::Structural, 1.0);
            reg.event("suite/bench", "characterized");
            reg.set_stage("one");
            reg.set_stage("two");
            reg
        };
        let config = vec![("seed".to_string(), Json::U64(42))];
        let full_a = manifest_json(&build(), &config, true);
        let full_b = manifest_json(&build(), &config, true);
        assert_eq!(structural_prefix(&full_a), structural_prefix(&full_b));

        // Timing-class metrics must not leak into the structural part.
        assert!(!structural_prefix(&full_a).contains("z.thread"));
        assert!(full_a.contains("z.thread"));

        // `timings` is the last top-level key.
        let tail = &full_a[full_a.find("\"timings\"").expect("timings key")..];
        assert!(!tail.contains("\"events\""));

        // Without timings the document has no timings key at all.
        let structural = manifest_json(&build(), &config, false);
        assert!(!structural.contains("timings"));
        assert_eq!(structural_prefix(&structural), structural.as_str());
    }

    #[test]
    fn named_sections_render_between_events_and_timings() {
        let reg = Registry::new();
        reg.event("suite/bench", "characterized");
        reg.section_set(
            "static_analysis",
            "suite/bench",
            Json::Obj(vec![("inst_max".into(), Json::U64(10))]),
        );
        reg.section_set("static_analysis", "suite/bench", Json::U64(7));
        let doc = manifest_json(&reg, &[], true);
        let ev = doc.find("\"events\"").expect("events key");
        let sec = doc.find("\"static_analysis\"").expect("section key");
        let tim = doc.find("\"timings\"").expect("timings key");
        assert!(
            ev < sec && sec < tim,
            "sections sit between events and timings"
        );
        // Last write wins, and the section stays in the structural prefix.
        assert!(structural_prefix(&doc).contains("\"suite/bench\": 7"));
    }

    #[test]
    fn histogram_section_lists_nonempty_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("h", Class::Structural);
        h.record(0);
        h.record(1024);
        let doc = manifest_json(&reg, &[], false);
        assert!(doc.contains("\"count\": 2"));
        assert!(doc.contains("\"0\": 1"));
        assert!(doc.contains("\"11\": 1"));
    }
}
