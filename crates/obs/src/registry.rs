//! The metrics registry: named counters, gauges, log-bucketed
//! histograms, series, events, span aggregates, and stage tracking.
//!
//! Handles (`Counter`, `Gauge`, `Histogram`) are cheap clones of
//! `Arc`-backed atomics: looking one up takes a short mutex-protected
//! map access, but recording through a handle is a single lock-free
//! atomic operation, cheap enough for hot loops. Hot kernels should
//! fetch handles once (or accumulate in locals and flush), not look up
//! by name per iteration.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use crate::json::Json;

/// Determinism class of a metric. See DESIGN.md §13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Bit-identical across thread counts for a given config and seed.
    /// Rendered in the structural (golden-comparable) part of the
    /// manifest.
    Structural,
    /// Wall-clock, scheduling, or platform dependent. Rendered only
    /// under the manifest's trailing `timings` section.
    Timing,
}

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `u64::MAX` (which lands in bucket 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Maps a sample to its histogram bucket: `0 -> 0`, otherwise
/// `1 + floor(log2(v))`. Bucket `i >= 1` therefore covers the value
/// range `[2^(i-1), 2^i - 1]`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        1 + v.ilog2() as usize
    }
}

/// Inclusive lower bound of a bucket (`0` for bucket 0).
pub fn bucket_lower_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A monotonically increasing `u64` counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge handle (stored as raw bits).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A base-2 log-bucketed histogram handle for `u64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            core: Arc::new(HistogramCore {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.count.fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect();
        HistogramSnapshot {
            count: self.core.count.load(Ordering::Relaxed),
            sum: self.core.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time histogram state; only non-empty buckets are listed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples (wrapping on overflow).
    pub sum: u64,
    /// `(bucket_index, sample_count)` pairs for non-empty buckets,
    /// in ascending bucket order.
    pub buckets: Vec<(usize, u64)>,
}

/// Aggregated timing for one span path across all threads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of completed spans with this path.
    pub count: u64,
    /// Total wall time inside the span, including child spans.
    pub total: Duration,
    /// Wall time excluding child spans on the same thread.
    pub self_time: Duration,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, (Class, Counter)>,
    gauges: BTreeMap<String, (Class, Gauge)>,
    histograms: BTreeMap<String, (Class, Histogram)>,
    series: BTreeMap<String, (Class, Vec<f64>)>,
    events: BTreeMap<String, Vec<String>>,
    sections: BTreeMap<String, BTreeMap<String, Json>>,
    spans: BTreeMap<String, SpanAgg>,
    stage: String,
    stage_rss: BTreeMap<String, u64>,
}

/// The metrics registry. One process-wide instance is installed via
/// [`crate::install`]; independent instances can be created for tests.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned registry only means a panicking thread held the
        // lock mid-update; metrics stay usable.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str, class: Class) -> Counter {
        let mut inner = self.lock();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| {
                (
                    class,
                    Counter {
                        cell: Arc::new(AtomicU64::new(0)),
                    },
                )
            })
            .1
            .clone()
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str, class: Class) -> Gauge {
        let mut inner = self.lock();
        inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| {
                (
                    class,
                    Gauge {
                        bits: Arc::new(AtomicU64::new(0f64.to_bits())),
                    },
                )
            })
            .1
            .clone()
    }

    /// Returns (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str, class: Class) -> Histogram {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| (class, Histogram::new()))
            .1
            .clone()
    }

    /// Appends `v` to the series named `name`.
    pub fn series_push(&self, name: &str, class: Class, v: f64) {
        let mut inner = self.lock();
        inner
            .series
            .entry(name.to_string())
            .or_insert_with(|| (class, Vec::new()))
            .1
            .push(v);
    }

    /// Records an event under `scope`. Events within one scope keep
    /// their recording order; scopes are sorted on export, so the
    /// cross-scope interleaving (which depends on scheduling) never
    /// reaches the manifest.
    pub fn event(&self, scope: &str, what: &str) {
        let mut inner = self.lock();
        inner
            .events
            .entry(scope.to_string())
            .or_default()
            .push(what.to_string());
    }

    /// Sets `key` within the named structural manifest section.
    /// Sections render as top-level manifest objects between `events`
    /// and `timings`, so their entries — like any Structural metric —
    /// must be deterministic across thread counts. Keys within a
    /// section and sections themselves render in sorted order;
    /// re-setting a key overwrites it (last write wins).
    pub fn section_set(&self, section: &str, key: &str, value: Json) {
        let mut inner = self.lock();
        inner
            .sections
            .entry(section.to_string())
            .or_default()
            .insert(key.to_string(), value);
    }

    /// Marks the start of a pipeline stage. The peak RSS observed so
    /// far is attributed to the stage being left (if any), so each
    /// stage records the high-water mark up to its end.
    pub fn set_stage(&self, name: &str) {
        let rss = peak_rss_kb();
        let mut inner = self.lock();
        if !inner.stage.is_empty() {
            let old = inner.stage.clone();
            inner.stage_rss.insert(old, rss);
        }
        inner.stage = name.to_string();
    }

    /// Returns the current stage name (empty if never set).
    pub fn stage(&self) -> String {
        self.lock().stage.clone()
    }

    /// Returns the current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.lock().counters.get(name).map(|(_, c)| c.get())
    }

    /// Folds a completed span into the per-path aggregate.
    pub(crate) fn span_record(&self, path: &str, total: Duration, self_time: Duration) {
        let mut inner = self.lock();
        let agg = inner.spans.entry(path.to_string()).or_default();
        agg.count += 1;
        agg.total += total;
        agg.self_time += self_time;
    }

    /// Clears all recorded state (metrics, events, spans, stage).
    /// Handles obtained before the reset are detached: they keep
    /// working but no longer feed the registry's maps.
    pub fn reset(&self) {
        let mut inner = self.lock();
        *inner = Inner::default();
    }

    /// Snapshot accessor used by the manifest builder.
    pub(crate) fn with_inner<R>(&self, f: impl FnOnce(&Snapshot) -> R) -> R {
        let inner = self.lock();
        let snap = Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, (class, c))| (k.clone(), (*class, c.get())))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, (class, g))| (k.clone(), (*class, g.get())))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, (class, h))| (k.clone(), (*class, h.snapshot())))
                .collect(),
            series: inner.series.clone(),
            events: inner.events.clone(),
            sections: inner.sections.clone(),
            spans: inner.spans.clone(),
            stage: inner.stage.clone(),
            stage_rss: inner.stage_rss.clone(),
        };
        drop(inner);
        f(&snap)
    }
}

/// A fully materialized copy of registry state for export.
pub(crate) struct Snapshot {
    pub counters: BTreeMap<String, (Class, u64)>,
    pub gauges: BTreeMap<String, (Class, f64)>,
    pub histograms: BTreeMap<String, (Class, HistogramSnapshot)>,
    pub series: BTreeMap<String, (Class, Vec<f64>)>,
    pub events: BTreeMap<String, Vec<String>>,
    pub sections: BTreeMap<String, BTreeMap<String, Json>>,
    pub spans: BTreeMap<String, SpanAgg>,
    pub stage: String,
    pub stage_rss: BTreeMap<String, u64>,
}

/// Returns the process peak resident set size in KiB, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without
/// procfs; peak RSS then simply reports as 0 in the manifest.
pub fn peak_rss_kb() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let digits: String = rest.chars().filter(char::is_ascii_digit).collect();
                    if let Ok(kb) = digits.parse() {
                        return kb;
                    }
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edge_cases() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        // Every power of two starts a new bucket; its predecessor
        // closes the previous one.
        for shift in 1..64 {
            let v = 1u64 << shift;
            assert_eq!(bucket_index(v), shift + 1, "2^{shift}");
            assert_eq!(bucket_index(v - 1), shift, "2^{shift} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
        assert_eq!(HISTOGRAM_BUCKETS, 65);
    }

    #[test]
    fn bucket_lower_bounds_match_indices() {
        for i in 0..HISTOGRAM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i, "bucket {i} lower bound {lo}");
        }
    }

    #[test]
    fn histogram_records_edges() {
        let reg = Registry::new();
        let h = reg.histogram("h", Class::Structural);
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        // Sum wraps: 0 + 1 + MAX + MAX == MAX - 1 (mod 2^64).
        assert_eq!(snap.sum, u64::MAX.wrapping_mul(2).wrapping_add(1));
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (64, 2)]);
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("c", Class::Structural);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);
        assert_eq!(reg.counter_value("c"), Some(4));
        assert_eq!(reg.counter_value("missing"), None);
        let g = reg.gauge("g", Class::Timing);
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        // Same name returns the same underlying cell.
        reg.counter("c", Class::Structural).inc();
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn events_keep_per_scope_order() {
        let reg = Registry::new();
        reg.event("b/second", "one");
        reg.event("a/first", "one");
        reg.event("b/second", "two");
        reg.with_inner(|snap| {
            let scopes: Vec<&String> = snap.events.keys().collect();
            assert_eq!(scopes, ["a/first", "b/second"]);
            assert_eq!(snap.events["b/second"], ["one", "two"]);
        });
    }

    #[test]
    fn reset_clears_state() {
        let reg = Registry::new();
        reg.counter("c", Class::Structural).inc();
        reg.set_stage("x");
        reg.reset();
        assert_eq!(reg.counter_value("c"), None);
        assert_eq!(reg.stage(), "");
    }
}
