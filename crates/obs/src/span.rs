//! Hierarchical span timing with thread-local span stacks.
//!
//! A [`SpanGuard`] measures the wall time between its creation and
//! drop. Guards nest per thread: while a guard is alive, guards opened
//! on the same thread become its children and their elapsed time is
//! subtracted from the parent's *self* time. On drop, the completed
//! span is folded into the installed registry's per-path aggregate
//! (`parent/child` paths), merging across threads.
//!
//! When no subscriber is installed the constructor returns an inert
//! guard after a single relaxed atomic load.

use std::cell::RefCell;
use std::time::{Duration, Instant};

struct Frame {
    path: String,
    start: Instant,
    child: Duration,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An RAII guard timing one span. Create with [`SpanGuard::enter`] or
/// the [`crate::span!`] macro; the span ends when the guard drops.
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    active: bool,
}

impl SpanGuard {
    /// Opens a span named `name`, nested under the innermost span
    /// already open on this thread (if any).
    pub fn enter(name: &str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { active: false };
        }
        Self::push(name)
    }

    /// Opens a span named `name[NN]` (two-digit index). The label is
    /// only formatted when a subscriber is installed.
    pub fn enter_indexed(name: &str, index: usize) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { active: false };
        }
        Self::push(&format!("{name}[{index:02}]"))
    }

    fn push(name: &str) -> SpanGuard {
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{name}", parent.path),
                None => name.to_string(),
            };
            stack.push(Frame {
                path,
                start: Instant::now(),
                child: Duration::ZERO,
            });
        });
        SpanGuard { active: true }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else { return };
            let elapsed = frame.start.elapsed();
            if let Some(parent) = stack.last_mut() {
                parent.child += elapsed;
            }
            if let Some(reg) = crate::registry() {
                reg.span_record(&frame.path, elapsed, elapsed.saturating_sub(frame.child));
            }
        });
    }
}
