//! Shared std-only parallel executor for `phaselab`.
//!
//! Every parallel stage of the pipeline — benchmark characterization,
//! k-means restarts and assignment passes, GA fitness evaluation, the
//! pairwise-distance kernel — runs on the primitives in this crate, so
//! thread-count policy and determinism guarantees live in one place.
//!
//! # Design
//!
//! The executor is the work-stealing loop the pipeline originally
//! hand-rolled for benchmark characterization: a shared atomic cursor
//! hands out task indices, `std::thread::scope` workers race on it, and
//! each result lands in its own pre-allocated slot. Because results are
//! keyed by task index — never by completion order — every function here
//! returns **exactly the same output regardless of thread count**, which
//! is what lets the statistical pipeline promise bit-identical studies
//! from `--threads 1` and `--threads 64`.
//!
//! No dependencies, no unsafe: just `std::thread::scope`, atomics and
//! per-slot mutexes. Workers running a single task never touch a lock on
//! the hot path of the task itself, so the coordination cost is one
//! atomic fetch-add plus one uncontended mutex acquisition per task;
//! tasks therefore want to be coarse (a chunk of rows, a restart, a
//! genome), not a single arithmetic operation.
//!
//! # Seed derivation
//!
//! Deterministic parallelism needs per-task seeds that are independent of
//! scheduling. [`derive_seed`] hashes a master seed and a stream index
//! through SplitMix64 so each restart/population draws from its own
//! well-separated stream no matter which worker runs it.
//!
//! # Examples
//!
//! ```
//! use phaselab_par::{parallel_map, parallel_chunks};
//!
//! let squares = parallel_map(&[1u64, 2, 3, 4], 2, |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Chunked iteration over an index space, results in chunk order.
//! let sums = parallel_chunks(10, 4, 2, |r| r.sum::<usize>());
//! assert_eq!(sums.len(), 3); // 0..4, 4..8, 8..10
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A parallel stage was cancelled before every task completed.
///
/// Returned by [`parallel_map_cancellable`] and
/// [`try_parallel_map_cancellable`] when their [`CancelToken`] fired
/// early enough that at least one task never ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parallel stage cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Remaining task completions before auto-cancel; `u64::MAX` means
    /// "no countdown armed".
    countdown: AtomicU64,
}

/// A cooperative cancellation flag shared between a controller (e.g. a
/// Ctrl-C handler) and the executor's workers.
///
/// Cancellation is *cooperative*: workers check the token before
/// claiming each task, so tasks already in flight run to completion and
/// their results stay valid — nothing is torn down mid-task. Clones
/// share one flag.
///
/// [`CancelToken::after`] arms a deterministic countdown: the token
/// cancels itself once the executor has completed that many tasks,
/// which gives tests a scheduling-independent way to interrupt a stage
/// "after N benchmarks".
///
/// # Examples
///
/// ```
/// use phaselab_par::{parallel_map_cancellable, CancelToken};
///
/// let token = CancelToken::new();
/// let out = parallel_map_cancellable(&[1u64, 2, 3], 2, &token, |&x| x * x);
/// assert_eq!(out.unwrap(), vec![1, 4, 9]);
///
/// let token = CancelToken::new();
/// token.cancel();
/// assert!(parallel_map_cancellable(&[1u64, 2, 3], 2, &token, |&x| x).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// Creates a token that never fires on its own; only [`cancel`]
    /// (from any clone, any thread) trips it.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                countdown: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Creates a token that cancels itself after `tasks` task
    /// completions across all cancellable stages it is passed to.
    ///
    /// With `tasks == 0` the token starts out cancelled. Because
    /// in-flight tasks always finish, up to `workers - 1` additional
    /// tasks may still complete after the countdown trips.
    pub fn after(tasks: u64) -> Self {
        let token = CancelToken::new();
        if tasks == 0 {
            token.cancel();
        } else {
            token.inner.countdown.store(tasks, Ordering::SeqCst);
        }
        token
    }

    /// Trips the token. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Records one task completion, tripping the token when an armed
    /// [`after`](CancelToken::after) countdown reaches zero.
    fn task_completed(&self) {
        let hit_zero = self
            .inner
            .countdown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| {
                if c == u64::MAX || c == 0 {
                    None
                } else {
                    Some(c - 1)
                }
            });
        if hit_zero == Ok(1) {
            self.cancel();
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

/// The shared work-stealing core: runs `run(0..n)` on up to `threads`
/// workers, each result keyed by its task index. Returns `None` iff the
/// token cancelled before every slot was filled (the partial results are
/// dropped); with `token: None` the result is always `Some`.
fn run_tasks<U, F>(n: usize, threads: usize, token: Option<&CancelToken>, run: F) -> Option<Vec<U>>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let workers = threads.min(n).max(1);
    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for idx in 0..n {
            if token.is_some_and(CancelToken::is_cancelled) {
                flush_worker_tallies(&[(out.len() as u64, 0)]);
                return None;
            }
            out.push(run(idx));
            if let Some(t) = token {
                t.task_completed();
            }
        }
        flush_worker_tallies(&[(out.len() as u64, 0)]);
        return Some(out);
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // (tasks run, empty cursor claims) per worker, written once at exit.
    let tallies: Vec<Mutex<(u64, u64)>> = (0..workers).map(|_| Mutex::new((0, 0))).collect();

    std::thread::scope(|scope| {
        for tally in &tallies {
            let (cursor, slots, run) = (&cursor, &slots, &run);
            scope.spawn(move || {
                let (mut done, mut wasted) = (0u64, 0u64);
                loop {
                    if token.is_some_and(CancelToken::is_cancelled) {
                        break;
                    }
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        wasted += 1;
                        break;
                    }
                    let out = run(idx);
                    *slots[idx].lock().expect("result slot poisoned") = Some(out);
                    done += 1;
                    if let Some(t) = token {
                        t.task_completed();
                    }
                }
                *tally.lock().expect("tally slot poisoned") = (done, wasted);
            });
        }
    });

    let counts: Vec<(u64, u64)> = tallies
        .into_iter()
        .map(|t| t.into_inner().expect("tally slot poisoned"))
        .collect();
    flush_worker_tallies(&counts);

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.push(slot.into_inner().expect("result slot poisoned")?);
    }
    Some(out)
}

/// Accumulates per-worker `(tasks, wasted claims)` tallies into the
/// observability registry. Worker indices are per-invocation, so the
/// per-thread counters describe load balance, not OS threads. All of
/// this is Timing-class: the split depends on scheduling.
fn flush_worker_tallies(counts: &[(u64, u64)]) {
    use phaselab_obs::Class;
    if !phaselab_obs::enabled() {
        return;
    }
    let mut total_done = 0u64;
    let mut total_wasted = 0u64;
    for (w, (done, wasted)) in counts.iter().enumerate() {
        total_done += done;
        total_wasted += wasted;
        phaselab_obs::counter_add(&format!("par.thread[{w:02}].tasks"), Class::Timing, *done);
    }
    phaselab_obs::counter_add("par.tasks", Class::Timing, total_done);
    phaselab_obs::counter_add("par.wasted_claims", Class::Timing, total_wasted);
}

/// Resolves a requested thread count: `0` means "all cores".
///
/// # Examples
///
/// ```
/// assert_eq!(phaselab_par::effective_threads(3), 3);
/// assert!(phaselab_par::effective_threads(0) >= 1);
/// ```
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
    } else {
        requested
    }
}

/// One step of the SplitMix64 generator.
///
/// Advances `state` and returns the next output. SplitMix64 passes
/// BigCrush and is the standard choice for expanding one seed into many.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed of stream `stream` from a master seed.
///
/// The derivation is a pure function of `(master, stream)`, so a parallel
/// stage that gives task *i* the seed `derive_seed(master, i)` produces
/// identical randomness no matter how tasks are scheduled across threads.
///
/// # Examples
///
/// ```
/// let a = phaselab_par::derive_seed(42, 0);
/// let b = phaselab_par::derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, phaselab_par::derive_seed(42, 0));
/// ```
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let mut state = master ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    let first = splitmix64(&mut state);
    // A second scramble decorrelates adjacent (master, stream) pairs.
    let mut state2 = first ^ 0x2545_F491_4F6C_DD1D;
    splitmix64(&mut state2)
}

/// Applies `f` to every item, in parallel, returning results in item
/// order.
///
/// Work is distributed by a shared atomic cursor (work stealing by
/// competition: fast workers take more tasks), so uneven task costs
/// balance automatically. With `threads <= 1` — or a single item — the
/// closure runs inline on the caller's thread with no synchronization.
///
/// The output is always `items.iter().map(f)` in order; thread count
/// affects wall-clock only, never results.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    run_tasks(items.len(), threads, None, |idx| f(&items[idx]))
        .expect("uncancellable stage always completes")
}

/// [`parallel_map`] with cooperative cancellation.
///
/// Workers check `token` before claiming each task; tasks already in
/// flight finish and the stage returns `Err(Cancelled)` only if at
/// least one task never ran. If the token trips after the last task was
/// claimed, the complete result vector is still returned — a late
/// cancel never discards finished work.
///
/// On success the output is exactly [`parallel_map`]'s: results in item
/// order, bit-identical across thread counts.
///
/// # Errors
///
/// Returns [`Cancelled`] when the token fired before every task
/// completed. Partial results are dropped; durable side effects of the
/// tasks that did run (e.g. checkpoint writes) are the caller's to keep.
pub fn parallel_map_cancellable<T, U, F>(
    items: &[T],
    threads: usize,
    token: &CancelToken,
    f: F,
) -> Result<Vec<U>, Cancelled>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    run_tasks(items.len(), threads, Some(token), |idx| f(&items[idx])).ok_or(Cancelled)
}

/// Applies `f` to every item by value, in parallel, returning results in
/// item order.
///
/// The owned variant of [`parallel_map`]: use it when tasks carry
/// exclusive state — e.g. disjoint `&mut` sub-slices produced by
/// `chunks_mut`, which cannot be handed out through a shared `&T`.
/// Ordering and determinism guarantees are identical to
/// [`parallel_map`].
pub fn parallel_map_owned<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = threads.min(items.len()).max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_tasks(tasks.len(), workers, None, |idx| {
        let task = tasks[idx]
            .lock()
            .expect("task slot poisoned")
            .take()
            .expect("each task is taken exactly once");
        f(task)
    })
    .expect("uncancellable stage always completes")
}

/// Applies a fallible `f` to every item, in parallel, returning either
/// all results in item order or the error of the *lowest-indexed*
/// failing item.
///
/// Every task still runs to completion — there is no early abort, so
/// side effects are identical across thread counts — but the error
/// reported is always the one `items.iter().map(f)` would hit first.
/// That keeps fallible stages exactly as deterministic as
/// [`parallel_map`]: thread count never changes *which* error surfaces.
///
/// # Errors
///
/// Returns the `Err` of the lowest-indexed item for which `f` fails.
pub fn try_parallel_map<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let outcomes = parallel_map(items, threads, f);
    let mut out = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        out.push(outcome?);
    }
    Ok(out)
}

/// [`try_parallel_map`] with cooperative cancellation.
///
/// The outer `Result` reports cancellation; the inner one carries the
/// first (lowest-indexed) task error, exactly as [`try_parallel_map`]
/// would. Like [`parallel_map_cancellable`], a token that trips after
/// every task was claimed does not discard the finished results.
///
/// # Errors
///
/// Outer [`Cancelled`] when the token fired before every task
/// completed; inner `E` of the lowest-indexed failing item otherwise.
pub fn try_parallel_map_cancellable<T, U, E, F>(
    items: &[T],
    threads: usize,
    token: &CancelToken,
    f: F,
) -> Result<Result<Vec<U>, E>, Cancelled>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let outcomes = parallel_map_cancellable(items, threads, token, f)?;
    let mut out = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        match outcome {
            Ok(v) => out.push(v),
            Err(e) => return Ok(Err(e)),
        }
    }
    Ok(Ok(out))
}

/// Splits `0..len` into chunks of at most `chunk` indices and applies `f`
/// to each chunk in parallel, returning results in chunk order.
///
/// The chunk grid depends only on `len` and `chunk`, and results are
/// ordered by chunk start, so concatenating per-chunk output reconstructs
/// the full index space in ascending order regardless of thread count.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn parallel_chunks<U, F>(len: usize, chunk: usize, threads: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let ranges: Vec<Range<usize>> = (0..len)
        .step_by(chunk)
        .map(|start| start..(start + chunk).min(len))
        .collect();
    parallel_map(&ranges, threads, |r| f(r.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(7), 7);
    }

    #[test]
    fn derive_seed_is_pure_and_separating() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..4u64 {
            for stream in 0..64u64 {
                let s = derive_seed(master, stream);
                assert_eq!(s, derive_seed(master, stream));
                assert!(seen.insert(s), "seed collision at ({master},{stream})");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 4, 16] {
            let out = parallel_map(&items, threads, |&x| x * 3 + 1);
            assert_eq!(out, items.iter().map(|&x| x * 3 + 1).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9u32], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_map_balances_uneven_tasks() {
        // Tasks with wildly different costs still land in their slots.
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map(&items, 4, |&x| {
            let spin = if x % 7 == 0 { 20_000 } else { 10 };
            let mut acc = x;
            for i in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            (x, acc)
        });
        for (i, &(x, _)) in out.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn parallel_map_owned_moves_tasks_in_order() {
        let mut backing: Vec<u64> = (0..50).collect();
        for threads in [1, 4] {
            let tasks: Vec<&mut [u64]> = backing.chunks_mut(7).collect();
            let out = parallel_map_owned(tasks, threads, |chunk| {
                for v in chunk.iter_mut() {
                    *v = v.wrapping_add(1);
                }
                chunk.len()
            });
            assert_eq!(out.iter().sum::<usize>(), 50);
            assert_eq!(out[0], 7);
        }
        assert_eq!(backing[0], 2, "both passes incremented in place");
    }

    #[test]
    fn parallel_chunks_covers_index_space() {
        for threads in [1, 3] {
            let chunks = parallel_chunks(23, 5, threads, std::iter::Iterator::collect::<Vec<_>>);
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..23).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_chunks_zero_len_is_empty() {
        assert!(parallel_chunks(0, 5, 2, |r| r.len()).is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn parallel_chunks_rejects_zero_chunk() {
        let _ = parallel_chunks(10, 0, 2, |r| r.len());
    }

    #[test]
    fn try_parallel_map_collects_or_reports_first_error() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let ok: Result<Vec<u64>, String> = try_parallel_map(&items, threads, |&x| Ok(x + 1));
            assert_eq!(ok.expect("no failures"), (1..=64).collect::<Vec<_>>());
            // Two failing items: the lower index always wins, no matter
            // which worker reaches it first.
            let err: Result<Vec<u64>, u64> = try_parallel_map(&items, threads, |&x| {
                if x == 9 || x == 40 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
            assert_eq!(err.expect_err("has failures"), 9);
        }
    }

    #[test]
    fn cancellable_map_completes_with_untripped_token() {
        let items: Vec<u64> = (0..97).collect();
        for threads in [1, 2, 8] {
            let token = CancelToken::new();
            let out = parallel_map_cancellable(&items, threads, &token, |&x| x + 1)
                .expect("untripped token never cancels");
            assert_eq!(out, (1..=97).collect::<Vec<_>>());
            assert!(!token.is_cancelled());
        }
    }

    #[test]
    fn pre_cancelled_token_skips_all_work() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let ran = AtomicUsize::new(0);
            let token = CancelToken::new();
            token.cancel();
            let out = parallel_map_cancellable(&items, threads, &token, |&x| {
                ran.fetch_add(1, Ordering::SeqCst);
                x
            });
            assert_eq!(out, Err(Cancelled));
            assert_eq!(ran.load(Ordering::SeqCst), 0, "no task should start");
        }
    }

    #[test]
    fn countdown_token_cancels_after_n_completions() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 2, 4] {
            let token = CancelToken::after(5);
            let out = parallel_map_cancellable(&items, threads, &token, |&x| x);
            assert_eq!(out, Err(Cancelled), "5 of 100 tasks cannot finish the map");
            assert!(token.is_cancelled());
        }
        // A countdown larger than the task count never trips.
        let token = CancelToken::after(1_000);
        assert!(parallel_map_cancellable(&items, 4, &token, |&x| x).is_ok());
        assert!(!token.is_cancelled());
    }

    #[test]
    fn after_zero_starts_cancelled() {
        let token = CancelToken::after(0);
        assert!(token.is_cancelled());
    }

    #[test]
    fn cancel_is_visible_through_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn try_cancellable_reports_first_error_or_cancellation() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let token = CancelToken::new();
            let err: Result<Result<Vec<u64>, u64>, Cancelled> =
                try_parallel_map_cancellable(&items, threads, &token, |&x| {
                    if x == 9 || x == 40 {
                        Err(x)
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(err.expect("not cancelled").expect_err("has failures"), 9);

            let token = CancelToken::after(0);
            let cancelled: Result<Result<Vec<u64>, u64>, Cancelled> =
                try_parallel_map_cancellable(&items, threads, &token, |&x| Ok(x));
            assert_eq!(cancelled, Err(Cancelled));
        }
    }

    #[test]
    fn cancellable_results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let reference = parallel_map_cancellable(&items, 1, &CancelToken::new(), |&x| {
            x.wrapping_mul(7) ^ 0xA5
        })
        .expect("complete");
        for threads in [2, 3, 8] {
            let out = parallel_map_cancellable(&items, threads, &CancelToken::new(), |&x| {
                x.wrapping_mul(7) ^ 0xA5
            })
            .expect("complete");
            assert_eq!(out, reference);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let items: Vec<u64> = (0..100).collect();
        let reference = parallel_map(&items, 1, |&x| x.wrapping_mul(x) ^ 0xDEAD);
        for threads in [2, 3, 8] {
            assert_eq!(
                parallel_map(&items, threads, |&x| x.wrapping_mul(x) ^ 0xDEAD),
                reference
            );
        }
    }
}
