//! Job specifications: the study-shaped unit of work the queue spools
//! and the server executes.
//!
//! A [`JobSpec`] captures exactly the submitter-visible study knobs —
//! the same flags a direct `repro` invocation would take — in one
//! canonical JSON document. Canonical means: fixed key order, absent
//! optionals rendered as `null`, no timestamps, no submitter identity.
//! The FNV-1a hash of those bytes is the job's [`fingerprint`]
//! (`JobSpec::fingerprint`): two submissions asking for the same study
//! hash identically no matter who sent them or when, which is what
//! makes server-side deduplication a file-name comparison.
//!
//! Deliberately *excluded* from the spec: thread counts (results are
//! bit-identical across them), progress/metrics flags (presentation,
//! not work), and checkpoint directories (the server owns the store).

use phaselab_obs::Json;
use std::fmt;

use crate::json;

/// The study-shaped description of one submitted job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// The experiment to render (e.g. `table3`).
    pub experiment: String,
    /// Workload scale: `tiny`, `small`, or `full`.
    pub scale: String,
    /// Interval length in instructions.
    pub interval_len: u64,
    /// Samples per benchmark.
    pub samples: u64,
    /// Number of k-means clusters.
    pub k: u64,
    /// Master seed.
    pub seed: u64,
    /// VM execution engine: `block` or `inst`.
    pub engine: String,
    /// Suite restriction (short names), or `None` for all suites.
    pub suites: Option<Vec<String>>,
    /// Benchmark-name restriction; empty means no restriction.
    pub only: Vec<String>,
    /// Runaway watchdog budget override, if any.
    pub max_inst_per_bench: Option<u64>,
    /// Whether the static pre-flight runs (the default).
    pub static_analysis: bool,
    /// Mini-batch k-means size, or `None` for the exact solver.
    pub kmeans_batch: Option<u64>,
}

/// Why a spool document could not be understood as a job spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The document is not valid JSON.
    Json(json::ParseError),
    /// The document parsed but a field is missing or mistyped.
    Field(&'static str),
    /// The schema version is not one this build understands.
    Schema(u64),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "malformed JSON: {e}"),
            SpecError::Field(name) => write!(f, "missing or mistyped field `{name}`"),
            SpecError::Schema(v) => write!(f, "unsupported job schema {v}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Version stamp of the spool JSON layout.
const SCHEMA: u64 = 1;

impl JobSpec {
    /// Renders the canonical JSON document (see the [module
    /// docs](self) for what canonical means here).
    pub fn to_json(&self) -> String {
        self.to_value().render_pretty()
    }

    /// The canonical document as a [`Json`] value, for embedding in
    /// larger records (completion records carry the spec under `spec`).
    pub fn to_value(&self) -> Json {
        let opt_u64 = |v: Option<u64>| v.map_or(Json::Null, Json::U64);
        let strs =
            |items: &[String]| Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect());
        Json::Obj(vec![
            ("schema".to_string(), Json::U64(SCHEMA)),
            ("experiment".to_string(), Json::Str(self.experiment.clone())),
            ("scale".to_string(), Json::Str(self.scale.clone())),
            ("interval_len".to_string(), Json::U64(self.interval_len)),
            ("samples".to_string(), Json::U64(self.samples)),
            ("k".to_string(), Json::U64(self.k)),
            ("seed".to_string(), Json::U64(self.seed)),
            ("engine".to_string(), Json::Str(self.engine.clone())),
            (
                "suites".to_string(),
                self.suites.as_deref().map_or(Json::Null, strs),
            ),
            ("only".to_string(), strs(&self.only)),
            (
                "max_inst_per_bench".to_string(),
                opt_u64(self.max_inst_per_bench),
            ),
            (
                "static_analysis".to_string(),
                Json::Bool(self.static_analysis),
            ),
            ("kmeans_batch".to_string(), opt_u64(self.kmeans_batch)),
        ])
    }

    /// Parses a spool document back into a spec.
    ///
    /// # Errors
    ///
    /// [`SpecError`] naming the malformed JSON, the bad schema, or the
    /// first missing/mistyped field.
    pub fn parse(text: &str) -> Result<JobSpec, SpecError> {
        let doc = json::parse(text).map_err(SpecError::Json)?;
        Self::from_value(&doc)
    }

    /// Extracts a spec from an already-parsed document (completion
    /// records embed the spec under a `spec` key).
    pub fn from_value(doc: &Json) -> Result<JobSpec, SpecError> {
        let field = |name: &'static str| json::get(doc, name).ok_or(SpecError::Field(name));
        let str_field = |name: &'static str| {
            field(name).and_then(|v| {
                json::as_str(v)
                    .map(ToString::to_string)
                    .ok_or(SpecError::Field(name))
            })
        };
        let u64_field = |name: &'static str| {
            field(name).and_then(|v| json::as_u64(v).ok_or(SpecError::Field(name)))
        };
        let opt_u64_field = |name: &'static str| match field(name)? {
            Json::Null => Ok(None),
            v => json::as_u64(v).map(Some).ok_or(SpecError::Field(name)),
        };
        let str_list = |name: &'static str, v: &Json| -> Result<Vec<String>, SpecError> {
            json::as_arr(v)
                .ok_or(SpecError::Field(name))?
                .iter()
                .map(|item| {
                    json::as_str(item)
                        .map(ToString::to_string)
                        .ok_or(SpecError::Field(name))
                })
                .collect()
        };
        let schema = u64_field("schema")?;
        if schema != SCHEMA {
            return Err(SpecError::Schema(schema));
        }
        let suites = match field("suites")? {
            Json::Null => None,
            v => Some(str_list("suites", v)?),
        };
        let only = str_list("only", field("only")?)?;
        let static_analysis = field("static_analysis")
            .and_then(|v| json::as_bool(v).ok_or(SpecError::Field("static_analysis")))?;
        Ok(JobSpec {
            experiment: str_field("experiment")?,
            scale: str_field("scale")?,
            interval_len: u64_field("interval_len")?,
            samples: u64_field("samples")?,
            k: u64_field("k")?,
            seed: u64_field("seed")?,
            engine: str_field("engine")?,
            suites,
            only,
            max_inst_per_bench: opt_u64_field("max_inst_per_bench")?,
            static_analysis,
            kmeans_batch: opt_u64_field("kmeans_batch")?,
        })
    }

    /// FNV-1a 64 over the canonical JSON bytes: the dedup key.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        for b in self.to_json().bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h
    }

    /// The `repro` argv equivalent of this spec, *without* the
    /// server-owned flags (`--checkpoint-dir`, `--metrics-out`): the
    /// job runner appends those.
    pub fn argv(&self) -> Vec<String> {
        let mut out = vec![
            "--scale".to_string(),
            self.scale.clone(),
            "--interval".to_string(),
            self.interval_len.to_string(),
            "--samples".to_string(),
            self.samples.to_string(),
            "--k".to_string(),
            self.k.to_string(),
            "--seed".to_string(),
            self.seed.to_string(),
            "--engine".to_string(),
            self.engine.clone(),
        ];
        if let Some(suites) = &self.suites {
            out.push("--suites".to_string());
            out.push(suites.join(","));
        }
        if !self.only.is_empty() {
            out.push("--only".to_string());
            out.push(self.only.join(","));
        }
        if let Some(budget) = self.max_inst_per_bench {
            out.push("--max-inst-per-bench".to_string());
            out.push(budget.to_string());
        }
        if !self.static_analysis {
            out.push("--no-static-analysis".to_string());
        }
        if let Some(batch) = self.kmeans_batch {
            out.push("--kmeans-batch".to_string());
            out.push(batch.to_string());
        }
        out.push(self.experiment.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> JobSpec {
        JobSpec {
            experiment: "table3".to_string(),
            scale: "tiny".to_string(),
            interval_len: 20_000,
            samples: 8,
            k: 12,
            seed: 0,
            engine: "block".to_string(),
            suites: None,
            only: vec!["face".to_string(), "finger".to_string()],
            max_inst_per_bench: None,
            static_analysis: true,
            kmeans_batch: None,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let spec = sample();
        let parsed = JobSpec::parse(&spec.to_json()).expect("roundtrip");
        assert_eq!(parsed, spec);

        let full = JobSpec {
            suites: Some(vec!["BMW".to_string(), "int2000".to_string()]),
            max_inst_per_bench: Some(5_000_000),
            static_analysis: false,
            kmeans_batch: Some(64),
            ..sample()
        };
        let parsed = JobSpec::parse(&full.to_json()).expect("roundtrip");
        assert_eq!(parsed, full);
    }

    #[test]
    fn fingerprint_ignores_nothing_that_matters() {
        let spec = sample();
        assert_eq!(spec.fingerprint(), sample().fingerprint());
        for (label, changed) in [
            (
                "seed",
                JobSpec {
                    seed: 1,
                    ..sample()
                },
            ),
            ("k", JobSpec { k: 13, ..sample() }),
            (
                "experiment",
                JobSpec {
                    experiment: "fig4".to_string(),
                    ..sample()
                },
            ),
            (
                "only",
                JobSpec {
                    only: vec!["face".to_string()],
                    ..sample()
                },
            ),
            (
                "static",
                JobSpec {
                    static_analysis: false,
                    ..sample()
                },
            ),
        ] {
            assert_ne!(
                spec.fingerprint(),
                changed.fingerprint(),
                "{label} must change the fingerprint"
            );
        }
    }

    #[test]
    fn argv_mirrors_the_direct_invocation() {
        let argv = sample().argv();
        assert_eq!(
            argv,
            [
                "--scale",
                "tiny",
                "--interval",
                "20000",
                "--samples",
                "8",
                "--k",
                "12",
                "--seed",
                "0",
                "--engine",
                "block",
                "--only",
                "face,finger",
                "table3",
            ]
        );
        let argv = JobSpec {
            suites: Some(vec!["BMW".to_string()]),
            static_analysis: false,
            kmeans_batch: Some(32),
            max_inst_per_bench: Some(9),
            only: vec![],
            ..sample()
        }
        .argv();
        assert!(argv.windows(2).any(|w| w == ["--suites", "BMW"]));
        assert!(argv.contains(&"--no-static-analysis".to_string()));
        assert!(argv.windows(2).any(|w| w == ["--kmeans-batch", "32"]));
        assert!(argv.windows(2).any(|w| w == ["--max-inst-per-bench", "9"]));
        assert!(!argv.contains(&"--only".to_string()));
    }

    #[test]
    fn parse_rejects_damage() {
        assert!(matches!(
            JobSpec::parse("not json"),
            Err(SpecError::Json(_))
        ));
        let mut doc = sample().to_json();
        doc = doc.replace("\"schema\": 1", "\"schema\": 9");
        assert!(matches!(JobSpec::parse(&doc), Err(SpecError::Schema(9))));
        let doc = sample()
            .to_json()
            .replace("\"seed\": 0", "\"seed\": \"zero\"");
        assert!(matches!(
            JobSpec::parse(&doc),
            Err(SpecError::Field("seed"))
        ));
    }
}
