//! A minimal JSON *parser* for the job-spool protocol, targeting the
//! same deterministic [`Json`] value type `phaselab-obs` renders.
//!
//! The spool directory holds job specs and completion records written
//! by [`Json::render_pretty`]; this module reads them back. It is a
//! strict RFC 8259 subset-parser over the documents this workspace
//! produces: objects, arrays, strings with escapes, integers, floats,
//! booleans, and `null`. Anything malformed returns a positioned error
//! — the queue treats an unparsable record like the checkpoint store
//! treats a torn frame: warn, quarantine, recompute, never crash.

use phaselab_obs::Json;
use std::fmt;

/// A parse failure: what was wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// One-line description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is not.
///
/// Integers in `u64` range parse as [`Json::U64`]; every other number
/// (negative, fractional, exponent) parses as [`Json::F64`].
///
/// # Errors
///
/// A [`ParseError`] naming the first offending byte.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

/// Looks up a key in a [`Json::Obj`]; `None` for absent keys or
/// non-object values.
pub fn get<'a>(value: &'a Json, key: &str) -> Option<&'a Json> {
    match value {
        Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// The string payload of a [`Json::Str`], if that is what this is.
pub fn as_str(value: &Json) -> Option<&str> {
    match value {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// The integer payload of a [`Json::U64`], if that is what this is.
pub fn as_u64(value: &Json) -> Option<u64> {
    match value {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

/// The boolean payload of a [`Json::Bool`], if that is what this is.
pub fn as_bool(value: &Json) -> Option<bool> {
    match value {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

/// The items of a [`Json::Arr`], if that is what this is.
pub fn as_arr(value: &Json) -> Option<&[Json]> {
    match value {
        Json::Arr(items) => Some(items),
        _ => None,
    }
}

/// Nesting depth bound: spool documents are a few levels deep, and a
/// bound turns corrupt input into an error instead of a stack overflow.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{', "expected `{`")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX
                                // low surrogate completes the scalar.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(scalar)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape character")),
                    }
                }
                _ if b < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-borrow the full UTF-8 scalar starting here.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return Err(self.err("truncated unicode escape"));
        };
        let s = std::str::from_utf8(hex).map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::F64(v)),
            _ => Err(self.err("malformed number")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_rendered_documents() {
        let doc = Json::Obj(vec![
            ("schema".to_string(), Json::U64(1)),
            ("name".to_string(), Json::Str("tab\\le \"3\"\n".to_string())),
            ("ratio".to_string(), Json::F64(0.125)),
            ("flag".to_string(), Json::Bool(true)),
            ("nothing".to_string(), Json::Null),
            (
                "items".to_string(),
                Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(u64::MAX)]),
            ),
            ("empty_obj".to_string(), Json::Obj(vec![])),
            ("empty_arr".to_string(), Json::Arr(vec![])),
        ]);
        let rendered = doc.render_pretty();
        let parsed = parse(&rendered).expect("roundtrip parses");
        assert_eq!(parsed, doc);
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"a": {"b": [1, "two", false]}, "n": 7}"#).expect("parses");
        let a = get(&doc, "a").expect("a");
        let items = as_arr(get(a, "b").expect("b")).expect("array");
        assert_eq!(as_u64(&items[0]), Some(1));
        assert_eq!(as_str(&items[1]), Some("two"));
        assert_eq!(as_bool(&items[2]), Some(false));
        assert_eq!(as_u64(get(&doc, "n").expect("n")), Some(7));
        assert!(get(&doc, "missing").is_none());
    }

    #[test]
    fn numbers_pick_the_right_variant() {
        assert_eq!(parse("0").unwrap(), Json::U64(0));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("-3").unwrap(), Json::F64(-3.0));
        assert_eq!(parse("2.5").unwrap(), Json::F64(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn escapes_decode() {
        assert_eq!(
            parse(r#""Aé 😀 \t""#).unwrap(),
            Json::Str("Aé 😀 \t".to_string())
        );
    }

    #[test]
    fn malformed_documents_error_with_an_offset() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "truely",
            "01x",
            "nul",
            "\"\u{1}\"",
            r#"{"a": 1} trailing"#,
            "1e309",
            r#""\ud800""#,
            r#""\q""#,
        ] {
            assert!(parse(bad).is_err(), "`{bad}` must not parse");
        }
        let deep = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_err(), "over-deep nesting must error");
    }
}
