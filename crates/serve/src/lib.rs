//! `phaselab-serve`: characterization-as-a-service on top of a
//! spool directory.
//!
//! This crate turns the one-shot `repro` study pipeline into a
//! long-lived, multi-client service without taking on a single
//! dependency: the queue is a directory of JSON files whose state
//! machine is made of atomic renames ([`queue`]), jobs are canonical
//! study specs whose FNV fingerprint doubles as the dedup key
//! ([`job`]), and the serve loop ([`server`]) admits work under a
//! concurrency budget, answers duplicate submissions from the first
//! execution's results, and leaves actual study execution to a
//! caller-supplied runner.
//!
//! The division of labor with its sibling crates:
//!
//! * `phaselab-core` owns the checkpoint store, the
//!   [`ResultCache`](phaselab_core::ResultCache) eviction policy, and
//!   fault injection — this crate reuses all three.
//! * `phaselab-obs` provides the counters (`serve.jobs.*`,
//!   `cache.*`) and the queue-depth gauge the serve loop publishes.
//! * The `repro` binary supplies the real job runner (each job is a
//!   child `repro` invocation, so a served study is byte-identical to
//!   a direct one) and the `serve`/`submit`/`jobs` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Job specifications and their canonical JSON + fingerprint.
pub mod job;
/// Minimal strict JSON parsing into `phaselab_obs::Json`.
pub mod json;
/// The spool-directory queue: submit, claim, complete, recover.
pub mod queue;
/// The serve loop: admission, dedup, parking, concurrency budget.
pub mod server;

pub use job::{JobSpec, SpecError};
pub use queue::{Claim, CompletionRecord, JobEntry, JobStatus, Queue, QueueDepth};
pub use server::{results_dir, serve, JobContext, JobRunner, ServeConfig, ServeReport};
