//! The spool-directory job queue: a zero-dependency, multi-process
//! state machine built out of atomic renames.
//!
//! # Layout and protocol
//!
//! ```text
//! queue/
//!   tmp/        staging for torn-write-safe publishes
//!   pending/    submitted, unclaimed      (one file per submission)
//!   running/    claimed by a server       (+ <name>.hb heartbeat)
//!   done/       completed                 (completion record JSON)
//! ```
//!
//! A job moves `pending -> running -> done`, and each move is a single
//! `rename(2)`, so every state transition is atomic and has exactly one
//! winner no matter how many servers race. Submission file names are
//! unique (`<millis>-<pid>-<seq>-<fingerprint>.json`), sort in FIFO
//! order, and end in the job fingerprint so duplicate detection never
//! has to open the file.
//!
//! The completion order is the load-bearing part: [`Queue::complete`]
//! publishes `done/<name>.json` *before* removing the running entry.
//! A crash between the two steps leaves both files, which
//! [`Queue::recover`] resolves in favor of `done/` — a job can be
//! *cleaned up* twice but never *executed* twice past completion, and
//! since the running file is removed only after `done/` exists, it can
//! never be lost.
//!
//! Claims are leased, not owned: the claimer refreshes `<name>.hb`
//! (heartbeat sidecar) and [`Queue::recover`] returns claims whose
//! owner died or went silent back to `pending/`. All writes go through
//! [`phaselab_core::faults`] so the chaos tests can inject torn
//! renames and crashed workers at exactly these seams.

use phaselab_core::faults;
use phaselab_obs::Json;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime};

use crate::job::JobSpec;
use crate::json;

/// How a completed job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// The study ran to completion and its results were published.
    Completed,
    /// An identical job had already completed (or was in flight); the
    /// submitter was handed the original's results without any
    /// recharacterization.
    Deduped,
    /// The job runner reported an error; `detail` says what.
    Failed,
}

impl JobStatus {
    fn as_str(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Deduped => "deduped",
            JobStatus::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Option<JobStatus> {
        match s {
            "completed" => Some(JobStatus::Completed),
            "deduped" => Some(JobStatus::Deduped),
            "failed" => Some(JobStatus::Failed),
            _ => None,
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The record published to `done/<name>.json` when a job finishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletionRecord {
    /// Submission name this record answers.
    pub name: String,
    /// The job fingerprint (dedup key).
    pub fingerprint: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// Human-readable detail: result directory for successes, error
    /// text for failures.
    pub detail: String,
    /// The spec as submitted, embedded for audit and `repro jobs`.
    pub spec: JobSpec,
}

impl CompletionRecord {
    fn render(&self) -> String {
        Json::Obj(vec![
            ("schema".to_string(), Json::U64(1)),
            ("job".to_string(), Json::Str(self.name.clone())),
            (
                "fingerprint".to_string(),
                Json::Str(format!("{:016x}", self.fingerprint)),
            ),
            (
                "status".to_string(),
                Json::Str(self.status.as_str().to_string()),
            ),
            ("detail".to_string(), Json::Str(self.detail.clone())),
            ("spec".to_string(), self.spec.to_value()),
        ])
        .render_pretty()
    }

    fn parse(name: &str, text: &str) -> Option<CompletionRecord> {
        let doc = json::parse(text).ok()?;
        let fingerprint =
            u64::from_str_radix(json::as_str(json::get(&doc, "fingerprint")?)?, 16).ok()?;
        let status = JobStatus::parse(json::as_str(json::get(&doc, "status")?)?)?;
        let detail = json::as_str(json::get(&doc, "detail")?)?.to_string();
        let spec = JobSpec::from_value(json::get(&doc, "spec")?).ok()?;
        Some(CompletionRecord {
            name: name.to_string(),
            fingerprint,
            status,
            detail,
            spec,
        })
    }
}

/// A claimed job: the exclusive right to execute one submission.
///
/// The claim is leased, not owned — call [`Claim::heartbeat`]
/// periodically or [`Queue::recover`] on another process will requeue
/// it. Dropping a claim without completing it is safe for the same
/// reason: recovery returns it to `pending/`.
#[derive(Debug)]
pub struct Claim {
    /// Submission name (also the running/done file stem).
    pub name: String,
    /// Parsed spec of the claimed job.
    pub spec: JobSpec,
    /// Fingerprint from the submission name.
    pub fingerprint: u64,
}

/// Queue population by state, for `repro jobs` and the depth gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueDepth {
    /// Submitted, unclaimed jobs.
    pub pending: usize,
    /// Claimed, in-flight jobs.
    pub running: usize,
    /// Completed jobs with a published record.
    pub done: usize,
}

/// One row of [`Queue::list`]: a submission and where it currently is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobEntry {
    /// Submission name.
    pub name: String,
    /// `"pending"`, `"running"`, or the completion status.
    pub state: String,
}

/// Handle to a spool directory. Cheap to open; every operation is a
/// fresh look at the filesystem, so any number of processes can hold
/// one concurrently.
#[derive(Debug)]
pub struct Queue {
    root: PathBuf,
    /// Per-submission tally of claim attempts abandoned because the
    /// document would not read back. A submission is only declared
    /// corrupt (and failed) after [`STRIKE_LIMIT`] abandoned claims;
    /// anything less is treated as transient I/O trouble and the claim
    /// is rolled back to `pending/` for a later pass.
    strikes: Mutex<HashMap<String, u32>>,
}

/// Per-process sequence counter making same-millisecond submissions
/// from one process unique.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// Attempts to publish-and-verify a submission before giving up.
const SUBMIT_RETRIES: u32 = 3;

/// Attempts to read-and-parse a spool document before treating it as
/// damaged. Injected read faults (EINTR, short reads) are transient —
/// the on-disk bytes were verified at publish — so a couple of retries
/// separate them from real corruption.
const READ_RETRIES: u32 = 3;

/// Abandoned-claim count after which a submission that keeps refusing
/// to read back is declared corrupt and failed. Combined with
/// [`READ_RETRIES`] this demands `3 * 3` consecutive bad reads of one
/// file before giving up on it — far past any transient fault, while
/// still bounding how long a genuinely damaged file can haunt the
/// queue.
const STRIKE_LIMIT: u32 = 3;

impl Queue {
    /// Opens (creating if needed) the spool at `root` and arms fault
    /// injection from `PHASELAB_FAULTS` so chaos runs exercise the
    /// queue's own I/O.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: &Path) -> io::Result<Queue> {
        faults::arm_from_env();
        for sub in ["tmp", "pending", "running", "done"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(Queue {
            root: root.to_path_buf(),
            strikes: Mutex::new(HashMap::new()),
        })
    }

    /// The spool root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn dir(&self, state: &str) -> PathBuf {
        self.root.join(state)
    }

    /// Publishes a new submission and returns its name.
    ///
    /// The write is torn-proof: the document is staged in `tmp/`,
    /// renamed into `pending/`, then read back and re-parsed. If the
    /// read-back does not reproduce the spec (an injected torn rename,
    /// a full disk), the damaged file is removed and the publish
    /// retried under a fresh name, up to [`SUBMIT_RETRIES`] times.
    ///
    /// # Errors
    ///
    /// The last I/O error when every retry failed verification.
    pub fn submit(&self, spec: &JobSpec) -> io::Result<String> {
        let body = spec.to_json();
        let mut last_err = io::Error::other("submit retries exhausted");
        for _ in 0..SUBMIT_RETRIES {
            let name = fresh_name(spec);
            let staged = self.dir("tmp").join(&name);
            let published = self.dir("pending").join(&name);
            let attempt = (|| -> io::Result<()> {
                faults::fs_write(&staged, body.as_bytes())?;
                faults::fs_rename(&staged, &published)?;
                let back = faults::fs_read(&published)?;
                let text = String::from_utf8(back)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "not UTF-8"))?;
                match JobSpec::parse(&text) {
                    Ok(parsed) if parsed == *spec => Ok(()),
                    Ok(_) => Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "read-back spec differs",
                    )),
                    Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
                }
            })();
            match attempt {
                Ok(()) => return Ok(name),
                Err(e) => {
                    let _ = fs::remove_file(&staged);
                    let _ = fs::remove_file(&published);
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Claims the oldest pending submission, if any.
    ///
    /// The claim is a rename into `running/`; when several servers
    /// race, exactly one rename succeeds and the losers move on to the
    /// next candidate. A fresh heartbeat is stamped immediately so
    /// recovery on other processes does not requeue the new claim.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; concurrently-claimed
    /// candidates are skipped and transiently-unreadable ones rolled
    /// back, not errors.
    pub fn claim_next(&self) -> io::Result<Option<Claim>> {
        let mut names: Vec<String> = list_names(&self.dir("pending"))?;
        names.sort_unstable();
        for name in names {
            let Some(fingerprint) = fingerprint_of_name(&name) else {
                continue; // foreign file in the spool; leave it alone
            };
            let from = self.dir("pending").join(&name);
            let to = self.dir("running").join(&name);
            if faults::fs_rename(&from, &to).is_err() {
                continue; // lost the race (or injected fault); next candidate
            }
            self.stamp_heartbeat(&name);
            // The document was verified at publish, so read failures
            // here are transient (EINTR, injected short reads) — retry
            // before concluding the file is actually damaged.
            let mut spec = None;
            let mut why = String::new();
            for _ in 0..READ_RETRIES {
                match faults::fs_read(&to)
                    .map_err(|e| e.to_string())
                    .and_then(|b| String::from_utf8(b).map_err(|_| "not UTF-8".to_string()))
                    .and_then(|t| JobSpec::parse(&t).map_err(|e| e.to_string()))
                {
                    Ok(parsed) => {
                        spec = Some(parsed);
                        break;
                    }
                    Err(e) => why = e,
                }
            }
            if let Some(spec) = spec {
                self.strikes
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&name);
                return Ok(Some(Claim {
                    name,
                    spec,
                    fingerprint,
                }));
            }
            // The document was readable at publish, so failed reads
            // here are usually an unlucky streak of transient faults:
            // roll the claim back for a later pass. Only a submission
            // that keeps failing across STRIKE_LIMIT separate claims
            // is declared corrupt and failed, so the submitter learns
            // instead of the queue looping forever.
            let strikes = {
                let mut map = self
                    .strikes
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                let n = map.entry(name.clone()).or_insert(0);
                *n += 1;
                *n
            };
            if strikes < STRIKE_LIMIT {
                if faults::fs_rename(&to, &from).is_ok() {
                    let _ = fs::remove_file(self.dir("running").join(format!("{name}.hb")));
                }
                // A failed rollback leaves the claim in running/ for
                // recovery to requeue once its lease lapses.
                continue;
            }
            self.strikes
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&name);
            let spec = JobSpec {
                experiment: "unreadable".to_string(),
                scale: String::new(),
                interval_len: 0,
                samples: 0,
                k: 0,
                seed: 0,
                engine: String::new(),
                suites: None,
                only: vec![],
                max_inst_per_bench: None,
                static_analysis: false,
                kmeans_batch: None,
            };
            let claim = Claim {
                name,
                spec,
                fingerprint,
            };
            self.complete(
                &claim,
                JobStatus::Failed,
                &format!("corrupt submission: {why}"),
            )?;
        }
        Ok(None)
    }

    /// Refreshes the claim's heartbeat sidecar. Call at least once per
    /// lease TTL while executing.
    pub fn heartbeat(&self, claim: &Claim) {
        self.stamp_heartbeat(&claim.name);
    }

    fn stamp_heartbeat(&self, name: &str) {
        let hb = self.dir("running").join(format!("{name}.hb"));
        let body = format!("{}\n", std::process::id());
        // A torn heartbeat only delays requeue by one TTL; plain write
        // (no staging dance) is deliberate.
        let _ = faults::fs_write(&hb, body.as_bytes());
    }

    /// Publishes the completion record and retires the running entry.
    ///
    /// Order matters: `done/<name>.json` lands (staged + renamed)
    /// *before* the running file and heartbeat are removed, so a crash
    /// at any point leaves the job either still-running (recoverable)
    /// or already-done (cleanup-only) — never lost, never re-runnable.
    ///
    /// Like submissions, the publish is verified: the record is read
    /// back and re-parsed, and a torn publish is rewritten under the
    /// same name, up to [`SUBMIT_RETRIES`] times. When every attempt
    /// fails the running entry is left in place so recovery can requeue
    /// the job — an unreadable completion record never counts as done.
    ///
    /// # Errors
    ///
    /// The last I/O error when every publish attempt failed
    /// verification.
    pub fn complete(&self, claim: &Claim, status: JobStatus, detail: &str) -> io::Result<()> {
        let record = CompletionRecord {
            name: claim.name.clone(),
            fingerprint: claim.fingerprint,
            status,
            detail: detail.to_string(),
            spec: claim.spec.clone(),
        };
        let body = record.render();
        let staged = self.dir("tmp").join(format!("{}.done", claim.name));
        let published = self.dir("done").join(&claim.name);
        let mut last_err = io::Error::other("completion retries exhausted");
        for _ in 0..SUBMIT_RETRIES {
            let attempt = (|| -> io::Result<()> {
                faults::fs_write(&staged, body.as_bytes())?;
                faults::fs_rename(&staged, &published)?;
                let back = faults::fs_read(&published)?;
                let text = String::from_utf8(back)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "not UTF-8"))?;
                if CompletionRecord::parse(&claim.name, &text).as_ref() == Some(&record) {
                    Ok(())
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "read-back record differs",
                    ))
                }
            })();
            match attempt {
                Ok(()) => {
                    let _ = fs::remove_file(self.dir("running").join(&claim.name));
                    let _ = fs::remove_file(self.dir("running").join(format!("{}.hb", claim.name)));
                    return Ok(());
                }
                Err(e) => {
                    // A torn done/ record is overwritten by the next
                    // attempt's rename; only the staging file needs
                    // explicit cleanup.
                    let _ = fs::remove_file(&staged);
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }

    /// Reads the completion record for `name`, if the job is done.
    /// Retries past transient read faults; `None` means no (readable)
    /// record exists.
    pub fn read_done(&self, name: &str) -> Option<CompletionRecord> {
        let path = self.dir("done").join(name);
        (0..READ_RETRIES).find_map(|_| {
            let bytes = faults::fs_read(&path).ok()?;
            CompletionRecord::parse(name, &String::from_utf8(bytes).ok()?)
        })
    }

    /// Scans `done/` for any completed job with this fingerprint — the
    /// dedup lookup.
    pub fn find_done_by_fingerprint(&self, fingerprint: u64) -> Option<CompletionRecord> {
        let suffix = format!("{fingerprint:016x}.json");
        let mut names: Vec<String> = list_names(&self.dir("done"))
            .ok()?
            .into_iter()
            .filter(|n| n.ends_with(&suffix))
            .collect();
        names.sort_unstable();
        names
            .into_iter()
            .find_map(|n| self.read_done(&n).filter(|r| r.status != JobStatus::Failed))
    }

    /// Sweeps `running/` for abandoned claims and returns how many
    /// were requeued to `pending/`.
    ///
    /// A claim is abandoned when its heartbeat owner is a dead pid, or
    /// no heartbeat has landed within `ttl`. If a completion record
    /// already exists the leftovers are removed instead of requeued —
    /// the crash happened after the publish, so the job is done.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures; per-entry races are
    /// tolerated.
    pub fn recover(&self, ttl: Duration) -> io::Result<usize> {
        let running = self.dir("running");
        let mut requeued = 0;
        let names = list_names(&running)?;
        // First pass: orphaned heartbeats (claim rename lost a race
        // after the winner's hb landed, or cleanup half-finished).
        for name in &names {
            if let Some(stem) = name.strip_suffix(".hb") {
                if !running.join(stem).exists() {
                    let _ = fs::remove_file(running.join(name));
                }
            }
        }
        for name in names {
            if is_heartbeat(&name) {
                continue;
            }
            let job = running.join(&name);
            // Only a *parseable* completion record counts as done; a
            // torn publish (crash mid-`complete`) must requeue, not
            // strand the job behind a corrupt record.
            if self.read_done(&name).is_some() {
                let _ = fs::remove_file(&job);
                let _ = fs::remove_file(running.join(format!("{name}.hb")));
                continue;
            }
            let hb = running.join(format!("{name}.hb"));
            let owner_dead = match faults::fs_read(&hb) {
                Ok(bytes) => String::from_utf8(bytes)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok())
                    .is_some_and(|pid| !pid_alive(pid)),
                Err(_) => false,
            };
            let silent = heartbeat_age(&hb, &job).is_none_or(|age| age > ttl);
            if (owner_dead || silent)
                && faults::fs_rename(&job, &self.dir("pending").join(&name)).is_ok()
            {
                let _ = fs::remove_file(&hb);
                requeued += 1;
            }
        }
        Ok(requeued)
    }

    /// Counts entries by state.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn depth(&self) -> io::Result<QueueDepth> {
        let count = |state: &str| -> io::Result<usize> {
            Ok(list_names(&self.dir(state))?
                .iter()
                .filter(|n| !is_heartbeat(n))
                .count())
        };
        Ok(QueueDepth {
            pending: count("pending")?,
            running: count("running")?,
            done: count("done")?,
        })
    }

    /// Every known submission with its current state, FIFO-ordered.
    ///
    /// # Errors
    ///
    /// Propagates directory-listing failures.
    pub fn list(&self) -> io::Result<Vec<JobEntry>> {
        let mut rows: BTreeMap<String, String> = BTreeMap::new();
        for name in list_names(&self.dir("pending"))? {
            rows.insert(name, "pending".to_string());
        }
        for name in list_names(&self.dir("running"))? {
            if !is_heartbeat(&name) {
                rows.insert(name, "running".to_string());
            }
        }
        for name in list_names(&self.dir("done"))? {
            let state = self
                .read_done(&name)
                .map_or_else(|| "done".to_string(), |r| r.status.to_string());
            rows.insert(name, state);
        }
        Ok(rows
            .into_iter()
            .map(|(name, state)| JobEntry { name, state })
            .collect())
    }
}

fn fresh_name(spec: &JobSpec) -> String {
    let millis = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    format!(
        "{millis:016x}-{:08x}-{:04x}-{:016x}.json",
        std::process::id(),
        seq & 0xFFFF,
        spec.fingerprint()
    )
}

/// True for a heartbeat sidecar name. The `.hb` suffix is a protocol
/// token, not a user-facing file extension, so the match is exact.
#[allow(clippy::case_sensitive_file_extension_comparisons)]
fn is_heartbeat(name: &str) -> bool {
    name.ends_with(".hb")
}

/// Extracts the fingerprint component from a submission name
/// (`<millis>-<pid>-<seq>-<fp>.json`).
pub fn fingerprint_of_name(name: &str) -> Option<u64> {
    let stem = name.strip_suffix(".json")?;
    let (_, fp) = stem.rsplit_once('-')?;
    if fp.len() != 16 {
        return None;
    }
    u64::from_str_radix(fp, 16).ok()
}

fn list_names(dir: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Ok(name) = entry.file_name().into_string() {
            out.push(name);
        }
    }
    Ok(out)
}

/// Time since the newer of the heartbeat and the running file was
/// touched; `None` when neither is stat-able.
fn heartbeat_age(hb: &Path, job: &Path) -> Option<Duration> {
    let newest = [hb, job]
        .iter()
        .filter_map(|p| fs::metadata(p).and_then(|m| m.modified()).ok())
        .max()?;
    Some(
        SystemTime::now()
            .duration_since(newest)
            .unwrap_or(Duration::ZERO),
    )
}

#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> bool {
    true // no portable probe; fall back to the heartbeat TTL alone
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::FileTimes;

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            experiment: "table3".to_string(),
            scale: "tiny".to_string(),
            interval_len: 20_000,
            samples: 8,
            k: 12,
            seed,
            engine: "block".to_string(),
            suites: None,
            only: vec!["face".to_string()],
            max_inst_per_bench: None,
            static_analysis: true,
            kmeans_batch: None,
        }
    }

    fn temp_queue(tag: &str) -> (PathBuf, Queue) {
        let dir = std::env::temp_dir().join(format!(
            "phaselab-queue-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let q = Queue::open(&dir).expect("open queue");
        (dir, q)
    }

    #[test]
    fn submit_claim_complete_lifecycle() {
        let (dir, q) = temp_queue("lifecycle");
        let name = q.submit(&spec(0)).expect("submit");
        assert_eq!(fingerprint_of_name(&name), Some(spec(0).fingerprint()));
        assert_eq!(
            q.depth().unwrap(),
            QueueDepth {
                pending: 1,
                running: 0,
                done: 0
            }
        );

        let claim = q.claim_next().expect("claim io").expect("a job");
        assert_eq!(claim.name, name);
        assert_eq!(claim.spec, spec(0));
        assert_eq!(
            q.depth().unwrap(),
            QueueDepth {
                pending: 0,
                running: 1,
                done: 0
            }
        );
        assert!(q.claim_next().expect("claim io").is_none());

        q.complete(&claim, JobStatus::Completed, "results/j0")
            .expect("complete");
        assert_eq!(
            q.depth().unwrap(),
            QueueDepth {
                pending: 0,
                running: 0,
                done: 1
            }
        );
        let rec = q.read_done(&name).expect("record");
        assert_eq!(rec.status, JobStatus::Completed);
        assert_eq!(rec.detail, "results/j0");
        assert_eq!(rec.spec, spec(0));
        assert_eq!(rec.fingerprint, spec(0).fingerprint());
        assert!(q.find_done_by_fingerprint(spec(0).fingerprint()).is_some());
        assert!(q.find_done_by_fingerprint(spec(7).fingerprint()).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn claims_are_fifo() {
        let (dir, q) = temp_queue("fifo");
        let first = q.submit(&spec(1)).expect("submit");
        // Names embed a millisecond stamp plus a per-process sequence
        // number, so same-millisecond submissions still order.
        let second = q.submit(&spec(2)).expect("submit");
        assert!(first < second, "{first} !< {second}");
        let a = q.claim_next().unwrap().unwrap();
        let b = q.claim_next().unwrap().unwrap();
        assert_eq!(a.name, first);
        assert_eq!(b.name, second);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_requeues_stale_claims_and_cleans_done_leftovers() {
        let (dir, q) = temp_queue("recover");
        let name = q.submit(&spec(3)).expect("submit");
        let claim = q.claim_next().unwrap().unwrap();

        // Fresh heartbeat from a live process: not requeued.
        assert_eq!(q.recover(Duration::from_mins(1)).unwrap(), 0);

        // Forge a dead owner.
        let hb = q.dir("running").join(format!("{name}.hb"));
        fs::write(&hb, "999999999\n").unwrap();
        assert_eq!(q.recover(Duration::from_mins(1)).unwrap(), 1);
        assert_eq!(q.depth().unwrap().pending, 1);

        // Claim again, complete, then resurrect the running leftovers
        // as if the process crashed mid-cleanup.
        let claim2 = q.claim_next().unwrap().unwrap();
        q.complete(&claim2, JobStatus::Completed, "ok").unwrap();
        fs::write(q.dir("running").join(&name), claim.spec.to_json()).unwrap();
        assert_eq!(q.recover(Duration::from_secs(0)).unwrap(), 0);
        assert!(!q.dir("running").join(&name).exists(), "leftover cleaned");
        assert_eq!(q.depth().unwrap().done, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn recover_requeues_silent_claims_by_age() {
        let (dir, q) = temp_queue("silent");
        let name = q.submit(&spec(4)).expect("submit");
        let _claim = q.claim_next().unwrap().unwrap();
        // Keep the owner pid alive (it is this test) but age both
        // files past the TTL: a hung worker.
        let old = SystemTime::now() - Duration::from_hours(1);
        for file in [
            q.dir("running").join(&name),
            q.dir("running").join(format!("{name}.hb")),
        ] {
            let f = fs::File::options().append(true).open(&file).unwrap();
            f.set_times(FileTimes::new().set_accessed(old).set_modified(old))
                .unwrap();
        }
        assert_eq!(q.recover(Duration::from_mins(1)).unwrap(), 1);
        assert_eq!(q.depth().unwrap().pending, 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn list_reports_every_state() {
        let (dir, q) = temp_queue("list");
        let done_name = q.submit(&spec(5)).expect("submit");
        let claim = q.claim_next().unwrap().unwrap();
        q.complete(&claim, JobStatus::Deduped, "shared").unwrap();
        let pending_name = q.submit(&spec(6)).expect("submit");
        let rows = q.list().expect("list");
        assert_eq!(rows.len(), 2);
        let state_of = |n: &str| {
            rows.iter()
                .find(|r| r.name == n)
                .map(|r| r.state.clone())
                .unwrap()
        };
        assert_eq!(state_of(&done_name), "deduped");
        assert_eq!(state_of(&pending_name), "pending");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn name_parsing_is_strict() {
        assert!(fingerprint_of_name("x-0123456789abcdef.json").is_some());
        assert!(fingerprint_of_name("x-0123456789abcdef.txt").is_none());
        assert!(fingerprint_of_name("x-123.json").is_none());
        assert!(fingerprint_of_name("nodash.json").is_none());
    }
}
