//! The serve loop: admits queued jobs under a concurrency budget,
//! deduplicates identical submissions, and runs everything else
//! through a caller-supplied job runner.
//!
//! # Deduplication contract
//!
//! Two submissions with the same [`JobSpec::fingerprint`] are the same
//! study. The first to be claimed executes; its results land in
//! `results/j<fingerprint>/` under the queue root. Every later claim
//! of that fingerprint — whether the original is already done or still
//! in flight — completes as [`JobStatus::Deduped`] pointing at the
//! *same* result directory, with zero recharacterization. In-flight
//! duplicates are *parked*: claimed (so no other server re-runs them),
//! heartbeated by the serve loop, and completed the moment the
//! original finishes. If the original fails, parked duplicates fail
//! with it — re-running an identical spec would fail identically, and
//! failing fast keeps a poisoned spec from looping.
//!
//! # What the server does not do
//!
//! Execute studies. The [`JobRunner`] closure owns that (the `repro`
//! binary runs each job as a child process; tests substitute mocks),
//! which keeps this crate free of workload or pipeline dependencies
//! and makes the scheduling logic testable in milliseconds.

use phaselab_core::CancelToken;
use phaselab_obs as obs;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use crate::job::JobSpec;
use crate::queue::{Claim, JobStatus, Queue};

/// Serve-loop tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrently executing jobs (parked duplicates do not
    /// count; they cost no work).
    pub jobs: usize,
    /// Exit once the queue is empty and nothing is in flight, instead
    /// of idling for more submissions. What CI and tests want.
    pub drain: bool,
    /// Idle sleep between scheduling passes. Also the heartbeat
    /// cadence for in-flight and parked claims.
    pub poll: Duration,
    /// Claim lease TTL handed to [`Queue::recover`].
    pub ttl: Duration,
    /// Per-job wall-clock budget, exposed to the runner as a deadline.
    pub job_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            jobs: 2,
            drain: false,
            poll: Duration::from_millis(100),
            ttl: phaselab_core::lease::default_ttl(),
            job_timeout: None,
        }
    }
}

/// Everything a runner may need besides the spec itself.
#[derive(Debug, Clone)]
pub struct JobContext {
    /// Where this job's report and manifest must land
    /// (`results/j<fingerprint>` under the queue root).
    pub results_dir: PathBuf,
    /// The shared checkpoint store all jobs characterize through.
    pub store_dir: PathBuf,
    /// Trips when the server is shutting down; runners should stop
    /// promptly (kill the child, abandon the study).
    pub cancel: CancelToken,
    /// Absolute wall-clock budget for this job, if configured.
    pub deadline: Option<Instant>,
}

/// Executes one job: runs the study described by `spec` and writes
/// `report.txt` (and any manifest) into `ctx.results_dir`. Returns a
/// short human-readable success detail, or the failure text.
pub type JobRunner<'a> = dyn Fn(&JobSpec, &JobContext) -> Result<String, String> + Sync + 'a;

/// Tally of one [`serve`] invocation, mirrored into the obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Claims taken off the queue (including ones later deduped).
    pub admitted: u64,
    /// Claims answered from an identical job's results.
    pub deduped: u64,
    /// Jobs that executed and succeeded.
    pub completed: u64,
    /// Jobs that executed and failed (parked duplicates of a failed
    /// job count here too).
    pub failed: u64,
    /// Abandoned claims returned to `pending/` by recovery sweeps.
    pub requeued: u64,
}

/// The result directory for a fingerprint, under the queue root.
pub fn results_dir(queue_root: &Path, fingerprint: u64) -> PathBuf {
    queue_root
        .join("results")
        .join(format!("j{fingerprint:016x}"))
}

/// True when a previous execution of this fingerprint left a report
/// behind — the cross-restart dedup check.
fn results_ready(queue_root: &Path, fingerprint: u64) -> bool {
    results_dir(queue_root, fingerprint)
        .join("report.txt")
        .exists()
}

fn count(name: &str, n: u64) {
    obs::counter_add(name, obs::Class::Timing, n);
}

/// Runs the serve loop until cancelled (or, with [`ServeConfig::drain`],
/// until the queue runs dry).
///
/// # Errors
///
/// Propagates queue I/O errors (listing failures, completion-record
/// publish failures). Individual job failures are *not* errors — they
/// complete their submissions as [`JobStatus::Failed`] and count in
/// [`ServeReport::failed`].
pub fn serve(
    queue: &Queue,
    cfg: &ServeConfig,
    cancel: &CancelToken,
    runner: &JobRunner<'_>,
) -> io::Result<ServeReport> {
    let store_dir = queue.root().join("store");
    let mut report = ServeReport::default();
    // Claims whose runner thread is executing, by fingerprint.
    let mut active: HashMap<u64, Claim> = HashMap::new();
    // Claims waiting on an identical active job, by fingerprint.
    let mut parked: HashMap<u64, Vec<Claim>> = HashMap::new();
    let (tx, rx) = mpsc::channel::<(u64, Result<String, String>)>();

    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            // 1. Reap finished runners.
            while let Ok((fp, outcome)) = rx.try_recv() {
                let claim = active.remove(&fp).expect("finished job was active");
                let waiters = parked.remove(&fp).unwrap_or_default();
                match outcome {
                    Ok(detail) => {
                        queue.complete(&claim, JobStatus::Completed, &detail)?;
                        report.completed += 1;
                        count("serve.jobs.completed", 1);
                        for dup in waiters {
                            queue.complete(&dup, JobStatus::Deduped, &detail)?;
                            report.deduped += 1;
                            count("serve.jobs.deduped", 1);
                            count("cache.hit", 1);
                        }
                    }
                    Err(why) => {
                        queue.complete(&claim, JobStatus::Failed, &why)?;
                        report.failed += 1;
                        count("serve.jobs.failed", 1);
                        let shared = format!("identical job failed: {why}");
                        for dup in waiters {
                            queue.complete(&dup, JobStatus::Failed, &shared)?;
                            report.failed += 1;
                            count("serve.jobs.failed", 1);
                        }
                    }
                }
            }

            // 2. Keep other servers' recovery off our live claims.
            for claim in active.values() {
                queue.heartbeat(claim);
            }
            for dup in parked.values().flatten() {
                queue.heartbeat(dup);
            }

            // 3. Requeue claims abandoned by dead/silent servers.
            let back = queue.recover(cfg.ttl)?;
            if back > 0 {
                report.requeued += back as u64;
                count("serve.jobs.requeued", back as u64);
            }

            // 4. Admit while the budget allows.
            if !cancel.is_cancelled() {
                while active.len() < cfg.jobs {
                    let Some(claim) = queue.claim_next()? else {
                        break;
                    };
                    report.admitted += 1;
                    count("serve.jobs.admitted", 1);
                    let fp = claim.fingerprint;
                    if results_ready(queue.root(), fp) {
                        // Same study already served: answer from its
                        // result directory without touching a worker.
                        let detail = results_dir(queue.root(), fp).display().to_string();
                        queue.complete(&claim, JobStatus::Deduped, &detail)?;
                        report.deduped += 1;
                        count("serve.jobs.deduped", 1);
                        count("cache.hit", 1);
                    } else {
                        match active.entry(fp) {
                            Entry::Occupied(_) => {
                                obs::event("serve", "duplicate parked behind in-flight job");
                                parked.entry(fp).or_default().push(claim);
                            }
                            Entry::Vacant(slot) => {
                                count("cache.miss", 1);
                                let ctx = JobContext {
                                    results_dir: results_dir(queue.root(), fp),
                                    store_dir: store_dir.clone(),
                                    cancel: cancel.clone(),
                                    deadline: cfg.job_timeout.map(|t| Instant::now() + t),
                                };
                                std::fs::create_dir_all(&ctx.results_dir)?;
                                let spec = claim.spec.clone();
                                slot.insert(claim);
                                let tx = tx.clone();
                                scope.spawn(move || {
                                    let outcome = runner(&spec, &ctx);
                                    // The receiver outlives every worker; a
                                    // send failure means the loop already
                                    // returned an I/O error and is unwinding
                                    // the scope.
                                    let _ = tx.send((fp, outcome));
                                });
                            }
                        }
                    }
                }
            }

            let depth = queue.depth()?;
            obs::gauge_set(
                "serve.queue.depth",
                obs::Class::Timing,
                depth.pending as f64,
            );

            let idle = active.is_empty() && parked.is_empty();
            // In drain mode, wait out orphaned running/ entries too:
            // they are other servers' abandoned claims that recovery
            // will requeue once their lease expires.
            if idle
                && (cancel.is_cancelled()
                    || (cfg.drain && depth.pending == 0 && depth.running == 0))
            {
                return Ok(());
            }
            if idle && depth.pending == 0 {
                std::thread::sleep(cfg.poll);
            } else {
                // Short tick: reap promptly, heartbeat often.
                std::thread::sleep(cfg.poll.min(Duration::from_millis(50)));
            }
        }
    })?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn spec(seed: u64) -> JobSpec {
        JobSpec {
            experiment: "table3".to_string(),
            scale: "tiny".to_string(),
            interval_len: 20_000,
            samples: 8,
            k: 12,
            seed,
            engine: "block".to_string(),
            suites: None,
            only: vec!["face".to_string()],
            max_inst_per_bench: None,
            static_analysis: true,
            kmeans_batch: None,
        }
    }

    fn temp_queue(tag: &str) -> (PathBuf, Queue) {
        let dir = std::env::temp_dir().join(format!(
            "phaselab-serve-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let q = Queue::open(&dir).expect("open queue");
        (dir, q)
    }

    fn drain_cfg() -> ServeConfig {
        ServeConfig {
            jobs: 2,
            drain: true,
            poll: Duration::from_millis(5),
            ttl: Duration::from_mins(1),
            job_timeout: None,
        }
    }

    #[test]
    fn executes_each_unique_spec_once_and_dedupes_the_rest() {
        let (dir, q) = temp_queue("dedup");
        let runs = AtomicU64::new(0);
        let runner = |s: &JobSpec, ctx: &JobContext| {
            runs.fetch_add(1, Ordering::SeqCst);
            fs::create_dir_all(&ctx.results_dir).unwrap();
            fs::write(
                ctx.results_dir.join("report.txt"),
                format!("seed {}", s.seed),
            )
            .unwrap();
            Ok(ctx.results_dir.display().to_string())
        };
        let names = [
            q.submit(&spec(1)).unwrap(),
            q.submit(&spec(1)).unwrap(), // duplicate of the first
            q.submit(&spec(2)).unwrap(),
        ];
        let report = serve(&q, &drain_cfg(), &CancelToken::new(), &runner).expect("serve");
        assert_eq!(runs.load(Ordering::SeqCst), 2, "one run per unique spec");
        assert_eq!(report.admitted, 3);
        assert_eq!(report.completed, 2);
        assert_eq!(report.deduped, 1);
        assert_eq!(report.failed, 0);
        let statuses: Vec<JobStatus> = names
            .iter()
            .map(|n| q.read_done(n).expect("done").status)
            .collect();
        assert_eq!(
            statuses
                .iter()
                .filter(|s| **s == JobStatus::Deduped)
                .count(),
            1
        );
        // Both same-fingerprint submissions point at the same results.
        let d0 = q.read_done(&names[0]).unwrap().detail;
        let d1 = q.read_done(&names[1]).unwrap().detail;
        assert_eq!(d0, d1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn dedupes_across_server_restarts_from_the_result_directory() {
        let (dir, q) = temp_queue("restart");
        let fp = spec(1).fingerprint();
        fs::create_dir_all(results_dir(q.root(), fp)).unwrap();
        fs::write(results_dir(q.root(), fp).join("report.txt"), "prior run").unwrap();
        q.submit(&spec(1)).unwrap();
        let runner = |_: &JobSpec, _: &JobContext| -> Result<String, String> {
            panic!("nothing should execute");
        };
        let report = serve(&q, &drain_cfg(), &CancelToken::new(), &runner).expect("serve");
        assert_eq!(report.deduped, 1);
        assert_eq!(report.completed, 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn failure_propagates_to_parked_duplicates() {
        let (dir, q) = temp_queue("fail");
        q.submit(&spec(3)).unwrap();
        q.submit(&spec(3)).unwrap();
        let runner = |_: &JobSpec, _: &JobContext| Err("boom".to_string());
        let report = serve(&q, &drain_cfg(), &CancelToken::new(), &runner).expect("serve");
        assert_eq!(report.failed, 2);
        assert_eq!(report.deduped, 0);
        for row in q.list().unwrap() {
            assert_eq!(row.state, "failed");
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn respects_the_concurrency_budget() {
        let (dir, q) = temp_queue("budget");
        let peak = AtomicU64::new(0);
        let live = AtomicU64::new(0);
        let runner = |_: &JobSpec, ctx: &JobContext| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(30));
            live.fetch_sub(1, Ordering::SeqCst);
            fs::write(ctx.results_dir.join("report.txt"), "ok").unwrap();
            Ok("ok".to_string())
        };
        for seed in 0..5 {
            q.submit(&spec(seed)).unwrap();
        }
        let cfg = ServeConfig {
            jobs: 2,
            ..drain_cfg()
        };
        let report = serve(&q, &cfg, &CancelToken::new(), &runner).expect("serve");
        assert_eq!(report.completed, 5);
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn cancel_stops_admission_and_returns() {
        let (dir, q) = temp_queue("cancel");
        let cancel = CancelToken::new();
        cancel.cancel();
        q.submit(&spec(9)).unwrap();
        let runner = |_: &JobSpec, _: &JobContext| -> Result<String, String> {
            panic!("cancelled server must not run jobs");
        };
        let cfg = ServeConfig {
            drain: false,
            ..drain_cfg()
        };
        let report = serve(&q, &cfg, &cancel, &runner).expect("serve");
        assert_eq!(report.admitted, 0);
        assert_eq!(q.depth().unwrap().pending, 1, "job left for a live server");
        let _ = fs::remove_dir_all(dir);
    }
}
