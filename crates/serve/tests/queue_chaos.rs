//! Chaos proptest for the spool queue and serve loop under injected
//! filesystem faults (`phaselab_core::faults`): torn writes, failed
//! renames, interrupted and short reads — the same fault lanes
//! `PHASELAB_FAULTS` arms in the shell-level chaos runs.
//!
//! Invariants checked after every storm:
//!
//! * **No job is ever lost**: every acknowledged submission ends with
//!   exactly one parseable completion record in `done/`, and the
//!   pending/running directories drain empty.
//! * **No job is double-completed or re-characterized**: each unique
//!   fingerprint executes exactly once no matter how many duplicate
//!   submissions, server passes, or requeues the faults provoke.
//! * **The served result is byte-identical to a fault-free direct
//!   run**: the published `report.txt` equals the bytes the runner
//!   produces with no faults armed.
//!
//! Crash faults (`crash=`) are deliberately absent from the in-process
//! plans — the injector aborts the whole process, which would take the
//! test binary down. Crashed *workers* are modeled separately: a claim
//! whose heartbeat names a dead pid, which recovery must requeue.
//!
//! Fault injection is process-global, so every test serializes on one
//! mutex and disarms before asserting.

use phaselab_core::faults::{self, FaultPlan};
use phaselab_core::CancelToken;
use phaselab_serve::{results_dir, serve, JobContext, JobSpec, JobStatus, Queue, ServeConfig};
use proptest::prelude::*;
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes tests sharing the process-global fault injector.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Unique scratch directory per test case.
fn scratch(tag: &str) -> PathBuf {
    static CASE: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "phaselab-chaos-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny, distinct study spec per seed; equal seeds collide into the
/// same fingerprint, which is how the cases exercise dedup.
fn spec(seed: u64) -> JobSpec {
    JobSpec {
        experiment: "table3".to_string(),
        scale: "tiny".to_string(),
        interval_len: 20_000,
        samples: 8,
        k: 12,
        seed,
        engine: "block".to_string(),
        suites: None,
        only: vec!["face".to_string()],
        max_inst_per_bench: None,
        static_analysis: true,
        kmeans_batch: None,
    }
}

/// What a fault-free direct run of the mock runner publishes — the
/// byte-identity baseline.
fn direct_report(spec: &JobSpec) -> String {
    format!(
        "phase study {} seed {} fingerprint {:016x}\n",
        spec.experiment,
        spec.seed,
        spec.fingerprint()
    )
}

/// Drain-mode config tuned for fast recovery in tests.
fn chaos_cfg() -> ServeConfig {
    ServeConfig {
        jobs: 2,
        drain: true,
        poll: Duration::from_millis(2),
        ttl: Duration::from_millis(150),
        job_timeout: None,
    }
}

/// Runs drain-mode serve passes until the spool settles (pending and
/// running both empty). Serve passes may abort mid-flight on injected
/// faults; each retry resumes from whatever state the spool is in.
fn serve_until_settled(
    queue: &Queue,
    runner: &(dyn Fn(&JobSpec, &JobContext) -> Result<String, String> + Sync),
) -> bool {
    for _ in 0..25 {
        if serve(queue, &chaos_cfg(), &CancelToken::new(), runner).is_ok() {
            if let Ok(depth) = queue.depth() {
                if depth.pending == 0 && depth.running == 0 {
                    return true;
                }
            }
        }
    }
    false
}

/// Storm cases to run; also the trigger point for the cross-case
/// vacuity check below.
const STORM_CASES: u32 = 12;

/// Total faults fired across every storm case. Fault decisions hash
/// the submission path, which embeds wall-clock millis, so any *one*
/// case can legitimately draw zero faults — but all of them together
/// cannot, and the final case asserts so.
static TOTAL_INJECTED: AtomicU64 = AtomicU64::new(0);
static CASES_RUN: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(STORM_CASES))]

    #[test]
    fn no_job_lost_or_rerun_under_fault_storm(
        fault_seed in 0u64..10_000,
        all_seeds in proptest::collection::vec(0u64..3, 7),
        batch in 1usize..8,
    ) {
        let job_seeds = &all_seeds[..batch.min(all_seeds.len())];
        let _guard = FAULT_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let root = scratch("storm");
        let queue = Queue::open(&root).expect("open queue");

        // Torn writes, failed renames, interrupted and short reads on
        // every spool seam. `max=` caps total injections so retry
        // loops are guaranteed to converge.
        let plan = format!(
            "seed={fault_seed},torn=0.15,rename=0.15,eintr=0.08,shortread=0.08,max=64"
        );
        faults::arm(FaultPlan::parse(&plan).expect("parse plan"));

        // Submit with retries: submit() itself verifies its publish and
        // may exhaust its internal attempts under a dense fault run.
        let mut submitted: Vec<(String, JobSpec)> = Vec::new();
        for &seed in job_seeds {
            let sp = spec(seed);
            let name = (0..10).find_map(|_| queue.submit(&sp).ok());
            prop_assert!(name.is_some(), "submission never acknowledged");
            submitted.push((name.unwrap(), sp));
        }

        // Mock runner: deterministic report bytes, one execution tally
        // per fingerprint. Results are written directly (a real runner
        // is a child process whose stdout lands outside the fault
        // wrappers).
        let runs: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::new());
        let runner = |sp: &JobSpec, ctx: &JobContext| -> Result<String, String> {
            *runs.lock().unwrap().entry(sp.fingerprint()).or_insert(0) += 1;
            fs::write(ctx.results_dir.join("report.txt"), direct_report(sp))
                .map_err(|e| e.to_string())?;
            Ok(ctx.results_dir.display().to_string())
        };

        let settled = serve_until_settled(&queue, &runner);
        let injected = faults::current().map_or(0, |i| i.injected());
        faults::disarm();
        prop_assert!(settled, "queue never drained");
        TOTAL_INJECTED.fetch_add(injected, Ordering::Relaxed);
        if CASES_RUN.fetch_add(1, Ordering::Relaxed) + 1 == u64::from(STORM_CASES) {
            prop_assert!(
                TOTAL_INJECTED.load(Ordering::Relaxed) > 0,
                "no case fired a single fault — the storm proved nothing"
            );
        }

        // Never lost: one parseable completion record per submission,
        // none of them failed.
        for (name, _) in &submitted {
            let record = queue.read_done(name);
            prop_assert!(record.is_some(), "submission {name} lost");
            let record = record.unwrap();
            prop_assert!(
                matches!(record.status, JobStatus::Completed | JobStatus::Deduped),
                "submission {name} ended {}: {}", record.status, record.detail
            );
        }
        let depth = queue.depth().expect("depth");
        prop_assert_eq!(depth.done, submitted.len(), "stray or missing records");

        // Never re-characterized: exactly one execution per unique
        // fingerprint, even across requeues and server restarts.
        let runs = runs.into_inner().unwrap();
        let unique: std::collections::BTreeSet<u64> =
            submitted.iter().map(|(_, sp)| sp.fingerprint()).collect();
        prop_assert_eq!(runs.len(), unique.len());
        for (fp, count) in &runs {
            prop_assert_eq!(*count, 1, "fingerprint {fp:016x} ran {count} times");
        }

        // Byte-identical to the direct run.
        for (_, sp) in &submitted {
            let report = results_dir(queue.root(), sp.fingerprint()).join("report.txt");
            let served = fs::read_to_string(&report).expect("served report");
            prop_assert_eq!(&served, &direct_report(sp), "served bytes differ from direct run");
        }

        let _ = fs::remove_dir_all(&root);
    }
}

#[test]
fn crashed_worker_claim_is_requeued_and_runs_exactly_once() {
    let _guard = FAULT_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    faults::disarm();
    let root = scratch("crash");
    let queue = Queue::open(&root).expect("open queue");

    // Two identical submissions; a worker claims the first and then
    // "crashes" — modeled by rewriting its heartbeat to a pid that
    // cannot exist, exactly what a real dead worker leaves behind.
    let sp = spec(7);
    let first = queue.submit(&sp).expect("submit");
    let _second = queue.submit(&sp).expect("submit dup");
    let claim = queue.claim_next().expect("claim").expect("one pending");
    assert_eq!(claim.name, first);
    fs::write(
        root.join("running").join(format!("{first}.hb")),
        "4000000000\n",
    )
    .expect("forge dead-pid heartbeat");

    let runs = AtomicU64::new(0);
    let runner = |sp: &JobSpec, ctx: &JobContext| -> Result<String, String> {
        runs.fetch_add(1, Ordering::SeqCst);
        fs::write(ctx.results_dir.join("report.txt"), direct_report(sp))
            .map_err(|e| e.to_string())?;
        Ok(ctx.results_dir.display().to_string())
    };
    assert!(serve_until_settled(&queue, &runner), "queue never drained");

    assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one execution");
    for row in queue.list().expect("list") {
        assert!(
            row.state == "completed" || row.state == "deduped",
            "{} ended {}",
            row.name,
            row.state
        );
    }
    let served = fs::read_to_string(results_dir(queue.root(), sp.fingerprint()).join("report.txt"))
        .expect("served report");
    assert_eq!(served, direct_report(&sp));
    let _ = fs::remove_dir_all(&root);
}
