//! Correlation coefficients.

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `0.0` when either sample has zero variance (the coefficient is
/// undefined there; zero is the conventional neutral value for the GA
/// fitness use in this project).
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
///
/// # Examples
///
/// ```
/// use phaselab_stats::pearson;
///
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// let r = pearson(&[1.0, 2.0, 3.0], &[6.0, 4.0, 2.0]);
/// assert!((r + 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    assert!(x.len() >= 2, "correlation needs at least two observations");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Spearman rank correlation coefficient between two equal-length samples.
///
/// Computed as the Pearson correlation of the (average-tie) ranks. Useful
/// as a robustness check next to [`pearson`] when validating the genetic
/// algorithm's distance preservation.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
///
/// # Examples
///
/// ```
/// use phaselab_stats::spearman;
///
/// // Monotone but non-linear relation: Spearman sees a perfect rank match.
/// let x = [1.0, 2.0, 3.0, 4.0];
/// let y = [1.0, 8.0, 27.0, 64.0];
/// assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "samples must have equal length");
    assert!(x.len() >= 2, "correlation needs at least two observations");
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties sharing their mean rank.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&i, &j| v[i].partial_cmp(&v[j]).expect("non-NaN values"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && v[order[j + 1]] == v[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            out[idx] = avg_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_bounds() {
        let x = [1.0, 4.0, 2.0, 8.0, 5.0];
        let y = [2.0, 3.0, 9.0, 1.0, 4.0];
        let r = pearson(&x, &y);
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_symmetry() {
        let x = [1.0, 4.0, 2.0, 8.0];
        let y = [3.0, 1.0, 7.0, 2.0];
        assert!((pearson(&x, &y) - pearson(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn pearson_invariant_to_affine_transform() {
        let x = [1.0, 4.0, 2.0, 8.0];
        let y = [3.0, 1.0, 7.0, 2.0];
        let y2: Vec<f64> = y.iter().map(|v| 3.0 * v + 10.0).collect();
        assert!((pearson(&x, &y) - pearson(&x, &y2)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn pearson_length_checked() {
        let _ = pearson(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
