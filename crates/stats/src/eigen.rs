//! Eigendecomposition of symmetric matrices by the cyclic Jacobi method.

use crate::matrix::Matrix;

/// The eigendecomposition of a real symmetric matrix.
///
/// Produced by [`jacobi_eigen`]. Eigenvalues are sorted in descending
/// order; `eigenvectors.column(i)` is the unit eigenvector for
/// `eigenvalues[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues, descending.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose columns are the corresponding unit eigenvectors.
    pub eigenvectors: Matrix,
}

/// Computes all eigenvalues and eigenvectors of a real symmetric matrix
/// using the cyclic Jacobi rotation method.
///
/// The Jacobi method repeatedly zeroes the largest-magnitude off-diagonal
/// entries with Givens rotations; for symmetric matrices it converges
/// quadratically and is unconditionally stable, which makes it a good fit
/// for the modest dimensionality of the characterization (≤ 69 features).
///
/// # Panics
///
/// Panics if the matrix is not square or is asymmetric beyond a small
/// tolerance.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{jacobi_eigen, Matrix};
///
/// let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
/// let eig = jacobi_eigen(&m);
/// assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-10);
/// assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-10);
/// ```
pub fn jacobi_eigen(m: &Matrix) -> EigenDecomposition {
    let n = m.rows();
    assert_eq!(n, m.cols(), "eigendecomposition needs a square matrix");
    for i in 0..n {
        for j in (i + 1)..n {
            let scale = m.get(i, j).abs().max(m.get(j, i).abs()).max(1.0);
            assert!(
                (m.get(i, j) - m.get(j, i)).abs() <= 1e-8 * scale,
                "matrix must be symmetric"
            );
        }
    }

    let mut a = m.clone();
    let mut v = Matrix::identity(n);

    const MAX_SWEEPS: usize = 100;
    for _ in 0..MAX_SWEEPS {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a.get(i, j) * a.get(i, j);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                // Stable tangent of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation A <- J^T A J on rows/cols p and q.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set(k, p, c * akp - s * akq);
                    a.set(k, q, s * akp + c * akq);
                }
                for k in 0..n {
                    let apk = a.get(p, k);
                    let aqk = a.get(q, k);
                    a.set(p, k, c * apk - s * aqk);
                    a.set(q, k, s * apk + c * aqk);
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }

    // Extract and sort by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("non-NaN eigenvalues"));

    let eigenvalues: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            eigenvectors.set(r, new_col, v.get(r, old_col));
        }
    }

    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let m = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ]);
        let eig = jacobi_eigen(&m);
        assert_close(eig.eigenvalues[0], 3.0, 1e-12);
        assert_close(eig.eigenvalues[1], 2.0, 1e-12);
        assert_close(eig.eigenvalues[2], 1.0, 1e-12);
    }

    #[test]
    fn two_by_two_known_values() {
        let m = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 4.0]]);
        let eig = jacobi_eigen(&m);
        assert_close(eig.eigenvalues[0], 5.0, 1e-10);
        assert_close(eig.eigenvalues[1], 3.0, 1e-10);
    }

    #[test]
    fn reconstruction_property() {
        // A = V diag(lambda) V^T
        let m = Matrix::from_rows(&[
            vec![2.0, -1.0, 0.0],
            vec![-1.0, 2.0, -1.0],
            vec![0.0, -1.0, 2.0],
        ]);
        let eig = jacobi_eigen(&m);
        let n = 3;
        let mut lambda = Matrix::zeros(n, n);
        for i in 0..n {
            lambda.set(i, i, eig.eigenvalues[i]);
        }
        let recon = eig
            .eigenvectors
            .matmul(&lambda)
            .matmul(&eig.eigenvectors.transpose());
        for i in 0..n {
            for j in 0..n {
                assert_close(recon.get(i, j), m.get(i, j), 1e-9);
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 6.0, 3.0],
            vec![1.0, 3.0, 7.0],
        ]);
        let eig = jacobi_eigen(&m);
        let vtv = eig.eigenvectors.transpose().matmul(&eig.eigenvectors);
        for i in 0..3 {
            for j in 0..3 {
                assert_close(vtv.get(i, j), if i == j { 1.0 } else { 0.0 }, 1e-9);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.5, 0.2],
            vec![0.5, 2.0, 0.1],
            vec![0.2, 0.1, 3.0],
        ]);
        let eig = jacobi_eigen(&m);
        let trace = 1.0 + 2.0 + 3.0;
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert_close(sum, trace, 1e-10);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
        let _ = jacobi_eigen(&m);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let m = Matrix::zeros(2, 3);
        let _ = jacobi_eigen(&m);
    }
}
