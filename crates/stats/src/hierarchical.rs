//! Agglomerative hierarchical clustering (average linkage).
//!
//! The companion methodology papers of Hoste & Eeckhout (PACT'02 workload
//! design, IEEE ToC benchmark similarity) present benchmark similarity as
//! dendrograms from hierarchical clustering; this module provides the
//! same construction for ordering similarity matrices and cutting
//! benchmark taxonomies at a chosen distance.

use crate::matrix::Matrix;

/// One merge step of the agglomeration: clusters `a` and `b` (node ids)
/// joined at `distance` into node `n + step` (leaves are `0..n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node id.
    pub a: usize,
    /// Second merged node id.
    pub b: usize,
    /// Average-linkage distance at which the merge happened.
    pub distance: f64,
}

/// The result of [`hierarchical_cluster`]: a dendrogram over `n` leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` when the dendrogram has no leaves.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge steps, in increasing distance order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// A leaf ordering that places similar leaves adjacently (in-order
    /// walk of the dendrogram) — the standard ordering for similarity
    /// heatmaps.
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.n == 0 {
            return Vec::new();
        }
        // children[node] for internal nodes (ids n..n+merges).
        let mut children: Vec<Option<(usize, usize)>> = vec![None; self.n + self.merges.len()];
        for (step, m) in self.merges.iter().enumerate() {
            children[self.n + step] = Some((m.a, m.b));
        }
        let root = self.n + self.merges.len() - 1;
        let mut order = Vec::with_capacity(self.n);
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match children[node] {
                Some((a, b)) => {
                    // Push b first so a is visited first (stable walk).
                    stack.push(b);
                    stack.push(a);
                }
                None => order.push(node),
            }
        }
        order
    }

    /// Cuts the dendrogram at `distance`, returning a cluster id per
    /// leaf (ids are dense, in first-appearance order).
    pub fn cut(&self, distance: f64) -> Vec<usize> {
        // Union-find over leaves, applying merges below the cut.
        let mut parent: Vec<usize> = (0..self.n).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        // Map node id -> representative leaf.
        let mut rep: Vec<usize> = (0..self.n + self.merges.len())
            .map(|i| i.min(self.n.saturating_sub(1)))
            .collect();
        for (i, r) in rep.iter_mut().enumerate().take(self.n) {
            *r = i;
        }
        for (step, m) in self.merges.iter().enumerate() {
            let node = self.n + step;
            let ra = rep[m.a];
            let rb = rep[m.b];
            rep[node] = ra;
            if m.distance <= distance {
                let root_a = find(&mut parent, ra);
                let root_b = find(&mut parent, rb);
                parent[root_a] = root_b;
            }
        }
        // Dense ids.
        let mut ids = vec![usize::MAX; self.n];
        let mut next = 0;
        for leaf in 0..self.n {
            let root = find(&mut parent, leaf);
            if ids[root] == usize::MAX {
                ids[root] = next;
                next += 1;
            }
            ids[leaf] = ids[root];
        }
        ids
    }
}

/// Agglomerative average-linkage (UPGMA) clustering over a symmetric
/// distance matrix.
///
/// # Panics
///
/// Panics if `distances` is not square, is empty, or is asymmetric.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{hierarchical_cluster, Matrix};
///
/// // Two tight pairs far apart.
/// let d = Matrix::from_rows(&[
///     vec![0.0, 1.0, 9.0, 9.0],
///     vec![1.0, 0.0, 9.0, 9.0],
///     vec![9.0, 9.0, 0.0, 1.0],
///     vec![9.0, 9.0, 1.0, 0.0],
/// ]);
/// let dendro = hierarchical_cluster(&d);
/// let cut = dendro.cut(2.0);
/// assert_eq!(cut[0], cut[1]);
/// assert_eq!(cut[2], cut[3]);
/// assert_ne!(cut[0], cut[2]);
/// ```
pub fn hierarchical_cluster(distances: &Matrix) -> Dendrogram {
    let n = distances.rows();
    assert_eq!(n, distances.cols(), "distance matrix must be square");
    assert!(n > 0, "empty distance matrix");
    for i in 0..n {
        for j in 0..n {
            assert!(
                (distances.get(i, j) - distances.get(j, i)).abs() < 1e-9,
                "distance matrix must be symmetric"
            );
        }
    }

    // Active clusters: node id, member leaves.
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_id = n;

    while active.len() > 1 {
        // Find the closest pair by average linkage.
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let mut sum = 0.0;
                for &a in &active[i].1 {
                    for &b in &active[j].1 {
                        sum += distances.get(a, b);
                    }
                }
                let avg = sum / (active[i].1.len() * active[j].1.len()) as f64;
                if avg < best.2 {
                    best = (i, j, avg);
                }
            }
        }
        let (i, j, d) = best;
        let (id_j, members_j) = active.remove(j);
        let (id_i, members_i) = active.remove(i);
        merges.push(Merge {
            a: id_i,
            b: id_j,
            distance: d,
        });
        let mut merged = members_i;
        merged.extend(members_j);
        active.push((next_id, merged));
        next_id += 1;
    }

    Dendrogram { n, merges }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 1.0, 8.0, 9.0],
            vec![1.0, 0.0, 9.0, 8.0],
            vec![8.0, 9.0, 0.0, 2.0],
            vec![9.0, 8.0, 2.0, 0.0],
        ])
    }

    #[test]
    fn merges_in_increasing_distance_order() {
        let dendro = hierarchical_cluster(&pair_matrix());
        assert_eq!(dendro.merges().len(), 3);
        for w in dendro.merges().windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
        // First merge joins the closest pair (0, 1) at distance 1.
        assert_eq!(dendro.merges()[0].distance, 1.0);
    }

    #[test]
    fn leaf_order_keeps_pairs_adjacent() {
        let dendro = hierarchical_cluster(&pair_matrix());
        let order = dendro.leaf_order();
        assert_eq!(order.len(), 4);
        let pos = |x: usize| order.iter().position(|&v| v == x).unwrap();
        assert_eq!(pos(0).abs_diff(pos(1)), 1, "pair (0,1) adjacent");
        assert_eq!(pos(2).abs_diff(pos(3)), 1, "pair (2,3) adjacent");
    }

    #[test]
    fn cut_heights_control_cluster_count() {
        let dendro = hierarchical_cluster(&pair_matrix());
        let fine = dendro.cut(0.5);
        let mut distinct = fine.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "below all merges: singletons");

        let mid = dendro.cut(3.0);
        let mut distinct = mid.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 2, "two pairs at mid height");

        let coarse = dendro.cut(100.0);
        assert!(coarse.iter().all(|&c| c == coarse[0]), "one root cluster");
    }

    #[test]
    fn single_leaf_is_trivial() {
        let d = Matrix::from_rows(&[vec![0.0]]);
        let dendro = hierarchical_cluster(&d);
        assert_eq!(dendro.leaf_order(), vec![0]);
        assert_eq!(dendro.cut(1.0), vec![0]);
        assert!(dendro.merges().is_empty());
    }

    #[test]
    fn average_linkage_uses_means_not_minima() {
        // Leaf 2 is very close to 0 but far from 1; single linkage would
        // join {0,1} with 2 at distance 1, average linkage at (1+10)/2.
        let d = Matrix::from_rows(&[
            vec![0.0, 2.0, 1.0],
            vec![2.0, 0.0, 10.0],
            vec![1.0, 10.0, 0.0],
        ]);
        let dendro = hierarchical_cluster(&d);
        // First merge: (0, 2) at 1.0; second: with 1 at (2 + 10)/2 = 6.
        assert_eq!(dendro.merges()[0].distance, 1.0);
        assert!((dendro.merges()[1].distance - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        let d = Matrix::from_rows(&[vec![0.0, 1.0], vec![2.0, 0.0]]);
        let _ = hierarchical_cluster(&d);
    }
}
