//! k-means clustering with k-means++ seeding and BIC model scoring.

use crate::matrix::Matrix;
use crate::distance_sq;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Number of random restarts; the clustering with the highest BIC
    /// score is kept (as in the paper's methodology).
    pub restarts: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// RNG seed for deterministic results.
    pub seed: u64,
}

impl KmeansConfig {
    /// Creates a configuration with `k` clusters and sensible defaults
    /// (5 restarts, 100 iterations, seed 0).
    pub fn new(k: usize) -> Self {
        KmeansConfig {
            k,
            restarts: 5,
            max_iters: 100,
            seed: 0,
        }
    }

    /// Sets the number of restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum iterations per restart.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }
}

/// The result of a k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index assigned to each input row.
    pub assignments: Vec<usize>,
    /// Cluster centroids (k rows).
    pub centroids: Matrix,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Bayesian Information Criterion score (higher is better).
    pub bic: f64,
}

impl Clustering {
    /// Number of clusters (including empty ones).
    pub fn k(&self) -> usize {
        self.sizes.len()
    }

    /// Indices of the rows belonging to cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// The row index closest to the centroid of cluster `c`, or `None` if
    /// the cluster is empty.
    ///
    /// This is the paper's "cluster representative": the instruction
    /// interval nearest the cluster center.
    pub fn representative_of(&self, data: &Matrix, c: usize) -> Option<usize> {
        let centroid = self.centroids.row(c);
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .min_by(|&(i, _), &(j, _)| {
                let di = distance_sq(data.row(i), centroid);
                let dj = distance_sq(data.row(j), centroid);
                di.partial_cmp(&dj).expect("finite distances")
            })
            .map(|(i, _)| i)
    }
}

/// Runs k-means++ with multiple restarts and returns the clustering with
/// the highest BIC score.
///
/// The BIC score follows the x-means formulation (identical spherical
/// Gaussians): `BIC = log-likelihood − (p/2)·ln n`, where `p` is the
/// number of free parameters. The paper selects among candidate
/// clusterings by BIC; a higher score indicates a better fit/complexity
/// trade-off.
///
/// # Panics
///
/// Panics if `cfg.k` is zero or exceeds the number of rows, or if the
/// matrix is empty.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{kmeans, KmeansConfig, Matrix};
///
/// let m = Matrix::from_rows(&[
///     vec![0.0, 0.0],
///     vec![0.1, 0.0],
///     vec![10.0, 10.0],
///     vec![10.1, 10.0],
/// ]);
/// let clustering = kmeans(&m, &KmeansConfig::new(2));
/// assert_eq!(clustering.k(), 2);
/// assert_eq!(clustering.assignments[0], clustering.assignments[1]);
/// assert_ne!(clustering.assignments[0], clustering.assignments[2]);
/// ```
pub fn kmeans(data: &Matrix, cfg: &KmeansConfig) -> Clustering {
    assert!(cfg.k > 0, "k must be positive");
    assert!(
        cfg.k <= data.rows(),
        "k ({}) exceeds number of points ({})",
        cfg.k,
        data.rows()
    );

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best: Option<Clustering> = None;
    for _ in 0..cfg.restarts.max(1) {
        let candidate = kmeans_once(data, cfg.k, cfg.max_iters, &mut rng);
        let better = match &best {
            None => true,
            Some(b) => candidate.bic > b.bic,
        };
        if better {
            best = Some(candidate);
        }
    }
    best.expect("at least one restart ran")
}

#[allow(clippy::needless_range_loop)] // index loops touch several arrays in lock-step
fn kmeans_once(data: &Matrix, k: usize, max_iters: usize, rng: &mut StdRng) -> Clustering {
    let n = data.rows();
    let d = data.cols();

    // k-means++ seeding.
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.random_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_dist_sq: Vec<f64> = (0..n)
        .map(|i| distance_sq(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_dist_sq.iter().sum();
        let choice = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &dsq) in min_dist_sq.iter().enumerate() {
                target -= dsq;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(choice));
        for i in 0..n {
            let dsq = distance_sq(data.row(i), centroids.row(c));
            if dsq < min_dist_sq[i] {
                min_dist_sq[i] = dsq;
            }
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; n];
    for iter in 0..max_iters {
        let mut changed = false;
        for i in 0..n {
            let row = data.row(i);
            let mut best_c = assignments[i];
            let mut best_d = distance_sq(row, centroids.row(best_c));
            for c in 0..k {
                let dsq = distance_sq(row, centroids.row(c));
                if dsq < best_d {
                    best_d = dsq;
                    best_c = c;
                }
            }
            if best_c != assignments[i] || iter == 0 {
                changed |= best_c != assignments[i];
                assignments[i] = best_c;
            }
        }
        if iter > 0 && !changed {
            break;
        }

        // Recompute centroids; re-seed empty clusters from the farthest
        // point to keep k effective clusters.
        let mut sums = Matrix::zeros(k, d);
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            let target = sums.row_mut(c);
            for (t, &v) in target.iter_mut().zip(data.row(i)) {
                *t += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                let far = (0..n)
                    .max_by(|&i, &j| {
                        let di = distance_sq(data.row(i), centroids.row(assignments[i]));
                        let dj = distance_sq(data.row(j), centroids.row(assignments[j]));
                        di.partial_cmp(&dj).expect("finite distances")
                    })
                    .expect("non-empty data");
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                let inv = 1.0 / counts[c] as f64;
                let target = centroids.row_mut(c);
                for (t, &s) in target.iter_mut().zip(sums.row(c)) {
                    *t = s * inv;
                }
            }
        }
    }

    // Final statistics.
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for i in 0..n {
        sizes[assignments[i]] += 1;
        inertia += distance_sq(data.row(i), centroids.row(assignments[i]));
    }
    let bic = bic_score(n, d, k, &sizes, inertia);

    Clustering {
        assignments,
        centroids,
        sizes,
        inertia,
        bic,
    }
}

/// BIC of a clustering under the identical-spherical-Gaussian model
/// (x-means; Pelleg & Moore 2000). Higher is better.
fn bic_score(n: usize, d: usize, k: usize, sizes: &[usize], inertia: f64) -> f64 {
    let n_f = n as f64;
    let d_f = d as f64;
    let k_f = k as f64;
    // Pooled ML variance estimate.
    let denom = (n_f - k_f).max(1.0) * d_f;
    let variance = (inertia / denom).max(1e-12);

    let mut ll = 0.0;
    for &size in sizes {
        if size == 0 {
            continue;
        }
        let s = size as f64;
        ll += s * s.ln() - s * n_f.ln() - (s * d_f / 2.0) * (2.0 * std::f64::consts::PI).ln()
            - (s * d_f / 2.0) * variance.ln()
            - (s - k_f) * d_f / 2.0 / n_f.max(1.0);
    }
    let params = (k_f - 1.0) + k_f * d_f + 1.0;
    ll - params / 2.0 * n_f.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![j, -j]);
            rows.push(vec![10.0 + j, 10.0 - j]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = two_blobs();
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(7));
        // All even rows together, all odd rows together.
        let c0 = c.assignments[0];
        let c1 = c.assignments[1];
        assert_ne!(c0, c1);
        for i in 0..data.rows() {
            assert_eq!(c.assignments[i], if i % 2 == 0 { c0 } else { c1 });
        }
        assert_eq!(c.sizes.iter().sum::<usize>(), data.rows());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let cfg = KmeansConfig::new(3).with_seed(42);
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.bic, b.bic);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let c = kmeans(&data, &KmeansConfig::new(3).with_seed(1));
        assert!(c.inertia < 1e-12);
        assert_eq!(c.sizes, vec![1, 1, 1]);
    }

    #[test]
    fn representative_is_closest_to_centroid() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![100.0]]);
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(3));
        let cluster_of_0 = c.assignments[0];
        let rep = c.representative_of(&data, cluster_of_0).unwrap();
        // Centroid of {0,1,2} is 1.0; closest is row 1.
        assert_eq!(rep, 1);
    }

    #[test]
    fn members_of_partitions_rows() {
        let data = two_blobs();
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(9));
        let total: usize = (0..2).map(|k| c.members_of(k).len()).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn bic_prefers_true_k_over_k1() {
        let data = two_blobs();
        let c1 = kmeans(&data, &KmeansConfig::new(1).with_seed(5));
        let c2 = kmeans(&data, &KmeansConfig::new(2).with_seed(5));
        assert!(
            c2.bic > c1.bic,
            "BIC should prefer k=2 on two blobs: {} vs {}",
            c2.bic,
            c1.bic
        );
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = two_blobs();
        let c2 = kmeans(&data, &KmeansConfig::new(2).with_seed(5));
        let c8 = kmeans(&data, &KmeansConfig::new(8).with_seed(5));
        assert!(c8.inertia <= c2.inertia + 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceeds number of points")]
    fn k_larger_than_n_rejected() {
        let data = Matrix::from_rows(&[vec![0.0]]);
        let _ = kmeans(&data, &KmeansConfig::new(2));
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]);
        let c = kmeans(&data, &KmeansConfig::new(3).with_seed(11));
        assert_eq!(c.assignments.len(), 10);
        assert!(c.inertia < 1e-12);
    }
}
