//! k-means clustering with k-means++ seeding and BIC model scoring.
//!
//! The assignment step — the O(n·k·d) hot path of the whole study — uses
//! Hamerly-style distance bounds to skip points whose assignment provably
//! cannot change, chunk-parallel assignment passes, and incremental
//! centroid sums. k-means++ seeding prunes its min-distance updates with
//! a triangle-inequality certificate and tracks per-point bounds as it
//! goes, so the initial assignment pass costs nothing. Restarts run in
//! parallel with per-restart seeds derived
//! deterministically from the configured seed, so [`kmeans`] returns
//! **bit-identical results for a fixed seed regardless of thread count**.
//! A naive reference implementation ([`kmeans_reference`]) sharing the
//! seeding, centroid-update and tie-break code is retained for
//! verification; property tests assert the two agree exactly.

use crate::matrix::Matrix;
use crate::{distance, distance_sq};
use phaselab_par::{derive_seed, effective_threads, parallel_map, parallel_map_owned};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Number of random restarts; the clustering with the highest BIC
    /// score is kept (as in the paper's methodology).
    pub restarts: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// RNG seed for deterministic results.
    pub seed: u64,
    /// Worker threads (0 = all cores). Results never depend on this.
    pub threads: usize,
    /// Mini-batch size. `None` (the default) runs exact bounded Lloyd
    /// iterations; `Some(b)` runs Sculley-style mini-batch k-means,
    /// updating centroids from `b` sampled points per iteration instead
    /// of scanning every point. An approximation — cheaper per iteration
    /// on large inputs, but assignments only agree with the exact
    /// algorithm on well-separated data (see `tests/properties.rs`).
    pub batch: Option<usize>,
}

impl KmeansConfig {
    /// Creates a configuration with `k` clusters and sensible defaults
    /// (5 restarts, 100 iterations, seed 0, single-threaded, exact
    /// Lloyd iterations).
    pub fn new(k: usize) -> Self {
        KmeansConfig {
            k,
            restarts: 5,
            max_iters: 100,
            seed: 0,
            threads: 1,
            batch: None,
        }
    }

    /// Sets the number of restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum iterations per restart.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Sets the worker thread count (0 = all cores).
    ///
    /// Threads only affect wall-clock time: restarts are seeded
    /// independently of scheduling and assignment chunks are reduced in
    /// a fixed order, so the clustering is identical for every value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Selects mini-batch iterations with `batch` sampled points each
    /// (`None` restores the exact algorithm).
    pub fn with_batch(mut self, batch: Option<usize>) -> Self {
        self.batch = batch;
        self
    }
}

/// The result of a k-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index assigned to each input row.
    pub assignments: Vec<usize>,
    /// Cluster centroids (k rows).
    pub centroids: Matrix,
    /// Number of points per cluster.
    pub sizes: Vec<usize>,
    /// Total within-cluster sum of squared distances.
    pub inertia: f64,
    /// Bayesian Information Criterion score (higher is better).
    pub bic: f64,
}

impl Clustering {
    /// Number of clusters (including empty ones).
    pub fn k(&self) -> usize {
        self.sizes.len()
    }

    /// Indices of the rows belonging to cluster `c`.
    pub fn members_of(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// The row index closest to the centroid of cluster `c`, or `None` if
    /// the cluster is empty.
    ///
    /// This is the paper's "cluster representative": the instruction
    /// interval nearest the cluster center.
    pub fn representative_of(&self, data: &Matrix, c: usize) -> Option<usize> {
        let centroid = self.centroids.row(c);
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == c)
            .min_by(|&(i, _), &(j, _)| {
                let di = distance_sq(data.row(i), centroid);
                let dj = distance_sq(data.row(j), centroid);
                di.partial_cmp(&dj).expect("finite distances")
            })
            .map(|(i, _)| i)
    }
}

/// Runs k-means++ with multiple restarts and returns the clustering with
/// the highest BIC score.
///
/// The BIC score follows the x-means formulation (identical spherical
/// Gaussians): `BIC = log-likelihood − (p/2)·ln n`, where `p` is the
/// number of free parameters. The paper selects among candidate
/// clusterings by BIC; a higher score indicates a better fit/complexity
/// trade-off.
///
/// Restarts run in parallel (bounded by `cfg.threads`; 0 = all cores)
/// and each draws its randomness from `derive_seed(cfg.seed, restart)`,
/// so the result is a pure function of the data and the configuration —
/// never of the thread count. The assignment step is pruned with
/// Hamerly-style distance bounds; [`kmeans_reference`] retains the
/// unpruned loop and produces bit-identical output.
///
/// # Panics
///
/// Panics if `cfg.k` is zero or exceeds the number of rows, or if the
/// matrix is empty.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{kmeans, KmeansConfig, Matrix};
///
/// let m = Matrix::from_rows(&[
///     vec![0.0, 0.0],
///     vec![0.1, 0.0],
///     vec![10.0, 10.0],
///     vec![10.1, 10.0],
/// ]);
/// let clustering = kmeans(&m, &KmeansConfig::new(2));
/// assert_eq!(clustering.k(), 2);
/// assert_eq!(clustering.assignments[0], clustering.assignments[1]);
/// assert_ne!(clustering.assignments[0], clustering.assignments[2]);
/// ```
pub fn kmeans(data: &Matrix, cfg: &KmeansConfig) -> Clustering {
    check_config(data, cfg);
    let restarts = cfg.restarts.max(1);
    let threads = effective_threads(cfg.threads);
    // Restarts parallelize at the outer level; leftover budget goes to
    // chunk-parallel assignment inside each restart.
    let outer = threads.min(restarts);
    let inner = (threads / outer).max(1);

    let indices: Vec<usize> = (0..restarts).collect();
    let candidates = parallel_map(&indices, outer, |&r| kmeans_restart(data, cfg, r, inner));
    pick_best_clustering(candidates).expect("at least one restart ran")
}

/// Runs restart `restart` of the multi-restart [`kmeans`] in isolation.
///
/// The restart's randomness comes from `derive_seed(cfg.seed, restart)`
/// — exactly the stream [`kmeans`] would hand it — so computing restarts
/// one at a time (e.g. to checkpoint each as it completes) and selecting
/// with [`pick_best_clustering`] reproduces [`kmeans`] bit-for-bit.
/// `threads` bounds the restart-internal chunk parallelism (0 = all
/// cores); it never affects the result.
///
/// # Panics
///
/// Panics if `cfg.k` is zero or exceeds the number of rows, or if the
/// matrix is empty.
pub fn kmeans_restart(
    data: &Matrix,
    cfg: &KmeansConfig,
    restart: usize,
    threads: usize,
) -> Clustering {
    check_config(data, cfg);
    let seed = derive_seed(cfg.seed, restart as u64);
    let _span = phaselab_obs::span!("kmeans.restart", restart);
    let (clustering, stats) = match cfg.batch {
        Some(batch) => minibatch_single(data, cfg.k, cfg.max_iters, seed, batch),
        None => kmeans_single(
            data,
            cfg.k,
            cfg.max_iters,
            seed,
            effective_threads(threads),
            true,
        ),
    };
    if phaselab_obs::enabled() {
        flush_restart_stats(restart, &clustering, &stats);
    }
    clustering
}

/// Publishes one restart's tallies. All values are pure functions of
/// the data, config, and restart index, so they are Structural-class
/// even though restarts may run on worker threads.
fn flush_restart_stats(restart: usize, clustering: &Clustering, stats: &RestartStats) {
    use phaselab_obs::Class::Structural;
    phaselab_obs::counter_add("kmeans.restarts", Structural, 1);
    phaselab_obs::counter_add("kmeans.iterations", Structural, stats.iterations);
    phaselab_obs::counter_add("kmeans.points.pruned", Structural, stats.pruned);
    phaselab_obs::counter_add("kmeans.points.tightened", Structural, stats.tightened);
    phaselab_obs::counter_add("kmeans.points.scanned", Structural, stats.scanned);
    phaselab_obs::counter_add("kmeans.moves", Structural, stats.moves);
    let tag = format!("kmeans.restart[{restart:02}]");
    phaselab_obs::gauge_set(
        &format!("{tag}.iterations"),
        Structural,
        stats.iterations as f64,
    );
    phaselab_obs::gauge_set(&format!("{tag}.bic"), Structural, clustering.bic);
    let considered = stats.pruned + stats.tightened + stats.scanned;
    let skipped = stats.pruned + stats.tightened;
    let ratio = if considered == 0 {
        0.0
    } else {
        skipped as f64 / considered as f64
    };
    phaselab_obs::gauge_set(&format!("{tag}.bound_skip_ratio"), Structural, ratio);
}

/// Keeps the highest-BIC candidate; ties go to the earliest restart.
///
/// This is [`kmeans`]'s selection rule, exposed so callers driving
/// restarts through [`kmeans_restart`] can finish the job identically.
/// Returns `None` for an empty candidate list. Candidates must be in
/// restart order for the tie-break to match [`kmeans`].
pub fn pick_best_clustering(candidates: Vec<Clustering>) -> Option<Clustering> {
    let mut best: Option<Clustering> = None;
    for candidate in candidates {
        let better = match &best {
            None => true,
            Some(b) => candidate.bic > b.bic,
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// The unpruned, single-threaded reference k-means.
///
/// Shares the seeding, tie-break, centroid-update and scoring code with
/// [`kmeans`] but scans every centroid for every point in every
/// iteration. It exists to verify the bound-pruned implementation:
/// for any data and configuration, `kmeans_reference` and [`kmeans`]
/// return bit-identical clusterings (see `tests/properties.rs`).
///
/// # Panics
///
/// Panics if `cfg.k` is zero or exceeds the number of rows, or if the
/// matrix is empty.
pub fn kmeans_reference(data: &Matrix, cfg: &KmeansConfig) -> Clustering {
    check_config(data, cfg);
    let restarts = cfg.restarts.max(1);
    let candidates: Vec<Clustering> = (0..restarts)
        .map(|r| {
            let seed = derive_seed(cfg.seed, r as u64);
            kmeans_single(data, cfg.k, cfg.max_iters, seed, 1, false).0
        })
        .collect();
    pick_best(candidates)
}

fn check_config(data: &Matrix, cfg: &KmeansConfig) {
    assert!(cfg.k > 0, "k must be positive");
    assert!(
        cfg.k <= data.rows(),
        "k ({}) exceeds number of points ({})",
        cfg.k,
        data.rows()
    );
    assert!(cfg.batch != Some(0), "batch size must be positive");
}

fn pick_best(candidates: Vec<Clustering>) -> Clustering {
    pick_best_clustering(candidates).expect("at least one restart ran")
}

/// Rows per parallel assignment chunk. Fixed — never derived from the
/// thread count — so the chunk grid, and with it every floating-point
/// reduction order, is a pure function of the input size.
const CHUNK: usize = 512;

/// Multiplicative slack on the Hamerly prune test. The upper/lower
/// bounds accumulate one rounding error per centroid update; inflating
/// the upper bound by a hair keeps pruning strictly conservative, so a
/// pruned point is always one the exact scan would have left in place.
const BOUND_SLACK: f64 = 1.0 + 1e-12;

/// Per-point scan state of one restart.
struct PointBounds {
    assignments: Vec<usize>,
    /// Upper bound on the distance to the assigned centroid.
    upper: Vec<f64>,
    /// Lower bound on the distance to every other centroid.
    lower: Vec<f64>,
}

/// Deterministic per-restart tallies, published to the observability
/// registry by [`kmeans_restart`] when a subscriber is installed.
#[derive(Debug, Default, Clone, Copy)]
struct RestartStats {
    /// Lloyd iterations executed (assignment passes after the initial).
    iterations: u64,
    /// Point visits resolved by the stale-bound certificate (no scan).
    pruned: u64,
    /// Point visits resolved by tightening the upper bound (one
    /// distance computation instead of a full scan).
    tightened: u64,
    /// Point visits that paid for the full centroid scan.
    scanned: u64,
    /// Assignment changes applied across all iterations.
    moves: u64,
}

/// One restart: k-means++ seeding, bounded Lloyd iterations, final
/// scoring. `pruned` selects the Hamerly fast path; both settings
/// produce identical output.
fn kmeans_single(
    data: &Matrix,
    k: usize,
    max_iters: usize,
    seed: u64,
    threads: usize,
    pruned: bool,
) -> (Clustering, RestartStats) {
    let n = data.rows();
    let d = data.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RestartStats::default();

    // The pruned path tracks every point's nearest/second-nearest seed
    // distance during k-means++ itself, which makes the initial
    // assignment pass free; the reference path seeds naively and pays
    // for a full initial scan. Both produce the same centroids,
    // assignments and bounds.
    let (mut centroids, mut state) = if pruned {
        seed_centroids_tracked(data, k, &mut rng)
    } else {
        let centroids = seed_centroids(data, k, &mut rng);
        let mut state = PointBounds {
            assignments: vec![0; n],
            upper: vec![0.0; n],
            lower: vec![0.0; n],
        };
        let (_, tally) = assign_pass(data, &centroids, &mut state, threads, true, pruned);
        stats.absorb(tally);
        (centroids, state)
    };

    // Incremental per-cluster sums, maintained from move lists in
    // ascending point order so every thread count reduces identically.
    let mut sums = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &a) in state.assignments.iter().enumerate() {
        counts[a] += 1;
        for (t, &v) in sums.row_mut(a).iter_mut().zip(data.row(i)) {
            *t += v;
        }
    }

    let mut moved = vec![0.0f64; k];
    for _ in 0..max_iters {
        stats.iterations += 1;
        update_centroids(
            data,
            &state.assignments,
            &sums,
            &counts,
            &mut centroids,
            &mut moved,
        );
        relax_bounds(&mut state, &moved);
        let (moves, tally) = assign_pass(data, &centroids, &mut state, threads, false, pruned);
        stats.absorb(tally);
        stats.moves += moves.len() as u64;
        if moves.is_empty() {
            break;
        }
        for &(i, from, to) in &moves {
            counts[from] -= 1;
            counts[to] += 1;
            for (t, &v) in sums.row_mut(from).iter_mut().zip(data.row(i)) {
                *t -= v;
            }
            for (t, &v) in sums.row_mut(to).iter_mut().zip(data.row(i)) {
                *t += v;
            }
        }
    }

    // Final statistics.
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for (i, &a) in state.assignments.iter().enumerate() {
        sizes[a] += 1;
        inertia += distance_sq(data.row(i), centroids.row(a));
    }
    let bic = bic_score(n, d, k, &sizes, inertia);

    (
        Clustering {
            assignments: state.assignments,
            centroids,
            sizes,
            inertia,
            bic,
        },
        stats,
    )
}

/// One mini-batch restart (Sculley, WWW 2010): k-means++ seeding, then
/// `max_iters` iterations that each draw `batch` points uniformly at
/// random, assign them against the *frozen* centroids, and pull each
/// chosen centroid toward its samples with a per-center learning rate
/// `1 / (cumulative samples seen by that center)`. Ends with one full
/// assignment pass so the reported assignments, sizes, inertia, and BIC
/// describe the whole data set.
///
/// Deterministic for a fixed seed (single RNG stream, sequential
/// updates) and independent of the thread count by construction.
fn minibatch_single(
    data: &Matrix,
    k: usize,
    max_iters: usize,
    seed: u64,
    batch: usize,
) -> (Clustering, RestartStats) {
    let n = data.rows();
    let d = data.cols();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut stats = RestartStats::default();

    let mut centroids = seed_centroids(data, k, &mut rng);
    let mut seen = vec![0u64; k];
    let mut sample = vec![0usize; batch];
    let mut assigned = vec![0usize; batch];
    for _ in 0..max_iters {
        stats.iterations += 1;
        for s in &mut sample {
            *s = rng.random_range(0..n);
        }
        // Assignment against frozen centroids, then sequential updates:
        // the update order is the sample order, not a data-dependent one.
        for (s, a) in sample.iter().zip(assigned.iter_mut()) {
            *a = scan_point(data.row(*s), &centroids, 0).0;
            stats.scanned += 1;
        }
        for (&s, &a) in sample.iter().zip(assigned.iter()) {
            seen[a] += 1;
            let eta = 1.0 / seen[a] as f64;
            for (c, &v) in centroids.row_mut(a).iter_mut().zip(data.row(s)) {
                *c += eta * (v - *c);
            }
        }
    }

    // Full closing pass: assignments and statistics over every point.
    let mut assignments = vec![0usize; n];
    let mut sizes = vec![0usize; k];
    let mut inertia = 0.0;
    for (i, a) in assignments.iter_mut().enumerate() {
        let (best, best_d, _) = scan_point(data.row(i), &centroids, 0);
        stats.scanned += 1;
        *a = best;
        sizes[best] += 1;
        inertia += best_d;
    }
    let bic = bic_score(n, d, k, &sizes, inertia);

    (
        Clustering {
            assignments,
            centroids,
            sizes,
            inertia,
            bic,
        },
        stats,
    )
}

impl RestartStats {
    fn absorb(&mut self, tally: PassTally) {
        self.pruned += tally.pruned;
        self.tightened += tally.tightened;
        self.scanned += tally.scanned;
    }
}

/// Per-assignment-pass tallies, summed over chunks.
#[derive(Debug, Default, Clone, Copy)]
struct PassTally {
    pruned: u64,
    tightened: u64,
    scanned: u64,
}

/// k-means++ seeding: the first centroid uniform, each next one drawn
/// with probability proportional to the squared distance to the nearest
/// centroid chosen so far.
#[allow(clippy::needless_range_loop)] // index loops touch several arrays in lock-step
fn seed_centroids(data: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.random_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut min_dist_sq: Vec<f64> = (0..n)
        .map(|i| distance_sq(data.row(i), centroids.row(0)))
        .collect();
    for c in 1..k {
        let total: f64 = min_dist_sq.iter().sum();
        let choice = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &dsq) in min_dist_sq.iter().enumerate() {
                target -= dsq;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(choice));
        for i in 0..n {
            let dsq = distance_sq(data.row(i), centroids.row(c));
            if dsq < min_dist_sq[i] {
                min_dist_sq[i] = dsq;
            }
        }
    }
    centroids
}

/// Squared-distance slack on the seeding skip test (see
/// [`seed_centroids_tracked`]): the triangle-inequality certificate is
/// exact over the reals, and this margin absorbs the rounding error of
/// the computed distances so a skipped update is always one the naive
/// scan would have rejected too.
const SEED_SKIP_SLACK: f64 = 4.0 * (1.0 + 1e-9);

/// k-means++ seeding with per-point nearest/second-nearest tracking —
/// the pruned path's seeding. Draws the *same* centroids as
/// [`seed_centroids`] (identical RNG stream, identical min-distance
/// arithmetic) and additionally returns each point's assignment and
/// Hamerly bounds, making the initial assignment pass unnecessary.
///
/// The update loop skips a point when the new centroid is provably too
/// far to improve either its nearest or second-nearest distance: with
/// `D = d(new centroid, point's centroid)` and `s` the point's
/// second-nearest distance, `D ≥ 2s` implies
/// `d(x, new) ≥ D − d(x, best) ≥ 2s − s = s`, so neither minimum can
/// tighten and the skip is exact. This cuts the seeding's `O(n·k·d)`
/// scan work down to `O(n·k)` certificate checks on clustered data.
#[allow(clippy::needless_range_loop)] // index loops touch several arrays in lock-step
fn seed_centroids_tracked(data: &Matrix, k: usize, rng: &mut StdRng) -> (Matrix, PointBounds) {
    let n = data.rows();
    let d = data.cols();
    let mut centroids = Matrix::zeros(k, d);
    let first = rng.random_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut best = vec![0usize; n];
    let mut min_dist_sq: Vec<f64> = (0..n)
        .map(|i| distance_sq(data.row(i), centroids.row(0)))
        .collect();
    let mut second_dist_sq = vec![f64::INFINITY; n];
    // Distances from the newest centroid to every earlier one, for the
    // skip certificate.
    let mut centroid_dsq = vec![0.0f64; k];
    for c in 1..k {
        let total: f64 = min_dist_sq.iter().sum();
        let choice = if total <= 0.0 {
            rng.random_range(0..n)
        } else {
            let mut target = rng.random_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &dsq) in min_dist_sq.iter().enumerate() {
                target -= dsq;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.row_mut(c).copy_from_slice(data.row(choice));
        for j in 0..c {
            centroid_dsq[j] = distance_sq(centroids.row(c), centroids.row(j));
        }
        for i in 0..n {
            if centroid_dsq[best[i]] >= SEED_SKIP_SLACK * second_dist_sq[i] {
                continue;
            }
            let dsq = distance_sq(data.row(i), centroids.row(c));
            if dsq < min_dist_sq[i] {
                second_dist_sq[i] = min_dist_sq[i];
                min_dist_sq[i] = dsq;
                best[i] = c;
            } else if dsq < second_dist_sq[i] {
                second_dist_sq[i] = dsq;
            }
        }
    }
    let state = PointBounds {
        assignments: best,
        upper: min_dist_sq.iter().map(|d| d.sqrt()).collect(),
        lower: second_dist_sq.iter().map(|d| d.sqrt()).collect(),
    };
    (centroids, state)
}

/// Scans all centroids for one point, replicating the naive loop's exact
/// tie-break: start from the incumbent and switch only on a strictly
/// smaller squared distance, visiting centroids in index order. Returns
/// `(best, best_dist_sq, second_dist_sq)` where `second` is the smallest
/// squared distance among non-best centroids (`∞` when `k == 1`).
fn scan_point(row: &[f64], centroids: &Matrix, incumbent: usize) -> (usize, f64, f64) {
    let mut best_c = incumbent;
    let mut best_d = distance_sq(row, centroids.row(incumbent));
    let mut second = f64::INFINITY;
    for c in 0..centroids.rows() {
        if c == incumbent {
            continue;
        }
        let dsq = distance_sq(row, centroids.row(c));
        if dsq < best_d {
            second = best_d;
            best_d = dsq;
            best_c = c;
        } else if dsq < second {
            second = dsq;
        }
    }
    (best_c, best_d, second)
}

/// Half the distance from each centroid to its nearest other centroid —
/// Hamerly's per-cluster certificate: a point within `half_min[c]` of
/// centroid `c` cannot be strictly closer to any other centroid (by the
/// triangle inequality), so the naive tie-break keeps it in place.
/// `∞` when `k == 1`.
fn half_min_centroid_dist(centroids: &Matrix) -> Vec<f64> {
    let k = centroids.rows();
    let mut min_dist = vec![f64::INFINITY; k];
    for a in 0..k {
        for b in (a + 1)..k {
            let dist = distance(centroids.row(a), centroids.row(b));
            if dist < min_dist[a] {
                min_dist[a] = dist;
            }
            if dist < min_dist[b] {
                min_dist[b] = dist;
            }
        }
    }
    min_dist.iter().map(|d| d * 0.5).collect()
}

/// One assignment pass over all points, chunk-parallel. Returns the move
/// list `(point, from, to)` in ascending point order (empty on the
/// initial pass, which writes assignments directly).
///
/// With `pruned`, points whose Hamerly bounds certify their incumbent
/// skip the scan entirely; a failed certificate falls back to the exact
/// scan, so pruning never changes an assignment.
fn assign_pass(
    data: &Matrix,
    centroids: &Matrix,
    state: &mut PointBounds,
    threads: usize,
    initial: bool,
    pruned: bool,
) -> (Vec<(usize, usize, usize)>, PassTally) {
    struct ChunkTask<'a> {
        start: usize,
        assignments: &'a mut [usize],
        upper: &'a mut [f64],
        lower: &'a mut [f64],
    }

    // Hamerly's cluster-radius certificate, shared by every chunk. Only
    // the pruned path consults it; O(k²·d) per pass, negligible next to
    // the O(n·k·d) scans it avoids.
    let half_min = if pruned && !initial {
        half_min_centroid_dist(centroids)
    } else {
        Vec::new()
    };

    let mut tasks = Vec::new();
    {
        let mut a_it = state.assignments.chunks_mut(CHUNK);
        let mut u_it = state.upper.chunks_mut(CHUNK);
        let mut l_it = state.lower.chunks_mut(CHUNK);
        let mut start = 0;
        while let (Some(assignments), Some(upper), Some(lower)) =
            (a_it.next(), u_it.next(), l_it.next())
        {
            let len = assignments.len();
            tasks.push(ChunkTask {
                start,
                assignments,
                upper,
                lower,
            });
            start += len;
        }
    }

    let per_chunk = parallel_map_owned(tasks, threads, |task| {
        let mut moves = Vec::new();
        let mut tally = PassTally::default();
        for j in 0..task.assignments.len() {
            let i = task.start + j;
            let row = data.row(i);
            let incumbent = if initial { 0 } else { task.assignments[j] };
            if !initial && pruned {
                // Certificate 1: stale upper bound already below both the
                // lower bound on every other centroid and the incumbent's
                // cluster radius.
                let gate = task.lower[j].max(half_min[incumbent]);
                if task.upper[j] * BOUND_SLACK <= gate {
                    tally.pruned += 1;
                    continue;
                }
                // Certificate 2: tighten the upper bound to the exact
                // distance and retest before paying for a full scan.
                task.upper[j] = distance_sq(row, centroids.row(incumbent)).sqrt();
                if task.upper[j] * BOUND_SLACK <= gate {
                    tally.tightened += 1;
                    continue;
                }
            }
            tally.scanned += 1;
            let (best, best_d, second) = scan_point(row, centroids, incumbent);
            task.upper[j] = best_d.sqrt();
            task.lower[j] = second.sqrt();
            if initial {
                task.assignments[j] = best;
            } else if best != incumbent {
                task.assignments[j] = best;
                moves.push((i, incumbent, best));
            }
        }
        (moves, tally)
    });
    let mut moves = Vec::new();
    let mut tally = PassTally::default();
    for (chunk_moves, chunk_tally) in per_chunk {
        moves.extend(chunk_moves);
        tally.pruned += chunk_tally.pruned;
        tally.tightened += chunk_tally.tightened;
        tally.scanned += chunk_tally.scanned;
    }
    (moves, tally)
}

/// Loosens every point's bounds after centroids moved: the upper bound
/// grows by its own centroid's movement, the lower bound shrinks by the
/// largest movement of any *other* centroid (Hamerly's update rule).
fn relax_bounds(state: &mut PointBounds, moved: &[f64]) {
    let mut max_move = 0.0f64;
    let mut argmax = 0;
    let mut second_move = 0.0f64;
    for (c, &m) in moved.iter().enumerate() {
        if m > max_move {
            second_move = max_move;
            max_move = m;
            argmax = c;
        } else if m > second_move {
            second_move = m;
        }
    }
    for ((&a, u), l) in state
        .assignments
        .iter()
        .zip(state.upper.iter_mut())
        .zip(state.lower.iter_mut())
    {
        *u += moved[a];
        *l -= if a == argmax { second_move } else { max_move };
    }
}

/// Moves each non-empty cluster's centroid to the mean of its members
/// (from the incremental sums) and re-seeds each empty cluster from the
/// farthest point, deduplicating choices across empty clusters. Records
/// every centroid's movement (Euclidean) in `moved`.
fn update_centroids(
    data: &Matrix,
    assignments: &[usize],
    sums: &Matrix,
    counts: &[usize],
    centroids: &mut Matrix,
    moved: &mut [f64],
) {
    let k = counts.len();
    let mut new_row = vec![0.0f64; data.cols()];
    let mut any_empty = false;
    for c in 0..k {
        if counts[c] == 0 {
            any_empty = true;
            moved[c] = 0.0;
            continue;
        }
        let inv = 1.0 / counts[c] as f64;
        for (t, &s) in new_row.iter_mut().zip(sums.row(c)) {
            *t = s * inv;
        }
        moved[c] = distance(centroids.row(c), &new_row);
        centroids.row_mut(c).copy_from_slice(&new_row);
    }
    if !any_empty {
        return;
    }

    // Re-seed empty clusters from the farthest points. The distances to
    // the (updated) assigned centroids are computed once and shared by
    // all empty clusters; each cluster takes the farthest not-yet-chosen
    // point, so no two empty clusters collapse onto the same row.
    let dist_to_assigned: Vec<f64> = assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| distance_sq(data.row(i), centroids.row(a)))
        .collect();
    let mut chosen = vec![false; data.rows()];
    for c in 0..k {
        if counts[c] != 0 {
            continue;
        }
        let mut far = usize::MAX;
        let mut far_d = f64::NEG_INFINITY;
        for (i, &dsq) in dist_to_assigned.iter().enumerate() {
            if !chosen[i] && dsq > far_d {
                far = i;
                far_d = dsq;
            }
        }
        if far == usize::MAX {
            // More empty clusters than points — leave the centroid put.
            continue;
        }
        chosen[far] = true;
        moved[c] = distance(centroids.row(c), data.row(far));
        centroids.row_mut(c).copy_from_slice(data.row(far));
    }
}

/// BIC of a clustering under the identical-spherical-Gaussian model
/// (x-means; Pelleg & Moore 2000). Higher is better.
fn bic_score(n: usize, d: usize, k: usize, sizes: &[usize], inertia: f64) -> f64 {
    let n_f = n as f64;
    let d_f = d as f64;
    let k_f = k as f64;
    // Pooled ML variance estimate.
    let denom = (n_f - k_f).max(1.0) * d_f;
    let variance = (inertia / denom).max(1e-12);

    let mut ll = 0.0;
    for &size in sizes {
        if size == 0 {
            continue;
        }
        let s = size as f64;
        ll += s * s.ln()
            - s * n_f.ln()
            - (s * d_f / 2.0) * (2.0 * std::f64::consts::PI).ln()
            - (s * d_f / 2.0) * variance.ln()
            - (s - k_f) * d_f / 2.0 / n_f.max(1.0);
    }
    let params = (k_f - 1.0) + k_f * d_f + 1.0;
    ll - params / 2.0 * n_f.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> Matrix {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f64 * 0.01;
            rows.push(vec![j, -j]);
            rows.push(vec![10.0 + j, 10.0 - j]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_well_separated_blobs() {
        let data = two_blobs();
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(7));
        // All even rows together, all odd rows together.
        let c0 = c.assignments[0];
        let c1 = c.assignments[1];
        assert_ne!(c0, c1);
        for i in 0..data.rows() {
            assert_eq!(c.assignments[i], if i % 2 == 0 { c0 } else { c1 });
        }
        assert_eq!(c.sizes.iter().sum::<usize>(), data.rows());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = two_blobs();
        let cfg = KmeansConfig::new(3).with_seed(42);
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.bic, b.bic);
    }

    #[test]
    fn identical_across_thread_counts() {
        let data = two_blobs();
        let base = kmeans(&data, &KmeansConfig::new(4).with_seed(13).with_threads(1));
        for threads in [2, 4, 0] {
            let other = kmeans(
                &data,
                &KmeansConfig::new(4).with_seed(13).with_threads(threads),
            );
            assert_eq!(base.assignments, other.assignments);
            assert_eq!(base.inertia.to_bits(), other.inertia.to_bits());
            assert_eq!(base.bic.to_bits(), other.bic.to_bits());
        }
    }

    #[test]
    fn matches_reference_implementation() {
        let data = two_blobs();
        for k in [1, 2, 5, 9] {
            let cfg = KmeansConfig::new(k).with_seed(21).with_restarts(3);
            let pruned = kmeans(&data, &cfg);
            let naive = kmeans_reference(&data, &cfg);
            assert_eq!(pruned.assignments, naive.assignments, "k = {k}");
            assert_eq!(pruned.inertia.to_bits(), naive.inertia.to_bits());
            assert_eq!(pruned.bic.to_bits(), naive.bic.to_bits());
            assert_eq!(pruned.sizes, naive.sizes);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_rows(&[vec![0.0], vec![5.0], vec![9.0]]);
        let c = kmeans(&data, &KmeansConfig::new(3).with_seed(1));
        assert!(c.inertia < 1e-12);
        assert_eq!(c.sizes, vec![1, 1, 1]);
    }

    #[test]
    fn representative_is_closest_to_centroid() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![100.0]]);
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(3));
        let cluster_of_0 = c.assignments[0];
        let rep = c.representative_of(&data, cluster_of_0).unwrap();
        // Centroid of {0,1,2} is 1.0; closest is row 1.
        assert_eq!(rep, 1);
    }

    #[test]
    fn members_of_partitions_rows() {
        let data = two_blobs();
        let c = kmeans(&data, &KmeansConfig::new(2).with_seed(9));
        let total: usize = (0..2).map(|k| c.members_of(k).len()).sum();
        assert_eq!(total, data.rows());
    }

    #[test]
    fn bic_prefers_true_k_over_k1() {
        let data = two_blobs();
        let c1 = kmeans(&data, &KmeansConfig::new(1).with_seed(5));
        let c2 = kmeans(&data, &KmeansConfig::new(2).with_seed(5));
        assert!(
            c2.bic > c1.bic,
            "BIC should prefer k=2 on two blobs: {} vs {}",
            c2.bic,
            c1.bic
        );
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data = two_blobs();
        let c2 = kmeans(&data, &KmeansConfig::new(2).with_seed(5));
        let c8 = kmeans(&data, &KmeansConfig::new(8).with_seed(5));
        assert!(c8.inertia <= c2.inertia + 1e-9);
    }

    #[test]
    fn minibatch_separates_well_separated_blobs() {
        let data = two_blobs();
        let cfg = KmeansConfig::new(2).with_seed(7).with_batch(Some(8));
        let mb = kmeans(&data, &cfg);
        let exact = kmeans(&data, &cfg.clone().with_batch(None));
        // Same partition (up to label permutation) on separated blobs.
        for i in 0..data.rows() {
            for j in 0..data.rows() {
                assert_eq!(
                    mb.assignments[i] == mb.assignments[j],
                    exact.assignments[i] == exact.assignments[j],
                    "rows {i},{j} disagree on co-membership"
                );
            }
        }
        assert_eq!(mb.sizes.iter().sum::<usize>(), data.rows());
    }

    #[test]
    fn minibatch_is_deterministic_and_thread_independent() {
        let data = two_blobs();
        let cfg = KmeansConfig::new(3).with_seed(42).with_batch(Some(5));
        let a = kmeans(&data, &cfg);
        let b = kmeans(&data, &cfg.clone().with_threads(4));
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia.to_bits(), b.inertia.to_bits());
        assert_eq!(a.bic.to_bits(), b.bic.to_bits());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        let data = two_blobs();
        let _ = kmeans(&data, &KmeansConfig::new(2).with_batch(Some(0)));
    }

    #[test]
    #[should_panic(expected = "exceeds number of points")]
    fn k_larger_than_n_rejected() {
        let data = Matrix::from_rows(&[vec![0.0]]);
        let _ = kmeans(&data, &KmeansConfig::new(2));
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 10]);
        let c = kmeans(&data, &KmeansConfig::new(3).with_seed(11));
        assert_eq!(c.assignments.len(), 10);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn empty_cluster_reseeds_are_deduplicated() {
        // Five points, everything assigned to cluster 0, clusters 1 and 2
        // empty. Re-seeding must hand the two empty clusters two
        // *distinct* far rows (rows 3 and 4), not the single farthest row
        // twice.
        let data = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![40.0, 0.0],
            vec![0.0, 30.0],
        ]);
        let assignments = vec![0usize; 5];
        let mut sums = Matrix::zeros(3, 2);
        let mut counts = vec![0usize; 3];
        for i in 0..5 {
            counts[0] += 1;
            for (t, &v) in sums.row_mut(0).iter_mut().zip(data.row(i)) {
                *t += v;
            }
        }
        let mut centroids = Matrix::zeros(3, 2);
        let mut moved = vec![0.0; 3];
        update_centroids(
            &data,
            &assignments,
            &sums,
            &counts,
            &mut centroids,
            &mut moved,
        );
        // Farthest from the mean is row 3, second-farthest row 4.
        assert_eq!(centroids.row(1), data.row(3));
        assert_eq!(centroids.row(2), data.row(4));
        assert_ne!(centroids.row(1), centroids.row(2));
        assert!(moved[1] > 0.0 && moved[2] > 0.0);
    }
}
