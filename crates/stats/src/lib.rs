//! Statistics substrate for `phaselab`.
//!
//! Implements, from scratch, every piece of multivariate statistics the
//! phase-level workload characterization methodology of Hoste & Eeckhout
//! (ISPASS 2008) relies on:
//!
//! * a dense row-major [`Matrix`] type,
//! * column z-score normalization ([`normalize_columns`]),
//! * principal components analysis ([`Pca`]) via Jacobi eigendecomposition
//!   of the (symmetric) covariance matrix,
//! * k-means++ clustering with multiple restarts scored by the Bayesian
//!   Information Criterion ([`kmeans`]), with an optional mini-batch mode,
//! * one-pass, mergeable streaming accumulators for column statistics and
//!   covariance ([`RunningColumnStats`], [`RunningCovariance`]) so the
//!   analysis can run memory-bounded without materializing its input,
//! * Euclidean distances and the Pearson correlation coefficient.
//!
//! The paper's statistics were computed with off-the-shelf tooling; this
//! crate replaces that tooling with a self-contained implementation so the
//! whole reproduction builds offline with no linear-algebra dependencies.
//!
//! # Examples
//!
//! ```
//! use phaselab_stats::{Matrix, Pca};
//!
//! // Two perfectly correlated columns collapse onto one principal component.
//! let m = Matrix::from_rows(&[
//!     vec![1.0, 2.0],
//!     vec![2.0, 4.0],
//!     vec![3.0, 6.0],
//!     vec![4.0, 8.0],
//! ]);
//! let pca = Pca::fit(&m);
//! assert!(pca.explained_variance_ratio()[0] > 0.999);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlation;
mod eigen;
mod hierarchical;
mod kmeans;
mod matrix;
mod normalize;
mod pca;
mod streaming;

pub use correlation::{pearson, spearman};
pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use hierarchical::{hierarchical_cluster, Dendrogram, Merge};
pub use kmeans::{
    kmeans, kmeans_reference, kmeans_restart, pick_best_clustering, Clustering, KmeansConfig,
};
pub use matrix::Matrix;
pub use normalize::{normalize_columns, ColumnStats};
pub use pca::{rescaled_pca_space, Pca};
pub use streaming::{RunningColumnStats, RunningCovariance, RELATIVE_STD_FLOOR};

/// Squared Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(phaselab_stats::distance_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
/// ```
#[inline]
pub fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance between unequal-length vectors");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// Euclidean distance between two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(phaselab_stats::distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
/// ```
#[inline]
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    distance_sq(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        assert_eq!(distance(&[1.0], &[1.0]), 0.0);
        assert_eq!(distance_sq(&[1.0, 1.0], &[2.0, 2.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn distance_length_checked() {
        let _ = distance(&[1.0], &[1.0, 2.0]);
    }
}
