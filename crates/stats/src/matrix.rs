//! A dense row-major matrix of `f64`.

/// A dense row-major matrix of `f64` values.
///
/// The data-set matrices of the characterization methodology are
/// observations-by-features: one row per instruction interval, one column
/// per microarchitecture-independent characteristic.
///
/// # Examples
///
/// ```
/// use phaselab_stats::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 2);
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Writes the element at (`r`, `c`).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterates over the rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.get(k, c);
                }
            }
        }
        out
    }

    /// Selects a subset of columns, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for r in 0..self.rows {
            for (j, &c) in indices.iter().enumerate() {
                out.set(r, j, self.get(r, c));
            }
        }
        out
    }

    /// Selects a subset of rows, in the given order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut rows = Vec::with_capacity(indices.len());
        for &r in indices {
            rows.push(self.row(r).to_vec());
        }
        Matrix::from_rows(&rows)
    }

    /// The column-wise means.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        for row in self.iter_rows() {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let n = self.rows.max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// The sample covariance matrix of the columns (divides by `n - 1`).
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than two rows.
    pub fn covariance(&self) -> Matrix {
        assert!(self.rows >= 2, "covariance needs at least two rows");
        let means = self.column_means();
        let mut cov = Matrix::zeros(self.cols, self.cols);
        for row in self.iter_rows() {
            for i in 0..self.cols {
                let di = row[i] - means[i];
                if di == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    let dj = row[j] - means[j];
                    cov.data[i * self.cols + j] += di * dj;
                }
            }
        }
        let denom = (self.rows - 1) as f64;
        for i in 0..self.cols {
            for j in i..self.cols {
                let v = cov.get(i, j) / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 7.5);
        assert_eq!(m.get(1, 2), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn identity_diagonal() {
        let id = Matrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(id.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_validates_lengths() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.matmul(&Matrix::identity(2)), a);
    }

    #[test]
    fn select_columns_and_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let sub = m.select_columns(&[2, 0]);
        assert_eq!(sub.row(0), &[3.0, 1.0]);
        let rows = m.select_rows(&[1]);
        assert_eq!(rows.row(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn column_means_simple() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        assert_eq!(m.column_means(), vec![2.0, 20.0]);
    }

    #[test]
    fn covariance_of_known_data() {
        // cov([1,2,3], [2,4,6]) => var(x)=1, var(y)=4, cov=2
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let cov = m.covariance();
        assert!((cov.get(0, 0) - 1.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 4.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 2.0).abs() < 1e-12);
        assert_eq!(cov.get(0, 1), cov.get(1, 0));
    }

    #[test]
    fn iter_rows_matches_row() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let collected: Vec<f64> = m.iter_rows().map(|r| r[0]).collect();
        assert_eq!(collected, vec![1.0, 2.0, 3.0]);
    }
}
