//! Column-wise z-score normalization.

use crate::matrix::Matrix;
use crate::streaming::RunningColumnStats;

/// Per-column mean and standard deviation, as computed by
/// [`normalize_columns`].
///
/// Zero-variance columns record a standard deviation of `0.0`; they are
/// mapped to all-zero columns by the normalization (rather than dividing by
/// zero), which drops them from any subsequent distance or PCA computation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Column means.
    pub means: Vec<f64>,
    /// Column sample standard deviations (`0.0` for constant columns).
    pub stds: Vec<f64>,
}

impl ColumnStats {
    /// Computes the statistics of the columns of `m` without normalizing.
    ///
    /// Runs the one-pass Welford accumulator
    /// ([`RunningColumnStats`](crate::RunningColumnStats)) over the rows,
    /// so the result is bit-identical to streaming the same rows in the
    /// same order. A standard deviation at or below
    /// [`RELATIVE_STD_FLOOR`](crate::RELATIVE_STD_FLOOR) times the
    /// column's largest absolute value is clamped to `0.0` — relative to
    /// the column's magnitude, so legitimately tiny-scale columns keep
    /// their spread while rounding noise on large-scale near-constant
    /// columns is treated as zero.
    pub fn of(m: &Matrix) -> Self {
        let mut acc = RunningColumnStats::new(m.cols());
        for row in m.iter_rows() {
            acc.push(row);
        }
        acc.finalize()
    }

    /// The `(mean, standard deviation)` of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn column(&self, col: usize) -> (f64, f64) {
        (self.means[col], self.stds[col])
    }

    /// Applies this normalization to a matrix with the same column layout.
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn apply(&self, m: &Matrix) -> Matrix {
        assert_eq!(m.cols(), self.means.len(), "column count mismatch");
        let mut out = m.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (v, (&mean, &std)) in row.iter_mut().zip(self.means.iter().zip(&self.stds)) {
                *v = if std == 0.0 { 0.0 } else { (*v - mean) / std };
            }
        }
        out
    }
}

/// Z-score normalizes each column of `m` (mean 0, unit variance) and
/// returns the normalized matrix along with the statistics used.
///
/// The characterization methodology normalizes the data set before PCA "to
/// put all characteristics on a common scale" and again after PCA to give
/// all retained principal components equal weight (the "rescaled PCA
/// space" of the paper).
///
/// Constant columns become all-zero (see [`ColumnStats`]).
///
/// # Examples
///
/// ```
/// use phaselab_stats::{normalize_columns, Matrix};
///
/// let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
/// let (normed, stats) = normalize_columns(&m);
/// assert!((stats.means[0] - 2.0).abs() < 1e-12);
/// assert!((normed.get(0, 0) + 1.0).abs() < 1e-12);
/// ```
pub fn normalize_columns(m: &Matrix) -> (Matrix, ColumnStats) {
    let stats = ColumnStats::of(m);
    let normed = stats.apply(m);
    (normed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_columns_have_zero_mean_unit_variance() {
        let m = Matrix::from_rows(&[vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]]);
        let (n, _) = normalize_columns(&m);
        for c in 0..2 {
            let col = n.column(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (col.len() - 1) as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_becomes_zero() {
        let m = Matrix::from_rows(&[vec![5.0, 1.0], vec![5.0, 2.0], vec![5.0, 3.0]]);
        let (n, stats) = normalize_columns(&m);
        assert_eq!(stats.stds[0], 0.0);
        assert!(n.column(0).iter().all(|&v| v == 0.0));
        assert!(n.column(1).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn column_accessor_matches_fields() {
        let m = Matrix::from_rows(&[vec![1.0, 7.0], vec![3.0, 7.0]]);
        let stats = ColumnStats::of(&m);
        assert_eq!(stats.column(0), (stats.means[0], stats.stds[0]));
        assert_eq!(stats.column(1), (7.0, 0.0));
    }

    #[test]
    fn apply_reuses_training_statistics() {
        let train = Matrix::from_rows(&[vec![0.0], vec![10.0]]);
        let (_, stats) = normalize_columns(&train);
        let test = Matrix::from_rows(&[vec![5.0]]);
        let out = stats.apply(&test);
        // mean 5, std = sqrt(50) => (5-5)/std = 0
        assert!(out.get(0, 0).abs() < 1e-12);
    }

    #[test]
    fn single_row_matrix_normalizes_to_zero() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let (n, stats) = normalize_columns(&m);
        assert_eq!(stats.stds, vec![0.0, 0.0]);
        assert_eq!(n.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn tiny_scale_column_is_not_clamped_to_constant() {
        // Regression: an absolute 1e-12 std floor zeroed this column even
        // though its spread is perfectly meaningful at its own scale.
        let m = Matrix::from_rows(&[vec![1e-15], vec![2e-15], vec![3e-15]]);
        let (n, stats) = normalize_columns(&m);
        assert!(stats.stds[0] > 0.0);
        assert!((n.get(0, 0) + 1.0).abs() < 1e-9, "z-scores must survive");
    }

    #[test]
    fn large_scale_noise_column_is_clamped_to_constant() {
        // Regression: a 1e12-scale column whose spread is floating-point
        // rounding noise (relative std ~1e-16) passed the absolute floor
        // and injected noise-only variance into the analysis.
        let m = Matrix::from_rows(&[vec![1e12], vec![1e12 + 1e-4], vec![1e12 - 1e-4]]);
        let (n, stats) = normalize_columns(&m);
        assert_eq!(stats.stds[0], 0.0);
        assert!(n.column(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn apply_validates_columns() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let (_, stats) = normalize_columns(&m);
        let wrong = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let _ = stats.apply(&wrong);
    }
}
