//! Principal components analysis.

use crate::eigen::jacobi_eigen;
use crate::matrix::Matrix;

/// A fitted principal components analysis model.
///
/// PCA transforms `p` (possibly correlated) input variables into `p`
/// uncorrelated principal components ordered by decreasing variance. The
/// characterization methodology applies PCA to the normalized
/// interval-by-characteristic matrix and retains only the components whose
/// standard deviation exceeds 1 — i.e. components carrying more variance
/// than any single normalized input variable.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{Matrix, Pca};
///
/// let m = Matrix::from_rows(&[
///     vec![1.0, 1.1],
///     vec![2.0, 2.2],
///     vec![3.0, 2.9],
///     vec![4.0, 4.1],
/// ]);
/// let pca = Pca::fit(&m);
/// let scores = pca.transform(&m, 1);
/// assert_eq!(scores.cols(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    means: Vec<f64>,
    /// Columns are principal directions, ordered by decreasing variance.
    components: Matrix,
    /// Variance of each principal component (eigenvalues, clamped at 0).
    variances: Vec<f64>,
}

impl Pca {
    /// Fits a PCA model to the rows of `m` (observations by variables).
    ///
    /// # Panics
    ///
    /// Panics if `m` has fewer than two rows.
    pub fn fit(m: &Matrix) -> Self {
        let _span = phaselab_obs::span!("pca.fit");
        phaselab_obs::counter_add("pca.fits", phaselab_obs::Class::Structural, 1);
        let cov = m.covariance();
        let eig = jacobi_eigen(&cov);
        let variances = eig
            .eigenvalues
            .iter()
            .map(|&v| if v > 0.0 { v } else { 0.0 })
            .collect();
        Pca {
            means: m.column_means(),
            components: eig.eigenvectors,
            variances,
        }
    }

    /// Fits a PCA model from an already-accumulated covariance matrix and
    /// the matching column means, without ever seeing the rows.
    ///
    /// This is the streaming entry point: feed rows through a
    /// [`RunningCovariance`](crate::RunningCovariance) and hand its
    /// [`covariance()`](crate::RunningCovariance::covariance) and
    /// [`means()`](crate::RunningCovariance::means) here. Given the same
    /// covariance and means, the fitted model is bit-identical to
    /// [`Pca::fit`]'s eigendecomposition of that matrix.
    ///
    /// # Panics
    ///
    /// Panics if `cov` is not square with side `means.len()`, or not
    /// symmetric.
    pub fn from_covariance(means: Vec<f64>, cov: &Matrix) -> Self {
        let _span = phaselab_obs::span!("pca.fit");
        phaselab_obs::counter_add("pca.fits", phaselab_obs::Class::Structural, 1);
        assert_eq!(cov.rows(), means.len(), "covariance/means size mismatch");
        let eig = jacobi_eigen(cov);
        let variances = eig
            .eigenvalues
            .iter()
            .map(|&v| if v > 0.0 { v } else { 0.0 })
            .collect();
        Pca {
            means,
            components: eig.eigenvectors,
            variances,
        }
    }

    /// Number of input variables the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.means.len()
    }

    /// The variance captured by each principal component, descending.
    pub fn variances(&self) -> &[f64] {
        &self.variances
    }

    /// The standard deviation of each principal component, descending.
    pub fn std_devs(&self) -> Vec<f64> {
        self.variances.iter().map(|v| v.sqrt()).collect()
    }

    /// The fraction of total variance explained by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        let total: f64 = self.variances.iter().sum();
        if total == 0.0 {
            vec![0.0; self.variances.len()]
        } else {
            self.variances.iter().map(|v| v / total).collect()
        }
    }

    /// Number of components whose standard deviation exceeds `threshold`.
    ///
    /// The paper retains components with standard deviation greater than
    /// one (on normalized data); this is the Kaiser criterion.
    pub fn count_above(&self, threshold: f64) -> usize {
        self.variances
            .iter()
            .filter(|&&v| v.sqrt() > threshold)
            .count()
    }

    /// Cumulative fraction of variance explained by the first `k`
    /// components.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the input dimensionality.
    pub fn cumulative_explained(&self, k: usize) -> f64 {
        assert!(k <= self.variances.len(), "k out of range");
        self.explained_variance_ratio().iter().take(k).sum()
    }

    /// Projects `m` onto the first `k` principal components.
    ///
    /// # Panics
    ///
    /// Panics if `m`'s column count differs from the fitted dimensionality
    /// or `k` exceeds it.
    pub fn transform(&self, m: &Matrix, k: usize) -> Matrix {
        assert_eq!(m.cols(), self.input_dim(), "dimensionality mismatch");
        assert!(k <= self.input_dim(), "k out of range");
        let mut out = Matrix::zeros(m.rows(), k);
        for r in 0..m.rows() {
            self.transform_row(m.row(r), out.row_mut(r));
        }
        out
    }

    /// Projects a single row onto the first `out.len()` principal
    /// components, writing the scores into `out`. [`transform`](Self::transform)
    /// is this per row, so streaming rows through here is bit-identical to
    /// transforming the materialized matrix.
    ///
    /// # Panics
    ///
    /// Panics if `row`'s length differs from the fitted dimensionality or
    /// `out` asks for more components than exist.
    pub fn transform_row(&self, row: &[f64], out: &mut [f64]) {
        assert_eq!(row.len(), self.input_dim(), "dimensionality mismatch");
        assert!(out.len() <= self.input_dim(), "k out of range");
        for (c, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &x) in row.iter().enumerate() {
                acc += (x - self.means[j]) * self.components.get(j, c);
            }
            *o = acc;
        }
    }
}

/// Projects `m` into the paper's "rescaled PCA space": z-score normalize
/// the columns, fit PCA, retain the components whose standard deviation
/// exceeds `sd_threshold`, project, and z-score normalize the retained
/// component scores so each underlying program characteristic gets equal
/// weight.
///
/// At least one component is always retained, so the result is never
/// zero-dimensional.
///
/// # Panics
///
/// Panics if `m` has fewer than two rows.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{rescaled_pca_space, Matrix};
///
/// let m = Matrix::from_rows(&[
///     vec![1.0, 10.0, 0.0],
///     vec![2.0, 20.0, 1.0],
///     vec![3.0, 30.0, 0.0],
///     vec![4.0, 40.0, 1.0],
/// ]);
/// let space = rescaled_pca_space(&m, 1.0);
/// assert_eq!(space.rows(), 4);
/// assert!(space.cols() >= 1);
/// ```
pub fn rescaled_pca_space(m: &Matrix, sd_threshold: f64) -> Matrix {
    let (normed, _) = crate::normalize_columns(m);
    let pca = Pca::fit(&normed);
    let k = pca.count_above(sd_threshold).max(1);
    let scores = pca.transform(&normed, k);
    let (rescaled, _) = crate::normalize_columns(&scores);
    rescaled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlated_data_collapses_to_one_component() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![2.0, 4.0],
            vec![3.0, 6.0],
            vec![4.0, 8.0],
        ]);
        let pca = Pca::fit(&m);
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.9999);
        assert!(ratios[1] < 1e-6);
    }

    #[test]
    fn variances_match_eigenvalues_of_covariance() {
        let m = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![-1.0, 0.0],
            vec![0.0, 2.0],
            vec![0.0, -2.0],
        ]);
        let pca = Pca::fit(&m);
        // var(x) = 2/3... sample var uses n-1: x: (1+1)/3 = 0.667, y: 8/3 = 2.667
        assert!((pca.variances()[0] - 8.0 / 3.0).abs() < 1e-10);
        assert!((pca.variances()[1] - 2.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn transform_produces_uncorrelated_scores() {
        let m = Matrix::from_rows(&[
            vec![2.5, 2.4],
            vec![0.5, 0.7],
            vec![2.2, 2.9],
            vec![1.9, 2.2],
            vec![3.1, 3.0],
            vec![2.3, 2.7],
            vec![2.0, 1.6],
            vec![1.0, 1.1],
            vec![1.5, 1.6],
            vec![1.1, 0.9],
        ]);
        let pca = Pca::fit(&m);
        let scores = pca.transform(&m, 2);
        let cov = scores.covariance();
        assert!(cov.get(0, 1).abs() < 1e-10, "scores must be uncorrelated");
        // Score variances equal the eigenvalues.
        assert!((cov.get(0, 0) - pca.variances()[0]).abs() < 1e-10);
    }

    #[test]
    fn count_above_kaiser_criterion() {
        // On normalized data the total variance equals the number of
        // columns; at least one component must be above 1 unless all are
        // exactly 1.
        let m = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.3],
            vec![2.0, 2.1, -0.4],
            vec![3.0, 2.9, 0.1],
            vec![4.0, 4.2, -0.2],
        ]);
        let (normed, _) = crate::normalize_columns(&m);
        let pca = Pca::fit(&normed);
        let k = pca.count_above(1.0);
        assert!((1..3).contains(&k));
    }

    #[test]
    fn cumulative_explained_is_monotone() {
        let m = Matrix::from_rows(&[
            vec![1.0, 5.0, 2.0],
            vec![2.0, 3.0, 8.0],
            vec![3.0, 8.0, 1.0],
            vec![4.0, 1.0, 9.0],
        ]);
        let pca = Pca::fit(&m);
        let mut prev = 0.0;
        for k in 0..=3 {
            let c = pca.cumulative_explained(k);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!((pca.cumulative_explained(3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_covariance_matches_fit_bitwise() {
        let m = Matrix::from_rows(&[
            vec![2.5, 2.4, 0.1],
            vec![0.5, 0.7, 1.3],
            vec![2.2, 2.9, -0.4],
            vec![1.9, 2.2, 0.8],
        ]);
        let fitted = Pca::fit(&m);
        let streamed = Pca::from_covariance(m.column_means(), &m.covariance());
        // Same covariance bits in → same model bits out.
        assert_eq!(fitted.variances(), streamed.variances());
        let a = fitted.transform(&m, 2);
        let b = streamed.transform(&m, 2);
        for r in 0..a.rows() {
            for c in 0..a.cols() {
                assert_eq!(a.get(r, c).to_bits(), b.get(r, c).to_bits());
            }
        }
    }

    #[test]
    fn transform_row_matches_transform() {
        let m = Matrix::from_rows(&[vec![1.0, 5.0], vec![2.0, 3.0], vec![3.0, 8.0]]);
        let pca = Pca::fit(&m);
        let full = pca.transform(&m, 2);
        let mut out = [0.0; 2];
        for r in 0..m.rows() {
            pca.transform_row(m.row(r), &mut out);
            assert_eq!(out[0].to_bits(), full.get(r, 0).to_bits());
            assert_eq!(out[1].to_bits(), full.get(r, 1).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn transform_validates_dims() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let pca = Pca::fit(&m);
        let wrong = Matrix::from_rows(&[vec![1.0]]);
        let _ = pca.transform(&wrong, 1);
    }
}
