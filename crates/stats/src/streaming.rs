//! One-pass streaming accumulators: Welford column statistics and a
//! running covariance matrix.
//!
//! These are the memory-bounded backbone of the streaming analysis
//! pipeline: each accumulator consumes rows one at a time and holds
//! `O(cols)` (column stats) or `O(cols²)` (covariance) state, never the
//! rows themselves. Both are *mergeable* (Chan et al.'s parallel update
//! formulas), so partial accumulators built over row ranges combine
//! into the statistics of the concatenation.
//!
//! Exactness contract: for a fixed row order the accumulators are fully
//! deterministic — same rows, same bits out. Against the classic
//! *two-pass* formulas (mean first, then centered moments) they agree
//! only within floating-point tolerance, not bitwise; the property
//! tests in `tests/properties.rs` pin that tolerance under row
//! permutations and accumulator merges. The study pipeline therefore
//! runs the *same* accumulator code in both its in-RAM and streaming
//! modes, which makes the two modes bit-identical to each other by
//! construction.

use crate::matrix::Matrix;
use crate::normalize::ColumnStats;

/// Relative standard-deviation floor: a column whose sample standard
/// deviation is at or below `RELATIVE_STD_FLOOR` times its largest
/// absolute value is treated as constant (std recorded as `0.0`).
///
/// The threshold scales with the column: a legitimately tiny-scale
/// column (say values around `1e-15`) keeps its standard deviation,
/// while a large-scale column whose spread is pure floating-point
/// rounding noise (std/|max| below ~1e-12, the double-precision noise
/// floor with margin) is clamped to constant.
pub const RELATIVE_STD_FLOOR: f64 = 1e-12;

/// Streaming per-column mean/variance accumulator (Welford's one-pass
/// algorithm), plus the per-column maximum absolute value used for the
/// relative constant-column clamp.
///
/// # Examples
///
/// ```
/// use phaselab_stats::RunningColumnStats;
///
/// let mut acc = RunningColumnStats::new(1);
/// for v in [1.0, 2.0, 3.0] {
///     acc.push(&[v]);
/// }
/// let stats = acc.finalize();
/// assert!((stats.means[0] - 2.0).abs() < 1e-12);
/// assert!((stats.stds[0] - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunningColumnStats {
    count: u64,
    means: Vec<f64>,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: Vec<f64>,
    max_abs: Vec<f64>,
}

impl RunningColumnStats {
    /// An empty accumulator over `cols` columns.
    pub fn new(cols: usize) -> Self {
        RunningColumnStats {
            count: 0,
            means: vec![0.0; cols],
            m2: vec![0.0; cols],
            max_abs: vec![0.0; cols],
        }
    }

    /// Number of columns tracked.
    pub fn cols(&self) -> usize {
        self.means.len()
    }

    /// Number of rows consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Consumes one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not have [`cols`](Self::cols) entries.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols(), "row length mismatch");
        self.count += 1;
        let n = self.count as f64;
        for (j, &v) in row.iter().enumerate() {
            let delta = v - self.means[j];
            self.means[j] += delta / n;
            self.m2[j] += delta * (v - self.means[j]);
            let a = v.abs();
            if a > self.max_abs[j] {
                self.max_abs[j] = a;
            }
        }
    }

    /// Absorbs another accumulator over the same columns (Chan et al.'s
    /// pairwise update), as if `other`'s rows had been pushed after this
    /// one's.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.cols(), other.cols(), "column count mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        for j in 0..self.cols() {
            let delta = other.means[j] - self.means[j];
            self.means[j] += delta * (nb / n);
            self.m2[j] += other.m2[j] + delta * delta * (na * nb / n);
            if other.max_abs[j] > self.max_abs[j] {
                self.max_abs[j] = other.max_abs[j];
            }
        }
        self.count += other.count;
    }

    /// The finished per-column statistics.
    ///
    /// Sample standard deviations use `/(n-1)`; with fewer than two rows
    /// every std is `0.0`. A non-finite std, or one at or below
    /// [`RELATIVE_STD_FLOOR`] times the column's largest absolute value,
    /// is clamped to `0.0` (the column is treated as constant).
    pub fn finalize(&self) -> ColumnStats {
        let mut stds = vec![0.0; self.cols()];
        if self.count >= 2 {
            let denom = (self.count - 1) as f64;
            for (j, s) in stds.iter_mut().enumerate() {
                *s = (self.m2[j] / denom).sqrt();
                if !s.is_finite() || *s <= RELATIVE_STD_FLOOR * self.max_abs[j] {
                    *s = 0.0;
                }
            }
        }
        ColumnStats {
            means: self.means.clone(),
            stds,
        }
    }
}

/// Streaming covariance accumulator: one-pass running means plus the
/// co-moment matrix, `O(cols²)` memory regardless of row count.
///
/// # Examples
///
/// ```
/// use phaselab_stats::{Matrix, RunningCovariance};
///
/// let rows = [vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]];
/// let mut acc = RunningCovariance::new(2);
/// for row in &rows {
///     acc.push(row);
/// }
/// let cov = acc.covariance();
/// let two_pass = Matrix::from_rows(&rows).covariance();
/// assert!((cov.get(0, 1) - two_pass.get(0, 1)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunningCovariance {
    count: u64,
    means: Vec<f64>,
    /// Upper-triangular co-moment sums `Σ (x_i - μ_i)(x_j - μ_j)`,
    /// stored in a full matrix (lower triangle unused until
    /// [`covariance`](Self::covariance) mirrors it).
    comoment: Matrix,
    /// Scratch: deviations from the pre-update means.
    delta_old: Vec<f64>,
}

impl RunningCovariance {
    /// An empty accumulator over `cols` columns.
    pub fn new(cols: usize) -> Self {
        RunningCovariance {
            count: 0,
            means: vec![0.0; cols],
            comoment: Matrix::zeros(cols, cols),
            delta_old: vec![0.0; cols],
        }
    }

    /// Number of columns tracked.
    pub fn cols(&self) -> usize {
        self.means.len()
    }

    /// Number of rows consumed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The running column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Consumes one row: Welford mean update plus the pairwise co-moment
    /// update `C_ij += (x_i - μ_i^old)(x_j - μ_j^new)`.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not have [`cols`](Self::cols) entries.
    pub fn push(&mut self, row: &[f64]) {
        assert_eq!(row.len(), self.cols(), "row length mismatch");
        self.count += 1;
        let n = self.count as f64;
        for (j, &v) in row.iter().enumerate() {
            self.delta_old[j] = v - self.means[j];
            self.means[j] += self.delta_old[j] / n;
        }
        for i in 0..self.cols() {
            if self.delta_old[i] == 0.0 {
                continue;
            }
            let di = self.delta_old[i];
            let crow = self.comoment.row_mut(i);
            for (j, c) in crow.iter_mut().enumerate().skip(i) {
                *c += di * (row[j] - self.means[j]);
            }
        }
    }

    /// Absorbs another accumulator over the same columns (Chan et al.):
    /// `C_AB = C_A + C_B + (n_A n_B / n)(μ_A - μ_B)(μ_A - μ_B)ᵀ`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.cols(), other.cols(), "column count mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        let scale = na * nb / n;
        for j in 0..self.cols() {
            self.delta_old[j] = other.means[j] - self.means[j];
        }
        for i in 0..self.cols() {
            let di = self.delta_old[i];
            for j in i..self.cols() {
                let cross = scale * di * self.delta_old[j];
                let v = self.comoment.get(i, j) + other.comoment.get(i, j) + cross;
                self.comoment.set(i, j, v);
            }
        }
        for j in 0..self.cols() {
            self.means[j] += self.delta_old[j] * (nb / n);
        }
        self.count += other.count;
    }

    /// The sample covariance matrix (`/(n-1)`), mirrored to full
    /// symmetry.
    ///
    /// # Panics
    ///
    /// Panics with fewer than two rows consumed — a covariance over one
    /// observation is undefined, exactly like
    /// [`Matrix::covariance`](crate::Matrix::covariance).
    pub fn covariance(&self) -> Matrix {
        assert!(self.count >= 2, "covariance needs at least two rows");
        let denom = (self.count - 1) as f64;
        let d = self.cols();
        let mut cov = Matrix::zeros(d, d);
        for i in 0..d {
            for j in i..d {
                let v = self.comoment.get(i, j) / denom;
                cov.set(i, j, v);
                cov.set(j, i, v);
            }
        }
        cov
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows3() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 10.0, -3.0],
            vec![2.0, 30.0, 0.5],
            vec![4.0, 20.0, 2.5],
            vec![8.0, 40.0, -1.5],
            vec![16.0, 25.0, 4.0],
        ]
    }

    #[test]
    fn welford_matches_two_pass_closely() {
        let rows = rows3();
        let m = Matrix::from_rows(&rows);
        let mut acc = RunningColumnStats::new(3);
        for r in &rows {
            acc.push(r);
        }
        let stats = acc.finalize();
        let means = m.column_means();
        for j in 0..3 {
            assert!((stats.means[j] - means[j]).abs() < 1e-12);
            let var: f64 = rows
                .iter()
                .map(|r| (r[j] - means[j]) * (r[j] - means[j]))
                .sum::<f64>()
                / (rows.len() - 1) as f64;
            assert!((stats.stds[j] - var.sqrt()).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_equals_sequential_push() {
        let rows = rows3();
        let mut whole = RunningColumnStats::new(3);
        for r in &rows {
            whole.push(r);
        }
        let mut left = RunningColumnStats::new(3);
        let mut right = RunningColumnStats::new(3);
        for r in &rows[..2] {
            left.push(r);
        }
        for r in &rows[2..] {
            right.push(r);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        let (a, b) = (left.finalize(), whole.finalize());
        for j in 0..3 {
            assert!((a.means[j] - b.means[j]).abs() < 1e-12);
            assert!((a.stds[j] - b.stds[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let rows = rows3();
        let mut acc = RunningColumnStats::new(3);
        for r in &rows {
            acc.push(r);
        }
        let baseline = acc.clone();
        acc.merge(&RunningColumnStats::new(3));
        assert_eq!(acc, baseline);
        let mut empty = RunningColumnStats::new(3);
        empty.merge(&baseline);
        assert_eq!(empty, baseline);
    }

    #[test]
    fn covariance_matches_two_pass_closely() {
        let rows = rows3();
        let two_pass = Matrix::from_rows(&rows).covariance();
        let mut acc = RunningCovariance::new(3);
        for r in &rows {
            acc.push(r);
        }
        let cov = acc.covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (cov.get(i, j) - two_pass.get(i, j)).abs() < 1e-10,
                    "cov[{i}][{j}]"
                );
            }
        }
    }

    #[test]
    fn covariance_merge_equals_sequential_push() {
        let rows = rows3();
        let mut whole = RunningCovariance::new(3);
        for r in &rows {
            whole.push(r);
        }
        let mut left = RunningCovariance::new(3);
        let mut right = RunningCovariance::new(3);
        for r in &rows[..3] {
            left.push(r);
        }
        for r in &rows[3..] {
            right.push(r);
        }
        left.merge(&right);
        let (a, b) = (left.covariance(), whole.covariance());
        for i in 0..3 {
            for j in 0..3 {
                assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn covariance_is_symmetric() {
        let rows = rows3();
        let mut acc = RunningCovariance::new(3);
        for r in &rows {
            acc.push(r);
        }
        let cov = acc.covariance();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(cov.get(i, j).to_bits(), cov.get(j, i).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two rows")]
    fn covariance_needs_two_rows() {
        let mut acc = RunningCovariance::new(2);
        acc.push(&[1.0, 2.0]);
        let _ = acc.covariance();
    }

    #[test]
    fn tiny_scale_columns_keep_their_std() {
        // Regression: the old absolute 1e-12 clamp zeroed this column.
        let mut acc = RunningColumnStats::new(1);
        for v in [1e-15, 2e-15, 3e-15] {
            acc.push(&[v]);
        }
        let stats = acc.finalize();
        assert!(stats.stds[0] > 0.0, "tiny-scale spread must survive");
    }

    #[test]
    fn large_scale_noise_columns_are_clamped() {
        // Spread of ~1e-4 on a 1e12-scale column is rounding noise
        // (relative spread ~1e-16, below the 1e-12 floor).
        let mut acc = RunningColumnStats::new(1);
        for v in [1e12, 1e12 + 1.0e-4, 1e12 - 1.0e-4] {
            acc.push(&[v]);
        }
        let stats = acc.finalize();
        assert_eq!(stats.stds[0], 0.0, "noise-level spread must clamp");
    }
}
