//! Block-level trace consumption: batched observation of straight-line
//! instruction runs.
//!
//! The per-instruction [`TraceSink`] interface reports every dynamic
//! instruction individually — faithful but expensive at characterization
//! scale. A block-compiled execution engine instead emits one
//! [`BlockRecord`] per executed basic-block run: the static per-instruction
//! templates ([`BlockInst`], pre-decoded once per program), the dynamic
//! memory-address batch, a precomputed [`BlockSummary`] (per-class
//! instruction counts, register-traffic and memory-traffic totals), and at
//! most one branch outcome at the block exit. Aggregate observers like
//! [`SummarySink`] consume the summary in O(1) per block instead of O(1)
//! per instruction — that fusion is where the block engine's observation
//! speedup comes from.
//!
//! The information content is identical to the per-instruction stream:
//! [`BlockRecord::records`] reconstructs the exact [`InstRecord`] sequence,
//! and [`BlockToInstAdapter`] uses that to drive any legacy [`TraceSink`].
//! Differential tests rely on this equivalence to hold bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use phaselab_trace::{
//!     ArchReg, BlockInst, BlockRecord, BlockSink, BlockSummary, CountingBlockSink, InstClass,
//!     RegReads,
//! };
//!
//! let insts = [
//!     BlockInst::new(0x40, InstClass::IntAdd),
//!     BlockInst::new(0x44, InstClass::CondBranch),
//! ];
//! let summary = BlockSummary::of(&insts);
//! let rec = BlockRecord::new(&insts, &[], &summary, None);
//! let mut sink = CountingBlockSink::new();
//! sink.observe_block(&rec);
//! assert_eq!(sink.blocks(), 1);
//! assert_eq!(sink.instructions(), 2);
//! ```

use crate::record::{
    ArchReg, BranchInfo, InstClass, InstRecord, MemAccess, RegReads, NUM_INST_CLASSES,
};
use crate::sink::TraceSink;

/// The static memory-access shape of one instruction: everything about the
/// access except the effective address, which is dynamic and carried in the
/// owning [`BlockRecord`]'s address batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// The static observation template of one instruction inside a basic
/// block: every field of an [`InstRecord`] that is known at decode time.
///
/// A block-compiled engine builds one `BlockInst` per static instruction
/// when the program is compiled, then reuses the templates for every
/// dynamic execution of the block. Only effective memory addresses and the
/// block-exit branch outcome vary per execution; those travel in the
/// [`BlockRecord`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockInst {
    /// Program counter (byte address of the instruction).
    pub pc: u64,
    /// Behavioral class.
    pub class: InstClass,
    /// Registers read (up to three).
    pub reads: RegReads,
    /// Destination register, if any.
    pub write: Option<ArchReg>,
    /// Memory-access shape, if this instruction accesses memory.
    pub mem: Option<MemRef>,
}

impl BlockInst {
    /// Creates a template with no operands and no memory access.
    #[inline]
    pub fn new(pc: u64, class: InstClass) -> Self {
        BlockInst {
            pc,
            class,
            reads: RegReads::EMPTY,
            write: None,
            mem: None,
        }
    }

    /// Sets the registers read.
    ///
    /// # Panics
    ///
    /// Panics if `regs` has more than three elements.
    #[inline]
    pub fn with_reads(mut self, regs: &[ArchReg]) -> Self {
        self.reads = RegReads::from_slice(regs);
        self
    }

    /// Sets the destination register.
    #[inline]
    pub fn with_write(mut self, reg: ArchReg) -> Self {
        self.write = Some(reg);
        self
    }

    /// Sets the memory-access shape.
    #[inline]
    pub fn with_mem(mut self, mem: MemRef) -> Self {
        self.mem = Some(mem);
        self
    }
}

/// Precomputed aggregate observation of one straight-line template run:
/// per-class instruction counts plus register- and memory-traffic totals.
///
/// A block-compiled engine computes one summary per *static* block at
/// program-compile time and reuses it for every dynamic execution, so an
/// aggregate observer pays O(1) per dispatched block for figures that cost
/// O(instructions) through the per-instruction interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// Instruction count per [`InstClass`].
    pub class_counts: [u32; NUM_INST_CLASSES],
    /// Total register reads.
    pub reg_reads: u32,
    /// Total register writes.
    pub reg_writes: u32,
    /// Total bytes moved by memory accesses.
    pub mem_bytes: u64,
}

impl BlockSummary {
    /// Summarizes a template slice (producers cache this per static block;
    /// partially executed blocks summarize their executed prefix).
    pub fn of(insts: &[BlockInst]) -> Self {
        let mut s = BlockSummary {
            class_counts: [0; NUM_INST_CLASSES],
            reg_reads: 0,
            reg_writes: 0,
            mem_bytes: 0,
        };
        for inst in insts {
            s.class_counts[inst.class.index()] += 1;
            s.reg_reads += inst.reads.len() as u32;
            s.reg_writes += u32::from(inst.write.is_some());
            if let Some(m) = inst.mem {
                s.mem_bytes += u64::from(m.size);
            }
        }
        s
    }
}

/// One executed straight-line instruction run, observed as a batch.
///
/// The record borrows the engine's pre-decoded templates and its per-run
/// scratch buffers, so emitting a block allocates nothing. Invariants the
/// producer must uphold (and [`records`](BlockRecord::records) assumes):
///
/// * `mem_addrs` holds one effective address per template with a `mem`
///   shape, in program order;
/// * `summary` summarizes exactly the instructions in `insts`;
/// * `branch`, when present, is the outcome of the **last** instruction —
///   blocks cut short by a budget pause or a fault carry `branch: None`
///   because their terminator did not execute.
#[derive(Debug, Clone, Copy)]
pub struct BlockRecord<'a> {
    /// Static per-instruction templates, in program order.
    pub insts: &'a [BlockInst],
    /// Effective addresses of the block's memory accesses, in program
    /// order (one entry per template with a `mem` shape).
    pub mem_addrs: &'a [u64],
    /// Precomputed aggregates over `insts`.
    pub summary: &'a BlockSummary,
    /// Branch outcome at block exit, if the block's terminator executed
    /// and transfers control.
    pub branch: Option<BranchInfo>,
}

impl<'a> BlockRecord<'a> {
    /// Creates a record over pre-summarized templates.
    #[inline]
    pub fn new(
        insts: &'a [BlockInst],
        mem_addrs: &'a [u64],
        summary: &'a BlockSummary,
        branch: Option<BranchInfo>,
    ) -> Self {
        debug_assert_eq!(
            mem_addrs.len(),
            insts.iter().filter(|i| i.mem.is_some()).count(),
            "one effective address per memory template"
        );
        debug_assert_eq!(
            *summary,
            BlockSummary::of(insts),
            "summary must describe exactly this template run"
        );
        BlockRecord {
            insts,
            mem_addrs,
            summary,
            branch,
        }
    }

    /// Instruction count per [`InstClass`], summed over `insts`.
    #[inline]
    pub fn class_counts(&self) -> &[u32; NUM_INST_CLASSES] {
        &self.summary.class_counts
    }

    /// Number of instructions in the block.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the block is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Total register reads across the block.
    #[inline]
    pub fn reg_reads(&self) -> u64 {
        u64::from(self.summary.reg_reads)
    }

    /// Total register writes across the block.
    #[inline]
    pub fn reg_writes(&self) -> u64 {
        u64::from(self.summary.reg_writes)
    }

    /// Reconstructs the per-instruction records of this block, in program
    /// order — exactly the sequence a per-instruction engine would have
    /// reported to a [`TraceSink`].
    pub fn records(&self) -> impl Iterator<Item = InstRecord> + '_ {
        let last = self.insts.len().wrapping_sub(1);
        let mut mem_cursor = 0usize;
        self.insts.iter().enumerate().map(move |(i, inst)| {
            let mem = inst.mem.map(|m| {
                let addr = self.mem_addrs[mem_cursor];
                mem_cursor += 1;
                MemAccess {
                    addr,
                    size: m.size,
                    is_store: m.is_store,
                }
            });
            InstRecord {
                pc: inst.pc,
                class: inst.class,
                reads: inst.reads,
                write: inst.write,
                mem,
                branch: if i == last { self.branch } else { None },
            }
        })
    }
}

/// A consumer of block-batched instruction runs.
///
/// The block-compiled execution engine calls
/// [`observe_block`](BlockSink::observe_block) once per executed
/// straight-line run, in program order. A block that is cut short (by a
/// budget pause or a fault) is reported as the prefix that actually
/// executed.
pub trait BlockSink {
    /// Observes one executed instruction run.
    fn observe_block(&mut self, block: &BlockRecord<'_>);

    /// Called once when the traced execution finishes.
    ///
    /// The default implementation does nothing.
    fn finish(&mut self) {}
}

impl<S: BlockSink + ?Sized> BlockSink for &mut S {
    #[inline]
    fn observe_block(&mut self, block: &BlockRecord<'_>) {
        (**self).observe_block(block);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// A block sink that counts dispatched blocks and executed instructions.
///
/// The two counts separate dispatch overhead (one per block) from executed
/// work (one per instruction) — the block-engine analogue of
/// [`CountingSink`](crate::CountingSink).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingBlockSink {
    blocks: u64,
    instructions: u64,
}

impl CountingBlockSink {
    /// Creates a sink with zero counts.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blocks observed so far.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Number of instructions observed so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }
}

impl BlockSink for CountingBlockSink {
    #[inline]
    fn observe_block(&mut self, block: &BlockRecord<'_>) {
        self.blocks += 1;
        self.instructions += block.len() as u64;
    }
}

/// An aggregate observer of the MICA suite-level totals: instruction mix,
/// register traffic, memory traffic and taken-branch count.
///
/// It implements both observation interfaces, and the two paths are
/// guaranteed to produce identical totals for the same execution — but
/// their costs differ structurally. Through [`TraceSink`] every field is
/// accumulated per instruction; through [`BlockSink`] the precomputed
/// [`BlockSummary`] is folded in with a handful of additions per
/// *block*. This sink is the benchmark's reference observer for measuring
/// that fusion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummarySink {
    /// Executed instructions per class.
    pub class_counts: [u64; NUM_INST_CLASSES],
    /// Total register reads.
    pub reg_reads: u64,
    /// Total register writes.
    pub reg_writes: u64,
    /// Total memory accesses.
    pub mem_accesses: u64,
    /// Total bytes moved by memory accesses.
    pub mem_bytes: u64,
    /// Control transfers whose branch was taken.
    pub taken_branches: u64,
}

impl SummarySink {
    /// Creates a sink with zero totals.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total executed instructions (sum over all classes).
    pub fn instructions(&self) -> u64 {
        self.class_counts.iter().sum()
    }
}

impl TraceSink for SummarySink {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        self.class_counts[rec.class.index()] += 1;
        self.reg_reads += rec.reads.len() as u64;
        self.reg_writes += u64::from(rec.write.is_some());
        if let Some(m) = rec.mem {
            self.mem_accesses += 1;
            self.mem_bytes += u64::from(m.size);
        }
        if let Some(b) = rec.branch {
            self.taken_branches += u64::from(b.taken);
        }
    }
}

impl BlockSink for SummarySink {
    #[inline]
    fn observe_block(&mut self, block: &BlockRecord<'_>) {
        let s = block.summary;
        for (total, &c) in self.class_counts.iter_mut().zip(&s.class_counts) {
            *total += u64::from(c);
        }
        self.reg_reads += u64::from(s.reg_reads);
        self.reg_writes += u64::from(s.reg_writes);
        self.mem_accesses += block.mem_addrs.len() as u64;
        self.mem_bytes += s.mem_bytes;
        if let Some(b) = block.branch {
            self.taken_branches += u64::from(b.taken);
        }
    }
}

/// The oracle shim: adapts block records back into per-instruction
/// records and forwards them to a legacy [`TraceSink`].
///
/// This is the bridge the differential tests are built on — for any
/// execution, driving a sink through this adapter from the block engine
/// must produce exactly the record sequence the per-instruction
/// interpreter would have produced.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{
///     BlockInst, BlockRecord, BlockSink, BlockSummary, BlockToInstAdapter, InstClass, VecSink,
/// };
///
/// let insts = [BlockInst::new(0x40, InstClass::Nop)];
/// let summary = BlockSummary::of(&insts);
/// let mut shim = BlockToInstAdapter::new(VecSink::new());
/// shim.observe_block(&BlockRecord::new(&insts, &[], &summary, None));
/// assert_eq!(shim.into_inner().records().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockToInstAdapter<S> {
    inner: S,
}

impl<S: TraceSink> BlockToInstAdapter<S> {
    /// Creates an adapter over a per-instruction sink.
    pub fn new(inner: S) -> Self {
        BlockToInstAdapter { inner }
    }

    /// A shared reference to the wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Consumes the adapter and returns the wrapped sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSink> BlockSink for BlockToInstAdapter<S> {
    #[inline]
    fn observe_block(&mut self, block: &BlockRecord<'_>) {
        for rec in block.records() {
            self.inner.observe(&rec);
        }
    }

    fn finish(&mut self) {
        self.inner.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;

    fn sample_block() -> ([BlockInst; 3], Vec<u64>) {
        let insts = [
            BlockInst::new(0x40, InstClass::MemRead)
                .with_reads(&[ArchReg::int(2)])
                .with_write(ArchReg::int(3))
                .with_mem(MemRef {
                    size: 8,
                    is_store: false,
                }),
            BlockInst::new(0x44, InstClass::IntAdd)
                .with_reads(&[ArchReg::int(3), ArchReg::int(4)])
                .with_write(ArchReg::int(3)),
            BlockInst::new(0x48, InstClass::CondBranch)
                .with_reads(&[ArchReg::int(3), ArchReg::int(5)]),
        ];
        (insts, vec![0x1000])
    }

    #[test]
    fn records_reconstruct_in_order() {
        let (insts, addrs) = sample_block();
        let summary = BlockSummary::of(&insts);
        let branch = BranchInfo {
            taken: true,
            target: 0x40,
            conditional: true,
        };
        let block = BlockRecord::new(&insts, &addrs, &summary, Some(branch));
        let recs: Vec<InstRecord> = block.records().collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].mem.unwrap().addr, 0x1000);
        assert!(!recs[0].mem.unwrap().is_store);
        assert_eq!(recs[1].mem, None);
        assert_eq!(recs[0].branch, None);
        assert_eq!(recs[2].branch, Some(branch));
        assert_eq!(recs[2].reads.len(), 2);
    }

    #[test]
    fn class_counts_sum_to_len() {
        let (insts, _) = sample_block();
        let summary = BlockSummary::of(&insts);
        assert_eq!(
            summary.class_counts.iter().sum::<u32>() as usize,
            insts.len()
        );
        assert_eq!(summary.class_counts[InstClass::MemRead.index()], 1);
        assert_eq!(summary.class_counts[InstClass::CondBranch.index()], 1);
    }

    #[test]
    fn reg_traffic_summary() {
        let (insts, addrs) = sample_block();
        let summary = BlockSummary::of(&insts);
        let block = BlockRecord::new(&insts, &addrs, &summary, None);
        assert_eq!(block.reg_reads(), 5);
        assert_eq!(block.reg_writes(), 2);
    }

    #[test]
    fn counting_block_sink_separates_dispatch_from_work() {
        let (insts, addrs) = sample_block();
        let summary = BlockSummary::of(&insts);
        let block = BlockRecord::new(&insts, &addrs, &summary, None);
        let mut sink = CountingBlockSink::new();
        sink.observe_block(&block);
        sink.observe_block(&block);
        assert_eq!(sink.blocks(), 2);
        assert_eq!(sink.instructions(), 6);
    }

    #[test]
    fn adapter_forwards_every_record() {
        let (insts, addrs) = sample_block();
        let summary = BlockSummary::of(&insts);
        let block = BlockRecord::new(&insts, &addrs, &summary, None);
        let mut shim = BlockToInstAdapter::new(VecSink::new());
        shim.observe_block(&block);
        shim.finish();
        let recs = shim.into_inner().into_records();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].pc, 0x40);
        assert_eq!(recs[2].pc, 0x48);
    }

    #[test]
    fn sink_usable_through_mut_ref() {
        fn feed(mut sink: impl BlockSink) {
            let insts = [BlockInst::new(0, InstClass::Nop)];
            let summary = BlockSummary::of(&insts);
            sink.observe_block(&BlockRecord::new(&insts, &[], &summary, None));
        }
        let mut s = CountingBlockSink::new();
        feed(&mut s);
        assert_eq!(s.blocks(), 1);
    }
}
