//! Dynamic instruction stream model for `phaselab`.
//!
//! This crate defines the observation interface between an execution engine
//! (the `phaselab-vm` interpreter, standing in for a dynamic binary
//! instrumentation tool such as Pin) and analysis tools (the
//! `phaselab-mica` characterizer, standing in for the MICA Pin tool used
//! by Hoste & Eeckhout, ISPASS 2008).
//!
//! The central type is [`InstRecord`]: one dynamically executed instruction,
//! described exactly as far as a microarchitecture-independent analysis
//! needs — program counter, instruction class, register operands, memory
//! access, and branch outcome. Analysis tools implement [`TraceSink`] and
//! receive records in program order.
//!
//! # Examples
//!
//! ```
//! use phaselab_trace::{CountingSink, InstClass, InstRecord, TraceSink};
//!
//! let mut sink = CountingSink::new();
//! sink.observe(&InstRecord::new(0x1000, InstClass::IntAdd));
//! sink.observe(&InstRecord::new(0x1004, InstClass::Nop));
//! assert_eq!(sink.count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod record;
mod serialize;
mod sink;

pub use block::{
    BlockInst, BlockRecord, BlockSink, BlockSummary, BlockToInstAdapter, CountingBlockSink, MemRef,
    SummarySink,
};
pub use record::{
    ArchReg, BranchInfo, InstClass, InstRecord, MemAccess, RegReads, NUM_ARCH_REGS,
    NUM_INST_CLASSES,
};
pub use serialize::{replay, ReplayError, TraceWriter};
pub use sink::{ClassHistogram, CountingSink, TeeSink, TraceSink, VecSink};
