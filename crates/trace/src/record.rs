//! The per-instruction observation record and its component types.

/// Number of architectural registers visible to analysis tools.
///
/// The `phaselab` machine model has 32 integer registers (ids `0..32`) and
/// 32 floating-point registers (ids `32..64`), unified into a single
/// architectural register file for dependence analysis.
pub const NUM_ARCH_REGS: usize = 64;

/// Number of [`InstClass`] variants.
///
/// This matches the instruction-mix category count of the characterization
/// (20 categories, see `phaselab-mica`).
pub const NUM_INST_CLASSES: usize = 20;

/// An architectural register id in the unified register file.
///
/// Integer registers occupy ids `0..32`, floating-point registers ids
/// `32..64`. The unified numbering lets dependence-tracking analyses (ILP,
/// register traffic) treat both files uniformly.
///
/// # Examples
///
/// ```
/// use phaselab_trace::ArchReg;
///
/// let r = ArchReg::int(5);
/// assert!(r.is_int());
/// let f = ArchReg::fp(5);
/// assert_eq!(f.index(), 37);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArchReg(u8);

impl ArchReg {
    /// Creates an integer register id.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn int(n: u8) -> Self {
        assert!(n < 32, "integer register id {n} out of range");
        ArchReg(n)
    }

    /// Creates a floating-point register id.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub fn fp(n: u8) -> Self {
        assert!(n < 32, "fp register id {n} out of range");
        ArchReg(32 + n)
    }

    /// Returns the unified register file index, in `0..NUM_ARCH_REGS`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this id names an integer register.
    #[inline]
    pub fn is_int(self) -> bool {
        self.0 < 32
    }

    /// Returns `true` if this id names a floating-point register.
    #[inline]
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }
}

impl std::fmt::Display for ArchReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_int() {
            write!(f, "r{}", self.0)
        } else {
            write!(f, "f{}", self.0 - 32)
        }
    }
}

/// The behavioral class of a dynamic instruction.
///
/// These are the 20 instruction-mix categories of the characterization.
/// Every dynamic instruction belongs to exactly one class; memory
/// instructions are classified as memory accesses regardless of the
/// register file they target, matching the MICA convention of counting
/// "percentage memory reads / memory writes" as top-level mix categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum InstClass {
    /// Memory read (integer or floating-point load).
    MemRead = 0,
    /// Memory write (integer or floating-point store).
    MemWrite,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct or indirect jump.
    Jump,
    /// Call (direct or indirect).
    Call,
    /// Return.
    Ret,
    /// Integer addition or subtraction.
    IntAdd,
    /// Integer multiply.
    IntMul,
    /// Integer divide or remainder.
    IntDiv,
    /// Bitwise logical operation (and/or/xor/not).
    Logical,
    /// Shift or rotate.
    Shift,
    /// Integer or floating-point comparison producing a flag/register.
    Compare,
    /// Register move or immediate load.
    Mov,
    /// Conversion between integer and floating point.
    Convert,
    /// Floating-point addition or subtraction.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide.
    FpDiv,
    /// Other floating-point operation (sqrt, min/max, abs, neg).
    FpOther,
    /// No-operation.
    Nop,
    /// Anything else (halts, fences, system operations).
    Other,
}

impl InstClass {
    /// All classes, in discriminant order.
    pub const ALL: [InstClass; NUM_INST_CLASSES] = [
        InstClass::MemRead,
        InstClass::MemWrite,
        InstClass::CondBranch,
        InstClass::Jump,
        InstClass::Call,
        InstClass::Ret,
        InstClass::IntAdd,
        InstClass::IntMul,
        InstClass::IntDiv,
        InstClass::Logical,
        InstClass::Shift,
        InstClass::Compare,
        InstClass::Mov,
        InstClass::Convert,
        InstClass::FpAdd,
        InstClass::FpMul,
        InstClass::FpDiv,
        InstClass::FpOther,
        InstClass::Nop,
        InstClass::Other,
    ];

    /// Returns the dense index of this class, in `0..NUM_INST_CLASSES`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns a short lowercase name for the class (e.g. `"mem_read"`).
    pub fn name(self) -> &'static str {
        match self {
            InstClass::MemRead => "mem_read",
            InstClass::MemWrite => "mem_write",
            InstClass::CondBranch => "cond_branch",
            InstClass::Jump => "jump",
            InstClass::Call => "call",
            InstClass::Ret => "ret",
            InstClass::IntAdd => "int_add",
            InstClass::IntMul => "int_mul",
            InstClass::IntDiv => "int_div",
            InstClass::Logical => "logical",
            InstClass::Shift => "shift",
            InstClass::Compare => "compare",
            InstClass::Mov => "mov",
            InstClass::Convert => "convert",
            InstClass::FpAdd => "fp_add",
            InstClass::FpMul => "fp_mul",
            InstClass::FpDiv => "fp_div",
            InstClass::FpOther => "fp_other",
            InstClass::Nop => "nop",
            InstClass::Other => "other",
        }
    }

    /// Returns `true` for classes that transfer control (branches, jumps,
    /// calls, returns).
    #[inline]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch | InstClass::Jump | InstClass::Call | InstClass::Ret
        )
    }

    /// Returns `true` for memory-access classes.
    #[inline]
    pub fn is_memory(self) -> bool {
        matches!(self, InstClass::MemRead | InstClass::MemWrite)
    }
}

impl std::fmt::Display for InstClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The set of registers read by one instruction (at most three).
///
/// Stored inline to keep [`InstRecord`] allocation-free on the hot
/// observation path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegReads {
    regs: [u8; 3],
    len: u8,
}

impl RegReads {
    /// An empty read set.
    pub const EMPTY: RegReads = RegReads {
        regs: [0; 3],
        len: 0,
    };

    /// Creates an empty read set.
    #[inline]
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a read set from a slice of registers.
    ///
    /// # Panics
    ///
    /// Panics if `regs` has more than three elements.
    pub fn from_slice(regs: &[ArchReg]) -> Self {
        assert!(regs.len() <= 3, "at most 3 register reads per instruction");
        let mut r = Self::new();
        for &reg in regs {
            r.push(reg);
        }
        r
    }

    /// Appends a register to the read set.
    ///
    /// # Panics
    ///
    /// Panics if the set already holds three registers.
    #[inline]
    pub fn push(&mut self, reg: ArchReg) {
        assert!(self.len < 3, "at most 3 register reads per instruction");
        self.regs[self.len as usize] = reg.0;
        self.len += 1;
    }

    /// Number of registers read.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no registers are read.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the registers read.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.regs[..self.len as usize].iter().map(|&r| ArchReg(r))
    }
}

impl FromIterator<ArchReg> for RegReads {
    fn from_iter<T: IntoIterator<Item = ArchReg>>(iter: T) -> Self {
        let mut r = Self::new();
        for reg in iter {
            r.push(reg);
        }
        r
    }
}

/// One memory access performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Byte address of the access.
    pub addr: u64,
    /// Access size in bytes (1, 2, 4 or 8).
    pub size: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Outcome of a control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// `true` if the branch/jump was taken. Unconditional transfers are
    /// always taken.
    pub taken: bool,
    /// Byte address of the (taken) target.
    pub target: u64,
    /// `true` for conditional branches, `false` for unconditional
    /// jumps/calls/returns.
    pub conditional: bool,
}

/// One dynamically executed instruction, as observed by a [`TraceSink`].
///
/// This is the complete microarchitecture-independent view of an
/// instruction: everything the MICA-style characterization in
/// `phaselab-mica` consumes, and nothing more.
///
/// [`TraceSink`]: crate::TraceSink
///
/// # Examples
///
/// ```
/// use phaselab_trace::{ArchReg, InstClass, InstRecord, MemAccess};
///
/// let rec = InstRecord::new(0x40, InstClass::MemRead)
///     .with_reads(&[ArchReg::int(3)])
///     .with_write(ArchReg::int(4))
///     .with_mem(MemAccess { addr: 0x1000, size: 8, is_store: false });
/// assert_eq!(rec.pc, 0x40);
/// assert!(rec.mem.is_some());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstRecord {
    /// Program counter (byte address of the instruction).
    pub pc: u64,
    /// Behavioral class.
    pub class: InstClass,
    /// Registers read (up to three).
    pub reads: RegReads,
    /// Destination register, if any.
    pub write: Option<ArchReg>,
    /// Memory access, if any.
    pub mem: Option<MemAccess>,
    /// Branch outcome, if this is a control-transfer instruction.
    pub branch: Option<BranchInfo>,
}

impl InstRecord {
    /// Creates a record with no operands, memory access or branch outcome.
    #[inline]
    pub fn new(pc: u64, class: InstClass) -> Self {
        InstRecord {
            pc,
            class,
            reads: RegReads::EMPTY,
            write: None,
            mem: None,
            branch: None,
        }
    }

    /// Sets the registers read.
    ///
    /// # Panics
    ///
    /// Panics if `regs` has more than three elements.
    #[inline]
    pub fn with_reads(mut self, regs: &[ArchReg]) -> Self {
        self.reads = RegReads::from_slice(regs);
        self
    }

    /// Sets the destination register.
    #[inline]
    pub fn with_write(mut self, reg: ArchReg) -> Self {
        self.write = Some(reg);
        self
    }

    /// Sets the memory access.
    #[inline]
    pub fn with_mem(mut self, mem: MemAccess) -> Self {
        self.mem = Some(mem);
        self
    }

    /// Sets the branch outcome.
    #[inline]
    pub fn with_branch(mut self, branch: BranchInfo) -> Self {
        self.branch = Some(branch);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arch_reg_unified_numbering() {
        assert_eq!(ArchReg::int(0).index(), 0);
        assert_eq!(ArchReg::int(31).index(), 31);
        assert_eq!(ArchReg::fp(0).index(), 32);
        assert_eq!(ArchReg::fp(31).index(), 63);
    }

    #[test]
    fn arch_reg_kind_predicates() {
        assert!(ArchReg::int(7).is_int());
        assert!(!ArchReg::int(7).is_fp());
        assert!(ArchReg::fp(7).is_fp());
        assert!(!ArchReg::fp(7).is_int());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_int_range_checked() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_fp_range_checked() {
        let _ = ArchReg::fp(32);
    }

    #[test]
    fn arch_reg_display() {
        assert_eq!(ArchReg::int(3).to_string(), "r3");
        assert_eq!(ArchReg::fp(3).to_string(), "f3");
    }

    #[test]
    fn inst_class_indices_are_dense_and_unique() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        assert_eq!(InstClass::ALL.len(), NUM_INST_CLASSES);
    }

    #[test]
    fn inst_class_names_are_unique() {
        let mut names: Vec<&str> = InstClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_INST_CLASSES);
    }

    #[test]
    fn inst_class_predicates() {
        assert!(InstClass::CondBranch.is_control());
        assert!(InstClass::Ret.is_control());
        assert!(!InstClass::IntAdd.is_control());
        assert!(InstClass::MemRead.is_memory());
        assert!(InstClass::MemWrite.is_memory());
        assert!(!InstClass::FpMul.is_memory());
    }

    #[test]
    fn reg_reads_push_and_iter() {
        let mut r = RegReads::new();
        assert!(r.is_empty());
        r.push(ArchReg::int(1));
        r.push(ArchReg::fp(2));
        assert_eq!(r.len(), 2);
        let regs: Vec<ArchReg> = r.iter().collect();
        assert_eq!(regs, vec![ArchReg::int(1), ArchReg::fp(2)]);
    }

    #[test]
    #[should_panic(expected = "at most 3")]
    fn reg_reads_capacity_checked() {
        let mut r = RegReads::new();
        for i in 0..4 {
            r.push(ArchReg::int(i));
        }
    }

    #[test]
    fn reg_reads_from_iterator() {
        let r: RegReads = [ArchReg::int(0), ArchReg::int(1)].into_iter().collect();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn record_builder_chain() {
        let rec = InstRecord::new(4, InstClass::CondBranch)
            .with_reads(&[ArchReg::int(1), ArchReg::int(2)])
            .with_branch(BranchInfo {
                taken: true,
                target: 0,
                conditional: true,
            });
        assert_eq!(rec.reads.len(), 2);
        assert!(rec.branch.unwrap().taken);
        assert!(rec.write.is_none());
        assert!(rec.mem.is_none());
    }
}
