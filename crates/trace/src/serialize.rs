//! Compact binary trace serialization: record an instruction stream once,
//! replay it into any number of analysis sinks later.
//!
//! Real instrumentation flows often persist traces so expensive binaries
//! run once while analyses iterate. The format here is a simple private
//! little-endian framing (magic, version, record stream with presence
//! flags); it is not a stable interchange format.

use std::fmt;
use std::io::{self, Read, Write};

use crate::record::{ArchReg, BranchInfo, InstClass, InstRecord, MemAccess, RegReads};
use crate::sink::TraceSink;

const MAGIC: &[u8; 4] = b"PLT1";

/// Presence-flag bits in each record header byte.
const HAS_WRITE: u8 = 1 << 2;
const HAS_MEM: u8 = 1 << 3;
const HAS_BRANCH: u8 = 1 << 4;
const BRANCH_TAKEN: u8 = 1 << 5;
const BRANCH_COND: u8 = 1 << 6;
const MEM_STORE: u8 = 1 << 7;

/// A [`TraceSink`] that writes every observed record to a byte stream.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{InstClass, InstRecord, TraceSink, TraceWriter, replay};
///
/// let mut writer = TraceWriter::new(Vec::new());
/// writer.observe(&InstRecord::new(0x40, InstClass::IntAdd));
/// let bytes = writer.into_inner().unwrap();
///
/// let mut sink = phaselab_trace::VecSink::new();
/// let n = replay(&bytes[..], &mut sink).unwrap();
/// assert_eq!(n, 1);
/// assert_eq!(sink.records()[0].pc, 0x40);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    started: bool,
    error: Option<io::Error>,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over any byte sink (file, buffer, socket).
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            started: false,
            error: None,
            count: 0,
        }
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finishes the trace and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered during observation
    /// (observation itself cannot fail, so errors are deferred here).
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_record(&mut self, rec: &InstRecord) -> io::Result<()> {
        if !self.started {
            self.out.write_all(MAGIC)?;
            self.started = true;
        }
        let mut flags = (rec.reads.len() as u8) & 0b11;
        if rec.write.is_some() {
            flags |= HAS_WRITE;
        }
        if let Some(mem) = rec.mem {
            flags |= HAS_MEM;
            if mem.is_store {
                flags |= MEM_STORE;
            }
        }
        if let Some(br) = rec.branch {
            flags |= HAS_BRANCH;
            if br.taken {
                flags |= BRANCH_TAKEN;
            }
            if br.conditional {
                flags |= BRANCH_COND;
            }
        }
        self.out.write_all(&[flags, rec.class.index() as u8])?;
        self.out.write_all(&rec.pc.to_le_bytes())?;
        for r in rec.reads.iter() {
            self.out.write_all(&[r.index() as u8])?;
        }
        if let Some(w) = rec.write {
            self.out.write_all(&[w.index() as u8])?;
        }
        if let Some(mem) = rec.mem {
            self.out.write_all(&mem.addr.to_le_bytes())?;
            self.out.write_all(&[mem.size])?;
        }
        if let Some(br) = rec.branch {
            self.out.write_all(&br.target.to_le_bytes())?;
        }
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn observe(&mut self, rec: &InstRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_record(rec) {
            self.error = Some(e);
            return;
        }
        self.count += 1;
    }
}

/// A structurally invalid or unreadable trace stream.
///
/// Every variant that concerns the record stream carries the byte
/// offset of the *frame* (record) where the problem was detected, so a
/// corrupted trace file can be reported — and inspected with a hex
/// editor — without guesswork.
#[derive(Debug)]
pub enum ReplayError {
    /// The underlying reader failed.
    Io {
        /// Byte offset of the frame being read when the reader failed.
        offset: u64,
        /// The reader's error.
        source: io::Error,
    },
    /// The stream does not start with the `PLT1` magic.
    BadMagic,
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Byte offset of the frame that was cut short.
        offset: u64,
    },
    /// A frame header names an instruction class that does not exist.
    BadClassIndex {
        /// Byte offset of the offending frame.
        offset: u64,
        /// The out-of-range class index.
        value: u8,
    },
    /// A frame names an architectural register that does not exist.
    BadRegisterIndex {
        /// Byte offset of the offending frame.
        offset: u64,
        /// The out-of-range register index.
        value: u8,
    },
}

impl ReplayError {
    /// Byte offset of the frame where the error was detected, when the
    /// error is tied to a frame (everything except [`BadMagic`]).
    ///
    /// [`BadMagic`]: ReplayError::BadMagic
    pub fn offset(&self) -> Option<u64> {
        match self {
            ReplayError::Io { offset, .. }
            | ReplayError::Truncated { offset }
            | ReplayError::BadClassIndex { offset, .. }
            | ReplayError::BadRegisterIndex { offset, .. } => Some(*offset),
            ReplayError::BadMagic => None,
        }
    }
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Io { offset, source } => {
                write!(
                    f,
                    "I/O error reading trace frame at byte {offset}: {source}"
                )
            }
            ReplayError::BadMagic => write!(f, "not a phaselab trace (bad magic)"),
            ReplayError::Truncated { offset } => {
                write!(f, "trace truncated inside the frame at byte {offset}")
            }
            ReplayError::BadClassIndex { offset, value } => {
                write!(f, "bad class index {value} in trace frame at byte {offset}")
            }
            ReplayError::BadRegisterIndex { offset, value } => write!(
                f,
                "bad register index {value} in trace frame at byte {offset}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<ReplayError> for io::Error {
    fn from(e: ReplayError) -> Self {
        let kind = match &e {
            ReplayError::Io { source, .. } => source.kind(),
            ReplayError::Truncated { .. } => io::ErrorKind::UnexpectedEof,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// A reader that tracks how many bytes it has consumed, so errors can
/// point at the offending frame.
struct CountingReader<R> {
    inner: R,
    offset: u64,
}

impl<R: Read> CountingReader<R> {
    /// Fills `buf` completely, or reports a clean end-of-stream
    /// (`Ok(false)`) when the stream ends *before* the first byte.
    /// `frame` is the byte offset of the frame being decoded, used for
    /// error attribution.
    fn read_or_eof(&mut self, buf: &mut [u8], frame: u64) -> Result<bool, ReplayError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.inner.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(false),
                Ok(0) => return Err(ReplayError::Truncated { offset: frame }),
                Ok(n) => {
                    filled += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    return Err(ReplayError::Io {
                        offset: frame,
                        source: e,
                    })
                }
            }
        }
        Ok(true)
    }

    /// Fills `buf` completely; end-of-stream anywhere is a truncation.
    fn read_all(&mut self, buf: &mut [u8], frame: u64) -> Result<(), ReplayError> {
        if self.read_or_eof(buf, frame)? {
            Ok(())
        } else {
            Err(ReplayError::Truncated { offset: frame })
        }
    }
}

fn arch_reg(idx: u8, frame: u64) -> Result<ArchReg, ReplayError> {
    if idx < 32 {
        Ok(ArchReg::int(idx))
    } else if idx < 64 {
        Ok(ArchReg::fp(idx - 32))
    } else {
        Err(ReplayError::BadRegisterIndex {
            offset: frame,
            value: idx,
        })
    }
}

/// Replays a serialized trace into `sink`, returning the number of
/// records delivered. Calls [`TraceSink::finish`] at end of stream.
///
/// # Errors
///
/// Returns a [`ReplayError`] for I/O failures, a bad magic header, or a
/// malformed record; every frame-level variant carries the byte offset
/// of the frame where decoding stopped. Records already delivered to
/// `sink` before the error stay delivered.
pub fn replay<R: Read, S: TraceSink>(reader: R, sink: &mut S) -> Result<u64, ReplayError> {
    let mut reader = CountingReader {
        inner: reader,
        offset: 0,
    };
    let mut magic = [0u8; 4];
    if !reader.read_or_eof(&mut magic, 0)? {
        sink.finish();
        return Ok(0); // empty trace
    }
    if &magic != MAGIC {
        return Err(ReplayError::BadMagic);
    }

    let mut count = 0;
    loop {
        let frame = reader.offset;
        let mut head = [0u8; 2];
        if !reader.read_or_eof(&mut head, frame)? {
            break;
        }
        let [flags, class_idx] = head;
        let class = *InstClass::ALL
            .get(class_idx as usize)
            .ok_or(ReplayError::BadClassIndex {
                offset: frame,
                value: class_idx,
            })?;
        let mut pc = [0u8; 8];
        reader.read_all(&mut pc, frame)?;
        let mut rec = InstRecord::new(u64::from_le_bytes(pc), class);

        let n_reads = (flags & 0b11) as usize;
        let mut reads = RegReads::new();
        for _ in 0..n_reads {
            let mut b = [0u8; 1];
            reader.read_all(&mut b, frame)?;
            reads.push(arch_reg(b[0], frame)?);
        }
        rec.reads = reads;
        if flags & HAS_WRITE != 0 {
            let mut b = [0u8; 1];
            reader.read_all(&mut b, frame)?;
            rec.write = Some(arch_reg(b[0], frame)?);
        }
        if flags & HAS_MEM != 0 {
            let mut addr = [0u8; 8];
            reader.read_all(&mut addr, frame)?;
            let mut size = [0u8; 1];
            reader.read_all(&mut size, frame)?;
            rec.mem = Some(MemAccess {
                addr: u64::from_le_bytes(addr),
                size: size[0],
                is_store: flags & MEM_STORE != 0,
            });
        }
        if flags & HAS_BRANCH != 0 {
            let mut target = [0u8; 8];
            reader.read_all(&mut target, frame)?;
            rec.branch = Some(BranchInfo {
                taken: flags & BRANCH_TAKEN != 0,
                target: u64::from_le_bytes(target),
                conditional: flags & BRANCH_COND != 0,
            });
        }
        sink.observe(&rec);
        count += 1;
    }
    sink.finish();
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;

    fn rich_records() -> Vec<InstRecord> {
        vec![
            InstRecord::new(0x400000, InstClass::IntAdd)
                .with_reads(&[ArchReg::int(1), ArchReg::int(2)])
                .with_write(ArchReg::int(3)),
            InstRecord::new(0x400004, InstClass::MemWrite)
                .with_reads(&[ArchReg::int(3), ArchReg::int(31)])
                .with_mem(MemAccess {
                    addr: 0xDEAD_BEEF,
                    size: 8,
                    is_store: true,
                }),
            InstRecord::new(0x400008, InstClass::CondBranch)
                .with_reads(&[ArchReg::int(1), ArchReg::int(0)])
                .with_branch(BranchInfo {
                    taken: true,
                    target: 0x400000,
                    conditional: true,
                }),
            InstRecord::new(0x40000C, InstClass::FpMul)
                .with_reads(&[ArchReg::fp(5), ArchReg::fp(6)])
                .with_write(ArchReg::fp(7)),
            InstRecord::new(0x400010, InstClass::Nop),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let records = rich_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.observe(r);
        }
        assert_eq!(writer.count(), records.len() as u64);
        let bytes = writer.into_inner().unwrap();

        let mut sink = VecSink::new();
        let n = replay(&bytes[..], &mut sink).unwrap();
        assert_eq!(n, records.len() as u64);
        assert_eq!(sink.records(), &records[..]);
    }

    #[test]
    fn empty_trace_replays_to_nothing() {
        let writer = TraceWriter::new(Vec::new());
        let bytes = writer.into_inner().unwrap();
        let mut sink = VecSink::new();
        assert_eq!(replay(&bytes[..], &mut sink).unwrap(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut sink = VecSink::new();
        let err = replay(&b"NOPE"[..], &mut sink).unwrap_err();
        assert!(matches!(err, ReplayError::BadMagic));
        assert_eq!(err.offset(), None);
    }

    #[test]
    fn truncated_trace_reports_frame_offset() {
        let records = rich_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.observe(r);
        }
        let bytes = writer.into_inner().unwrap();
        let mut sink = VecSink::new();
        let err = replay(&bytes[..bytes.len() - 3], &mut sink).unwrap_err();
        let ReplayError::Truncated { offset } = err else {
            panic!("expected Truncated, got {err:?}");
        };
        // The cut hits the last record; its frame starts inside the
        // stream, after the 4-byte magic.
        assert!(offset >= 4 && offset < bytes.len() as u64);
        // The four intact records were still delivered.
        assert_eq!(sink.records().len(), records.len() - 1);
    }

    #[test]
    fn bad_class_index_reports_frame_offset() {
        let mut writer = TraceWriter::new(Vec::new());
        writer.observe(&InstRecord::new(0x40, InstClass::Nop));
        let mut bytes = writer.into_inner().unwrap();
        bytes[5] = 0xFF; // class byte of the first (only) record
        let mut sink = VecSink::new();
        let err = replay(&bytes[..], &mut sink).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::BadClassIndex {
                offset: 4,
                value: 0xFF
            }
        ));
    }

    #[test]
    fn bad_register_index_reports_frame_offset() {
        let mut writer = TraceWriter::new(Vec::new());
        writer.observe(&InstRecord::new(0x40, InstClass::IntAdd).with_reads(&[ArchReg::int(1)]));
        let mut bytes = writer.into_inner().unwrap();
        let reg_byte = bytes.len() - 1;
        bytes[reg_byte] = 200; // register indices stop at 63
        let mut sink = VecSink::new();
        let err = replay(&bytes[..], &mut sink).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::BadRegisterIndex {
                offset: 4,
                value: 200
            }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn replay_error_converts_to_io_error() {
        let e: io::Error = ReplayError::Truncated { offset: 17 }.into();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
        let e: io::Error = ReplayError::BadMagic.into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trace_is_compact() {
        // A plain ALU record costs 2 (header) + 8 (pc) + 3 (regs) bytes.
        let mut writer = TraceWriter::new(Vec::new());
        for _ in 0..100 {
            writer.observe(
                &InstRecord::new(0, InstClass::IntAdd)
                    .with_reads(&[ArchReg::int(1), ArchReg::int(2)])
                    .with_write(ArchReg::int(3)),
            );
        }
        let bytes = writer.into_inner().unwrap();
        assert_eq!(bytes.len(), 4 + 100 * 13);
    }
}
