//! Compact binary trace serialization: record an instruction stream once,
//! replay it into any number of analysis sinks later.
//!
//! Real instrumentation flows often persist traces so expensive binaries
//! run once while analyses iterate. The format here is a simple private
//! little-endian framing (magic, version, record stream with presence
//! flags); it is not a stable interchange format.

use std::io::{self, Read, Write};

use crate::record::{ArchReg, BranchInfo, InstClass, InstRecord, MemAccess, RegReads};
use crate::sink::TraceSink;

const MAGIC: &[u8; 4] = b"PLT1";

/// Presence-flag bits in each record header byte.
const HAS_WRITE: u8 = 1 << 2;
const HAS_MEM: u8 = 1 << 3;
const HAS_BRANCH: u8 = 1 << 4;
const BRANCH_TAKEN: u8 = 1 << 5;
const BRANCH_COND: u8 = 1 << 6;
const MEM_STORE: u8 = 1 << 7;

/// A [`TraceSink`] that writes every observed record to a byte stream.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{InstClass, InstRecord, TraceSink, TraceWriter, replay};
///
/// let mut writer = TraceWriter::new(Vec::new());
/// writer.observe(&InstRecord::new(0x40, InstClass::IntAdd));
/// let bytes = writer.into_inner().unwrap();
///
/// let mut sink = phaselab_trace::VecSink::new();
/// let n = replay(&bytes[..], &mut sink).unwrap();
/// assert_eq!(n, 1);
/// assert_eq!(sink.records()[0].pc, 0x40);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    started: bool,
    error: Option<io::Error>,
    count: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer over any byte sink (file, buffer, socket).
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            started: false,
            error: None,
            count: 0,
        }
    }

    /// Records written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finishes the trace and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error encountered during observation
    /// (observation itself cannot fail, so errors are deferred here).
    pub fn into_inner(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_record(&mut self, rec: &InstRecord) -> io::Result<()> {
        if !self.started {
            self.out.write_all(MAGIC)?;
            self.started = true;
        }
        let mut flags = (rec.reads.len() as u8) & 0b11;
        if rec.write.is_some() {
            flags |= HAS_WRITE;
        }
        if let Some(mem) = rec.mem {
            flags |= HAS_MEM;
            if mem.is_store {
                flags |= MEM_STORE;
            }
        }
        if let Some(br) = rec.branch {
            flags |= HAS_BRANCH;
            if br.taken {
                flags |= BRANCH_TAKEN;
            }
            if br.conditional {
                flags |= BRANCH_COND;
            }
        }
        self.out.write_all(&[flags, rec.class.index() as u8])?;
        self.out.write_all(&rec.pc.to_le_bytes())?;
        for r in rec.reads.iter() {
            self.out.write_all(&[r.index() as u8])?;
        }
        if let Some(w) = rec.write {
            self.out.write_all(&[w.index() as u8])?;
        }
        if let Some(mem) = rec.mem {
            self.out.write_all(&mem.addr.to_le_bytes())?;
            self.out.write_all(&[mem.size])?;
        }
        if let Some(br) = rec.branch {
            self.out.write_all(&br.target.to_le_bytes())?;
        }
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn observe(&mut self, rec: &InstRecord) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.write_record(rec) {
            self.error = Some(e);
            return;
        }
        self.count += 1;
    }
}

fn arch_reg(idx: u8) -> io::Result<ArchReg> {
    if idx < 32 {
        Ok(ArchReg::int(idx))
    } else if idx < 64 {
        Ok(ArchReg::fp(idx - 32))
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("register index {idx} out of range"),
        ))
    }
}

fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated trace record",
            ));
        }
        filled += n;
    }
    Ok(true)
}

/// Replays a serialized trace into `sink`, returning the number of
/// records delivered. Calls [`TraceSink::finish`] at end of stream.
///
/// # Errors
///
/// Returns an error for I/O failures, a bad magic header, or malformed
/// records.
pub fn replay<R: Read, S: TraceSink>(mut reader: R, sink: &mut S) -> io::Result<u64> {
    let mut magic = [0u8; 4];
    if !read_exact_or_eof(&mut reader, &mut magic)? {
        sink.finish();
        return Ok(0); // empty trace
    }
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a phaselab trace (bad magic)",
        ));
    }

    let mut count = 0;
    loop {
        let mut head = [0u8; 2];
        if !read_exact_or_eof(&mut reader, &mut head)? {
            break;
        }
        let [flags, class_idx] = head;
        let class = *InstClass::ALL
            .get(class_idx as usize)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad class index"))?;
        let mut pc = [0u8; 8];
        read_exact_or_eof(&mut reader, &mut pc)?;
        let mut rec = InstRecord::new(u64::from_le_bytes(pc), class);

        let n_reads = (flags & 0b11) as usize;
        let mut reads = RegReads::new();
        for _ in 0..n_reads {
            let mut b = [0u8; 1];
            read_exact_or_eof(&mut reader, &mut b)?;
            reads.push(arch_reg(b[0])?);
        }
        rec.reads = reads;
        if flags & HAS_WRITE != 0 {
            let mut b = [0u8; 1];
            read_exact_or_eof(&mut reader, &mut b)?;
            rec.write = Some(arch_reg(b[0])?);
        }
        if flags & HAS_MEM != 0 {
            let mut addr = [0u8; 8];
            read_exact_or_eof(&mut reader, &mut addr)?;
            let mut size = [0u8; 1];
            read_exact_or_eof(&mut reader, &mut size)?;
            rec.mem = Some(MemAccess {
                addr: u64::from_le_bytes(addr),
                size: size[0],
                is_store: flags & MEM_STORE != 0,
            });
        }
        if flags & HAS_BRANCH != 0 {
            let mut target = [0u8; 8];
            read_exact_or_eof(&mut reader, &mut target)?;
            rec.branch = Some(BranchInfo {
                taken: flags & BRANCH_TAKEN != 0,
                target: u64::from_le_bytes(target),
                conditional: flags & BRANCH_COND != 0,
            });
        }
        sink.observe(&rec);
        count += 1;
    }
    sink.finish();
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;

    fn rich_records() -> Vec<InstRecord> {
        vec![
            InstRecord::new(0x400000, InstClass::IntAdd)
                .with_reads(&[ArchReg::int(1), ArchReg::int(2)])
                .with_write(ArchReg::int(3)),
            InstRecord::new(0x400004, InstClass::MemWrite)
                .with_reads(&[ArchReg::int(3), ArchReg::int(31)])
                .with_mem(MemAccess {
                    addr: 0xDEAD_BEEF,
                    size: 8,
                    is_store: true,
                }),
            InstRecord::new(0x400008, InstClass::CondBranch)
                .with_reads(&[ArchReg::int(1), ArchReg::int(0)])
                .with_branch(BranchInfo {
                    taken: true,
                    target: 0x400000,
                    conditional: true,
                }),
            InstRecord::new(0x40000C, InstClass::FpMul)
                .with_reads(&[ArchReg::fp(5), ArchReg::fp(6)])
                .with_write(ArchReg::fp(7)),
            InstRecord::new(0x400010, InstClass::Nop),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let records = rich_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.observe(r);
        }
        assert_eq!(writer.count(), records.len() as u64);
        let bytes = writer.into_inner().unwrap();

        let mut sink = VecSink::new();
        let n = replay(&bytes[..], &mut sink).unwrap();
        assert_eq!(n, records.len() as u64);
        assert_eq!(sink.records(), &records[..]);
    }

    #[test]
    fn empty_trace_replays_to_nothing() {
        let writer = TraceWriter::new(Vec::new());
        let bytes = writer.into_inner().unwrap();
        let mut sink = VecSink::new();
        assert_eq!(replay(&bytes[..], &mut sink).unwrap(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut sink = VecSink::new();
        let err = replay(&b"NOPE"[..], &mut sink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_trace_rejected() {
        let records = rich_records();
        let mut writer = TraceWriter::new(Vec::new());
        for r in &records {
            writer.observe(r);
        }
        let bytes = writer.into_inner().unwrap();
        let mut sink = VecSink::new();
        let err = replay(&bytes[..bytes.len() - 3], &mut sink).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn trace_is_compact() {
        // A plain ALU record costs 2 (header) + 8 (pc) + 3 (regs) bytes.
        let mut writer = TraceWriter::new(Vec::new());
        for _ in 0..100 {
            writer.observe(
                &InstRecord::new(0, InstClass::IntAdd)
                    .with_reads(&[ArchReg::int(1), ArchReg::int(2)])
                    .with_write(ArchReg::int(3)),
            );
        }
        let bytes = writer.into_inner().unwrap();
        assert_eq!(bytes.len(), 4 + 100 * 13);
    }
}
