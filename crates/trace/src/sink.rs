//! Trace consumption: the [`TraceSink`] trait and simple sink adapters.

use crate::record::{InstClass, InstRecord, NUM_INST_CLASSES};

/// A consumer of a dynamic instruction stream.
///
/// The execution engine calls [`observe`](TraceSink::observe) once per
/// dynamically executed instruction, in program order. Implementations
/// should be cheap: this is the hot path of every characterization run.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{InstClass, InstRecord, TraceSink};
///
/// struct BranchCounter(u64);
/// impl TraceSink for BranchCounter {
///     fn observe(&mut self, rec: &InstRecord) {
///         if rec.class == InstClass::CondBranch {
///             self.0 += 1;
///         }
///     }
/// }
///
/// let mut sink = BranchCounter(0);
/// sink.observe(&InstRecord::new(0, InstClass::CondBranch));
/// assert_eq!(sink.0, 1);
/// ```
pub trait TraceSink {
    /// Observes one dynamically executed instruction.
    fn observe(&mut self, rec: &InstRecord);

    /// Called once when the traced execution finishes.
    ///
    /// Sinks that aggregate state (e.g. per-interval characterizers) can
    /// flush partial results here. The default implementation does nothing.
    fn finish(&mut self) {}
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        (**self).observe(rec);
    }

    fn finish(&mut self) {
        (**self).finish();
    }
}

/// A sink that counts observed instructions.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{CountingSink, InstClass, InstRecord, TraceSink};
///
/// let mut sink = CountingSink::new();
/// sink.observe(&InstRecord::new(0, InstClass::Nop));
/// assert_eq!(sink.count(), 1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    count: u64,
}

impl CountingSink {
    /// Creates a sink with a zero count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn observe(&mut self, _rec: &InstRecord) {
        self.count += 1;
    }
}

/// A sink that stores every observed record.
///
/// Intended for tests and small traces; a full characterization run should
/// stream into an analyzing sink instead of materializing records.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{InstClass, InstRecord, TraceSink, VecSink};
///
/// let mut sink = VecSink::new();
/// sink.observe(&InstRecord::new(0, InstClass::IntAdd));
/// assert_eq!(sink.records().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecSink {
    records: Vec<InstRecord>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records observed so far, in program order.
    pub fn records(&self) -> &[InstRecord] {
        &self.records
    }

    /// Consumes the sink and returns the collected records.
    pub fn into_records(self) -> Vec<InstRecord> {
        self.records
    }
}

impl TraceSink for VecSink {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        self.records.push(*rec);
    }
}

/// A sink that forwards every record to two sinks.
///
/// # Examples
///
/// ```
/// use phaselab_trace::{CountingSink, InstClass, InstRecord, TeeSink, TraceSink, VecSink};
///
/// let mut tee = TeeSink::new(CountingSink::new(), VecSink::new());
/// tee.observe(&InstRecord::new(0, InstClass::Nop));
/// let (count, vec) = tee.into_inner();
/// assert_eq!(count.count(), 1);
/// assert_eq!(vec.records().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A, B> {
    first: A,
    second: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Creates a tee over two sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Returns the two inner sinks.
    pub fn into_inner(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        self.first.observe(rec);
        self.second.observe(rec);
    }

    fn finish(&mut self) {
        self.first.finish();
        self.second.finish();
    }
}

/// A sink that histograms instructions by [`InstClass`].
///
/// # Examples
///
/// ```
/// use phaselab_trace::{ClassHistogram, InstClass, InstRecord, TraceSink};
///
/// let mut hist = ClassHistogram::new();
/// hist.observe(&InstRecord::new(0, InstClass::FpMul));
/// hist.observe(&InstRecord::new(4, InstClass::FpMul));
/// assert_eq!(hist.count_of(InstClass::FpMul), 2);
/// assert_eq!(hist.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassHistogram {
    counts: [u64; NUM_INST_CLASSES],
    total: u64,
}

impl ClassHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count of instructions of the given class.
    pub fn count_of(&self, class: InstClass) -> u64 {
        self.counts[class.index()]
    }

    /// Total instructions observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of instructions of the given class, or 0 if empty.
    pub fn fraction_of(&self, class: InstClass) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count_of(class) as f64 / self.total as f64
        }
    }
}

impl Default for ClassHistogram {
    fn default() -> Self {
        ClassHistogram {
            counts: [0; NUM_INST_CLASSES],
            total: 0,
        }
    }
}

impl TraceSink for ClassHistogram {
    #[inline]
    fn observe(&mut self, rec: &InstRecord) {
        self.counts[rec.class.index()] += 1;
        self.total += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::InstClass;

    fn rec(class: InstClass) -> InstRecord {
        InstRecord::new(0, class)
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::new();
        for _ in 0..5 {
            s.observe(&rec(InstClass::Nop));
        }
        assert_eq!(s.count(), 5);
    }

    #[test]
    fn vec_sink_preserves_order() {
        let mut s = VecSink::new();
        s.observe(&rec(InstClass::IntAdd));
        s.observe(&rec(InstClass::FpMul));
        let classes: Vec<InstClass> = s.into_records().iter().map(|r| r.class).collect();
        assert_eq!(classes, vec![InstClass::IntAdd, InstClass::FpMul]);
    }

    #[test]
    fn tee_sink_forwards_to_both() {
        let mut tee = TeeSink::new(CountingSink::new(), ClassHistogram::new());
        tee.observe(&rec(InstClass::Shift));
        tee.finish();
        let (count, hist) = tee.into_inner();
        assert_eq!(count.count(), 1);
        assert_eq!(hist.count_of(InstClass::Shift), 1);
    }

    #[test]
    fn histogram_fractions() {
        let mut h = ClassHistogram::new();
        assert_eq!(h.fraction_of(InstClass::Nop), 0.0);
        h.observe(&rec(InstClass::Nop));
        h.observe(&rec(InstClass::IntAdd));
        h.observe(&rec(InstClass::IntAdd));
        h.observe(&rec(InstClass::IntAdd));
        assert!((h.fraction_of(InstClass::IntAdd) - 0.75).abs() < 1e-12);
        assert!((h.fraction_of(InstClass::Nop) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sink_usable_through_mut_ref() {
        fn feed(mut sink: impl TraceSink) {
            sink.observe(&InstRecord::new(0, InstClass::Nop));
        }
        let mut s = CountingSink::new();
        feed(&mut s);
        assert_eq!(s.count(), 1);
    }
}
