//! Terminal renderings: horizontal bar charts and curve plots.

use std::fmt::Write;

/// Renders labeled values as a horizontal ASCII bar chart.
///
/// # Examples
///
/// ```
/// let chart = phaselab_viz::ascii_bar_chart(
///     &[("BioPerf".into(), 0.65), ("BMW".into(), 0.19)],
///     30,
/// );
/// assert!(chart.contains("BioPerf"));
/// assert!(chart.lines().count() == 2);
/// ```
pub fn ascii_bar_chart(bars: &[(String, f64)], width: usize) -> String {
    let max = bars.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in bars {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        let _ = writeln!(
            out,
            "{label:<label_w$}  {}{} {v:.3}",
            "█".repeat(filled),
            " ".repeat(width - filled.min(width)),
        );
    }
    out.pop();
    out
}

/// Renders one or more monotone curves (e.g. cumulative coverage) as an
/// ASCII grid of the given size; each series is drawn with its own
/// symbol.
///
/// # Examples
///
/// ```
/// let plot = phaselab_viz::ascii_curve(
///     &[("a".into(), vec![(1.0, 0.1), (2.0, 0.9)])],
///     20,
///     8,
/// );
/// assert!(plot.contains('a'));
/// ```
pub fn ascii_curve(series: &[(String, Vec<(f64, f64)>)], width: usize, height: usize) -> String {
    const SYMBOLS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '~'];
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for (_, pts) in series {
        for &(x, y) in pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(y);
            ymax = ymax.max(y);
        }
    }
    if !xmin.is_finite() {
        return String::new();
    }
    if xmax - xmin < 1e-12 {
        xmax = xmin + 1.0;
    }
    if ymax - ymin < 1e-12 {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let sym = SYMBOLS[si % SYMBOLS.len()];
        for &(x, y) in pts {
            let cx = (((x - xmin) / (xmax - xmin)) * (width - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx.min(width - 1)] = sym;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{ymax:.2} ┐");
    for row in &grid {
        out.push_str("     │");
        out.extend(row.iter());
        out.push('\n');
    }
    let _ = writeln!(out, "{ymin:.2} └{}", "─".repeat(width));
    let _ = writeln!(out, "      {xmin:<8.1}{xmax:>w$.1}", w = width - 8);
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {name}", SYMBOLS[i % SYMBOLS.len()]))
        .collect();
    let _ = write!(out, "      {}", legend.join("   "));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_are_proportional() {
        let chart = ascii_bar_chart(&[("a".into(), 1.0), ("b".into(), 0.5)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        let count = |s: &str| s.matches('█').count();
        assert_eq!(count(lines[0]), 10);
        assert_eq!(count(lines[1]), 5);
    }

    #[test]
    fn zero_bars_draw_nothing() {
        let chart = ascii_bar_chart(&[("z".into(), 0.0)], 10);
        assert_eq!(chart.matches('█').count(), 0);
    }

    #[test]
    fn curve_marks_every_series() {
        let plot = ascii_curve(
            &[
                ("up".into(), vec![(0.0, 0.0), (1.0, 1.0)]),
                ("down".into(), vec![(0.0, 1.0), (1.0, 0.0)]),
            ],
            16,
            6,
        );
        assert!(plot.contains('*'));
        assert!(plot.contains('+'));
        assert!(plot.contains("up"));
        assert!(plot.contains("down"));
    }

    #[test]
    fn empty_series_is_empty_string() {
        assert_eq!(ascii_curve(&[], 10, 5), "");
    }
}
