//! Pie, bar and line charts.

use std::fmt::Write;

use crate::svg::SvgCanvas;

/// Color palette shared by the chart types.
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

/// A pie chart: labeled non-negative values (the benchmark composition
/// of a prominent phase in the paper's figures).
#[derive(Debug, Clone, PartialEq)]
pub struct PieChart {
    title: String,
    slices: Vec<(String, f64)>,
}

impl PieChart {
    /// Creates a pie chart.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn new(title: impl Into<String>, slices: Vec<(String, f64)>) -> Self {
        for (label, v) in &slices {
            assert!(v.is_finite() && *v >= 0.0, "bad slice value for {label}");
        }
        PieChart {
            title: title.into(),
            slices,
        }
    }

    /// Renders the chart as a square SVG with a side legend.
    pub fn to_svg(&self, size: f64) -> String {
        let mut c = SvgCanvas::new(size * 1.9, size);
        let cx = size / 2.0;
        let cy = size / 2.0 + 6.0;
        let r = size * 0.38;
        c.text(cx, 12.0, size * 0.06, "middle", &self.title);
        let total: f64 = self.slices.iter().map(|(_, v)| v).sum();
        if total <= 0.0 {
            c.circle(cx, cy, r, "#999", "none");
            return c.finish();
        }
        let mut angle = -std::f64::consts::FRAC_PI_2;
        for (i, (label, v)) in self.slices.iter().enumerate() {
            let frac = v / total;
            let sweep = frac * std::f64::consts::TAU;
            let color = PALETTE[i % PALETTE.len()];
            if frac >= 0.999_999 {
                // A full circle cannot be drawn as a single arc.
                c.circle(cx, cy, r, color, color);
            } else if frac > 0.0 {
                let (x1, y1) = (cx + r * angle.cos(), cy + r * angle.sin());
                let end = angle + sweep;
                let (x2, y2) = (cx + r * end.cos(), cy + r * end.sin());
                let large = i32::from(sweep > std::f64::consts::PI);
                let d = format!(
                    "M {cx:.2} {cy:.2} L {x1:.2} {y1:.2} A {r:.2} {r:.2} 0 {large} 1 {x2:.2} {y2:.2} Z"
                );
                c.path(&d, "#fff", color, 0.5);
            }
            // Legend entry.
            let ly = 22.0 + i as f64 * size * 0.085;
            c.rect(
                size * 1.02,
                ly - size * 0.03,
                size * 0.04,
                size * 0.04,
                color,
            );
            c.text(
                size * 1.08,
                ly,
                size * 0.05,
                "start",
                &format!("{label} ({:.0}%)", frac * 100.0),
            );
            angle += sweep;
        }
        c.finish()
    }
}

/// A vertical bar chart (Figures 4 and 6 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct BarChart {
    title: String,
    y_label: String,
    bars: Vec<(String, f64)>,
}

impl BarChart {
    /// Creates a bar chart.
    ///
    /// # Panics
    ///
    /// Panics if any value is negative or not finite.
    pub fn new(
        title: impl Into<String>,
        y_label: impl Into<String>,
        bars: Vec<(String, f64)>,
    ) -> Self {
        for (label, v) in &bars {
            assert!(v.is_finite() && *v >= 0.0, "bad bar value for {label}");
        }
        BarChart {
            title: title.into(),
            y_label: y_label.into(),
            bars,
        }
    }

    /// Renders the chart as an SVG of the given size.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        let mut c = SvgCanvas::new(width, height);
        c.text(width / 2.0, 14.0, 12.0, "middle", &self.title);
        c.text(12.0, height / 2.0, 10.0, "middle", &self.y_label);
        let max = self
            .bars
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0_f64, f64::max)
            .max(1e-12);
        let left = 40.0;
        let bottom = height - 34.0;
        let top = 24.0;
        let plot_w = width - left - 10.0;
        let n = self.bars.len().max(1) as f64;
        let bw = plot_w / n * 0.7;
        c.line(left, top, left, bottom, "#333", 1.0);
        c.line(left, bottom, width - 10.0, bottom, "#333", 1.0);
        for (i, (label, v)) in self.bars.iter().enumerate() {
            let x = left + plot_w * (i as f64 + 0.15) / n;
            let h = (bottom - top) * v / max;
            c.rect(x, bottom - h, bw, h, PALETTE[i % PALETTE.len()]);
            c.text(
                x + bw / 2.0,
                bottom - h - 3.0,
                8.0,
                "middle",
                &format!("{v:.3}"),
            );
            c.text(x + bw / 2.0, bottom + 12.0, 8.0, "middle", label);
        }
        c.finish()
    }
}

/// A multi-series line chart (Figure 5's cumulative coverage curves and
/// Figure 1's GA correlation sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct LineChart {
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

impl LineChart {
    /// Creates a line chart from named series of (x, y) points.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        series: Vec<(String, Vec<(f64, f64)>)>,
    ) -> Self {
        LineChart {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series,
        }
    }

    /// Renders the chart as an SVG of the given size.
    pub fn to_svg(&self, width: f64, height: f64) -> String {
        let mut c = SvgCanvas::new(width, height);
        c.text(width / 2.0, 14.0, 12.0, "middle", &self.title);
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        for (_, pts) in &self.series {
            for &(x, y) in pts {
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
        if !xmin.is_finite() {
            return c.finish();
        }
        if xmax - xmin < 1e-12 {
            xmax = xmin + 1.0;
        }
        if ymax - ymin < 1e-12 {
            ymax = ymin + 1.0;
        }
        let left = 48.0;
        let bottom = height - 30.0;
        let top = 24.0;
        let right = width - 120.0;
        let sx = |x: f64| left + (right - left) * (x - xmin) / (xmax - xmin);
        let sy = |y: f64| bottom - (bottom - top) * (y - ymin) / (ymax - ymin);
        c.line(left, top, left, bottom, "#333", 1.0);
        c.line(left, bottom, right, bottom, "#333", 1.0);
        c.text(left - 4.0, bottom, 8.0, "end", &format!("{ymin:.2}"));
        c.text(left - 4.0, top + 4.0, 8.0, "end", &format!("{ymax:.2}"));
        c.text(left, bottom + 12.0, 8.0, "middle", &format!("{xmin:.0}"));
        c.text(right, bottom + 12.0, 8.0, "middle", &format!("{xmax:.0}"));
        c.text(
            f64::midpoint(left, right),
            bottom + 22.0,
            9.0,
            "middle",
            &self.x_label,
        );
        c.text(
            14.0,
            f64::midpoint(top, bottom),
            9.0,
            "middle",
            &self.y_label,
        );
        for (i, (label, pts)) in self.series.iter().enumerate() {
            let color = PALETTE[i % PALETTE.len()];
            if pts.len() >= 2 {
                let mut d = String::new();
                for (j, &(x, y)) in pts.iter().enumerate() {
                    let cmd = if j == 0 { 'M' } else { 'L' };
                    let _ = write!(d, "{cmd} {:.2} {:.2} ", sx(x), sy(y));
                }
                c.path(d.trim_end(), color, "none", 1.4);
            }
            let ly = top + 10.0 + i as f64 * 13.0;
            c.line(right + 8.0, ly - 3.0, right + 24.0, ly - 3.0, color, 2.0);
            c.text(right + 28.0, ly, 9.0, "start", label);
        }
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pie_fractions_in_legend() {
        let pie = PieChart::new("p", vec![("a".into(), 3.0), ("b".into(), 1.0)]);
        let svg = pie.to_svg(120.0);
        assert!(svg.contains("a (75%)"));
        assert!(svg.contains("b (25%)"));
        assert_eq!(svg.matches("<path").count(), 2);
    }

    #[test]
    fn single_slice_pie_is_a_circle() {
        let pie = PieChart::new("p", vec![("only".into(), 5.0)]);
        let svg = pie.to_svg(100.0);
        assert!(svg.contains("<circle"));
        assert_eq!(svg.matches("<path").count(), 0);
    }

    #[test]
    fn empty_pie_renders_outline() {
        let pie = PieChart::new("p", vec![]);
        assert!(pie.to_svg(100.0).contains("<circle"));
    }

    #[test]
    #[should_panic(expected = "bad slice value")]
    fn pie_rejects_negative() {
        let _ = PieChart::new("p", vec![("x".into(), -1.0)]);
    }

    #[test]
    fn bar_chart_draws_all_bars() {
        let chart = BarChart::new(
            "b",
            "count",
            vec![("x".into(), 1.0), ("y".into(), 2.0), ("z".into(), 0.5)],
        );
        let svg = chart.to_svg(300.0, 200.0);
        // 3 bars + no extra rects.
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains(">x<") && svg.contains(">y<") && svg.contains(">z<"));
    }

    #[test]
    fn line_chart_one_path_per_series() {
        let chart = LineChart::new(
            "l",
            "n",
            "coverage",
            vec![
                ("s1".into(), vec![(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]),
                ("s2".into(), vec![(0.0, 0.2), (2.0, 0.4)]),
            ],
        );
        let svg = chart.to_svg(400.0, 240.0);
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("s1") && svg.contains("s2"));
    }

    #[test]
    fn empty_line_chart_does_not_panic() {
        let chart = LineChart::new("l", "x", "y", vec![]);
        let svg = chart.to_svg(100.0, 100.0);
        assert!(svg.starts_with("<svg"));
    }
}
