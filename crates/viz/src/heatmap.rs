//! Similarity/distance heatmaps.

use crate::svg::SvgCanvas;

/// A square heatmap over labeled rows/columns — the standard rendering
/// of a benchmark-similarity matrix (labels on both axes, darker =
/// closer).
#[derive(Debug, Clone, PartialEq)]
pub struct Heatmap {
    title: String,
    labels: Vec<String>,
    values: Vec<Vec<f64>>,
}

impl Heatmap {
    /// Creates a heatmap from a square matrix of values and its labels.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not square with one row per label, or any
    /// value is not finite.
    pub fn new(title: impl Into<String>, labels: Vec<String>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(labels.len(), values.len(), "one row per label");
        for row in &values {
            assert_eq!(row.len(), labels.len(), "matrix must be square");
            assert!(row.iter().all(|v| v.is_finite()), "values must be finite");
        }
        Heatmap {
            title: title.into(),
            labels,
            values,
        }
    }

    /// Number of rows/columns.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty heatmap.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renders the heatmap as an SVG with the given cell size in pixels.
    /// Low values render dark (similar), high values light (distant).
    pub fn to_svg(&self, cell: f64) -> String {
        let n = self.len();
        let label_space = 110.0;
        let size = label_space + n as f64 * cell + 12.0;
        let mut c = SvgCanvas::new(size, size + 18.0);
        c.text(size / 2.0, 13.0, 11.0, "middle", &self.title);

        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for row in &self.values {
            for &v in row {
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        let span = (hi - lo).max(1e-12);

        for (i, row) in self.values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                // 0 (close) -> dark blue, 1 (far) -> near white.
                let t = (v - lo) / span;
                let shade = (40.0 + 215.0 * t) as u8;
                let fill = format!("#{shade:02x}{shade:02x}ff");
                c.rect(
                    label_space + j as f64 * cell,
                    20.0 + i as f64 * cell,
                    cell,
                    cell,
                    &fill,
                );
            }
        }
        let font = (cell * 0.8).min(9.0);
        for (i, label) in self.labels.iter().enumerate() {
            c.text(
                label_space - 4.0,
                20.0 + i as f64 * cell + cell * 0.75,
                font,
                "end",
                label,
            );
        }
        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Heatmap {
        Heatmap::new(
            "h",
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                vec![0.0, 1.0, 2.0],
                vec![1.0, 0.0, 3.0],
                vec![2.0, 3.0, 0.0],
            ],
        )
    }

    #[test]
    fn renders_one_cell_per_entry() {
        let svg = sample().to_svg(12.0);
        assert_eq!(svg.matches("<rect").count(), 9);
        assert!(svg.contains(">a<") && svg.contains(">c<"));
    }

    #[test]
    fn diagonal_is_darkest() {
        let svg = sample().to_svg(12.0);
        // Minimum value (0.0 on the diagonal) maps to the darkest shade.
        assert!(svg.contains("#2828ff"));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let _ = Heatmap::new("h", vec!["a".into()], vec![vec![0.0, 1.0]]);
    }

    #[test]
    #[should_panic(expected = "one row per label")]
    fn label_count_checked() {
        let _ = Heatmap::new("h", vec!["a".into(), "b".into()], vec![vec![0.0]]);
    }

    #[test]
    fn constant_matrix_does_not_divide_by_zero() {
        let h = Heatmap::new(
            "h",
            vec!["a".into(), "b".into()],
            vec![vec![1.0, 1.0], vec![1.0, 1.0]],
        );
        let svg = h.to_svg(10.0);
        assert!(svg.starts_with("<svg"));
    }
}
