//! Kiviat (radar) plots.

use crate::svg::SvgCanvas;

/// One kiviat axis: a label, the phase's normalized value, and the
/// normalized mean − sd / mean / mean + sd ring positions.
#[derive(Debug, Clone, PartialEq)]
pub struct KiviatAxisSpec {
    /// Axis label.
    pub label: String,
    /// The phase's value on this axis, normalized to `[0, 1]` between the
    /// population minimum (center) and maximum (outer ring).
    pub value: f64,
    /// Normalized positions of the mean − sd, mean, and mean + sd rings.
    pub rings: [f64; 3],
}

impl KiviatAxisSpec {
    /// Creates an axis spec; values are clamped to `[0, 1]`.
    pub fn new(label: impl Into<String>, value: f64, rings: [f64; 3]) -> Self {
        KiviatAxisSpec {
            label: label.into(),
            value: value.clamp(0.0, 1.0),
            rings: rings.map(|r| r.clamp(0.0, 1.0)),
        }
    }
}

/// A kiviat plot of one prominent phase: the dark area connecting the
/// phase's key-characteristic values, drawn over rings marking the
/// population mean and ± one standard deviation (exactly the plot
/// construction of Figures 2–3 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct KiviatPlot {
    title: String,
    axes: Vec<KiviatAxisSpec>,
}

impl KiviatPlot {
    /// Creates an empty plot with a title.
    pub fn new(title: impl Into<String>) -> Self {
        KiviatPlot {
            title: title.into(),
            axes: Vec::new(),
        }
    }

    /// Sets the axes.
    pub fn with_axes(mut self, axes: Vec<KiviatAxisSpec>) -> Self {
        self.axes = axes;
        self
    }

    /// The axes.
    pub fn axes(&self) -> &[KiviatAxisSpec] {
        &self.axes
    }

    /// Renders the plot as a square SVG of the given size.
    ///
    /// # Panics
    ///
    /// Panics with fewer than three axes (a radar plot needs a polygon).
    pub fn to_svg(&self, size: f64) -> String {
        assert!(self.axes.len() >= 3, "kiviat plot needs at least 3 axes");
        let mut c = SvgCanvas::new(size, size);
        let cx = size / 2.0;
        let cy = size / 2.0 + 6.0;
        let radius = size * 0.32;
        let n = self.axes.len();

        let point = |axis: usize, r: f64| -> (f64, f64) {
            let angle =
                std::f64::consts::TAU * axis as f64 / n as f64 - std::f64::consts::FRAC_PI_2;
            (cx + radius * r * angle.cos(), cy + radius * r * angle.sin())
        };

        c.text(cx, 12.0, size * 0.055, "middle", &self.title);

        // Outer ring (max) and center dot (min).
        let outer: Vec<(f64, f64)> = (0..n).map(|i| point(i, 1.0)).collect();
        c.polygon(&outer, "#666", "none", 0.0);
        c.circle(cx, cy, 1.2, "#666", "#666");

        // Mean ± sd rings: gray polygons through per-axis positions.
        for (ring_idx, color) in [(0usize, "#bbb"), (1, "#999"), (2, "#bbb")] {
            let ring: Vec<(f64, f64)> = (0..n)
                .map(|i| point(i, self.axes[i].rings[ring_idx]))
                .collect();
            c.polygon(&ring, color, "none", 0.0);
        }

        // Axis spokes and labels.
        for (i, axis) in self.axes.iter().enumerate() {
            let (x, y) = point(i, 1.0);
            c.line(cx, cy, x, y, "#ccc", 0.6);
            let (lx, ly) = point(i, 1.22);
            let anchor = if lx < cx - 2.0 {
                "end"
            } else if lx > cx + 2.0 {
                "start"
            } else {
                "middle"
            };
            c.text(lx, ly, size * 0.04, anchor, &axis.label);
        }

        // The phase's dark area.
        let shape: Vec<(f64, f64)> = (0..n).map(|i| point(i, self.axes[i].value)).collect();
        c.polygon(&shape, "#222", "#444", 0.75);

        c.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot(n: usize) -> KiviatPlot {
        KiviatPlot::new("t").with_axes(
            (0..n)
                .map(|i| KiviatAxisSpec::new(format!("a{i}"), 0.5, [0.3, 0.5, 0.7]))
                .collect(),
        )
    }

    #[test]
    fn renders_all_axis_labels() {
        let svg = plot(5).to_svg(200.0);
        for i in 0..5 {
            assert!(svg.contains(&format!("a{i}")));
        }
    }

    #[test]
    fn clamps_out_of_range_values() {
        let a = KiviatAxisSpec::new("x", 1.7, [-0.2, 0.5, 2.0]);
        assert_eq!(a.value, 1.0);
        assert_eq!(a.rings, [0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "at least 3 axes")]
    fn too_few_axes_rejected() {
        let _ = plot(2).to_svg(100.0);
    }

    #[test]
    fn polygon_count_includes_rings_and_shape() {
        let svg = plot(4).to_svg(150.0);
        // outer + 3 rings + phase shape = 5 polygons.
        assert_eq!(svg.matches("<polygon").count(), 5);
    }
}
