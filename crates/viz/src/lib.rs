//! Visualization for `phaselab`: kiviat (radar) plots, pie charts, bar
//! charts and line charts, rendered to SVG and to ASCII.
//!
//! The paper presents its 100 prominent phases as kiviat plots over the
//! 12 key characteristics, each paired with a pie chart of the
//! benchmarks it represents (Figures 2–3), plus bar charts for coverage
//! and uniqueness (Figures 4, 6) and cumulative-coverage line charts
//! (Figure 5, and the GA sweep of Figure 1). This crate renders all of
//! those from plain data — no dependency on the analysis crates, so it
//! is reusable for any small-multiples reporting.
//!
//! # Examples
//!
//! ```
//! use phaselab_viz::{KiviatAxisSpec, KiviatPlot};
//!
//! let plot = KiviatPlot::new("phase 1")
//!     .with_axes(vec![
//!         KiviatAxisSpec::new("ilp", 0.8, [0.2, 0.5, 0.8]),
//!         KiviatAxisSpec::new("mem", 0.3, [0.1, 0.4, 0.7]),
//!         KiviatAxisSpec::new("branch", 0.6, [0.3, 0.5, 0.7]),
//!     ]);
//! let svg = plot.to_svg(240.0);
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.contains("phase 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ascii;
mod charts;
mod heatmap;
mod kiviat;
mod svg;

pub use ascii::{ascii_bar_chart, ascii_curve};
pub use charts::{BarChart, LineChart, PieChart};
pub use heatmap::Heatmap;
pub use kiviat::{KiviatAxisSpec, KiviatPlot};
pub use svg::SvgCanvas;
