//! A minimal SVG document builder.

use std::fmt::Write as _;

/// Builds an SVG document element by element.
///
/// # Examples
///
/// ```
/// use phaselab_viz::SvgCanvas;
///
/// let mut c = SvgCanvas::new(100.0, 50.0);
/// c.line(0.0, 0.0, 100.0, 50.0, "#888", 1.0);
/// c.text(50.0, 25.0, 10.0, "middle", "hello");
/// let svg = c.finish();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.ends_with("</svg>\n"));
/// ```
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes text content for XML.
fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

impl SvgCanvas {
    /// Creates an empty canvas of the given pixel size.
    pub fn new(width: f64, height: f64) -> Self {
        SvgCanvas {
            width,
            height,
            body: String::new(),
        }
    }

    /// Canvas width in pixels.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height in pixels.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Adds a straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        writeln!(
            self.body,
            r#"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="{stroke}" stroke-width="{width}"/>"#
        )
        .expect("write to string");
    }

    /// Adds a circle outline.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, stroke: &str, fill: &str) {
        writeln!(
            self.body,
            r#"<circle cx="{cx:.2}" cy="{cy:.2}" r="{r:.2}" stroke="{stroke}" fill="{fill}"/>"#
        )
        .expect("write to string");
    }

    /// Adds a closed polygon.
    pub fn polygon(&mut self, points: &[(f64, f64)], stroke: &str, fill: &str, opacity: f64) {
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        writeln!(
            self.body,
            r#"<polygon points="{}" stroke="{stroke}" fill="{fill}" fill-opacity="{opacity}"/>"#,
            pts.join(" ")
        )
        .expect("write to string");
    }

    /// Adds a filled rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        writeln!(
            self.body,
            r#"<rect x="{x:.2}" y="{y:.2}" width="{w:.2}" height="{h:.2}" fill="{fill}"/>"#
        )
        .expect("write to string");
    }

    /// Adds a raw SVG path element.
    pub fn path(&mut self, d: &str, stroke: &str, fill: &str, width: f64) {
        writeln!(
            self.body,
            r#"<path d="{d}" stroke="{stroke}" fill="{fill}" stroke-width="{width}"/>"#
        )
        .expect("write to string");
    }

    /// Adds text; `anchor` is the SVG `text-anchor` (`start`, `middle`,
    /// `end`).
    pub fn text(&mut self, x: f64, y: f64, size: f64, anchor: &str, content: &str) {
        writeln!(
            self.body,
            r#"<text x="{x:.2}" y="{y:.2}" font-size="{size}" text-anchor="{anchor}" font-family="sans-serif">{}</text>"#,
            escape(content)
        )
        .expect("write to string");
    }

    /// Finalizes the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_structure() {
        let mut c = SvgCanvas::new(10.0, 20.0);
        c.rect(0.0, 0.0, 5.0, 5.0, "#fff");
        let svg = c.finish();
        assert!(svg.contains("viewBox=\"0 0 10 20\""));
        assert!(svg.contains("<rect"));
    }

    #[test]
    fn text_is_escaped() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.text(0.0, 0.0, 8.0, "start", "a<b & \"c\"");
        let svg = c.finish();
        assert!(svg.contains("a&lt;b &amp; &quot;c&quot;"));
    }

    #[test]
    fn polygon_points_formatting() {
        let mut c = SvgCanvas::new(10.0, 10.0);
        c.polygon(&[(0.0, 0.0), (1.5, 2.25)], "#000", "#f00", 0.5);
        let svg = c.finish();
        assert!(svg.contains("0.00,0.00 1.50,2.25"));
    }
}
